//! Vendored offline shim of `rand_chacha`: [`ChaCha8Rng`] and
//! [`ChaCha20Rng`] over the genuine ChaCha permutation (D. J. Bernstein),
//! with a 64-bit block counter and zero nonce. Deterministic, `Clone`,
//! platform-independent. Word streams are self-consistent but not
//! bit-compatible with the crates.io implementation; nothing in this
//! workspace depends on the upstream bit stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Working row for the vectorised core: one row of the 4×4 ChaCha state
/// for four independent blocks, laid out block-major in groups of four
/// columns (`row[g * 4 + col]` is column `col` of block `g`). Every
/// element-wise operation below is 16 independent u32 lanes — one
/// AVX-512 register's worth — and the diagonalisation shuffles permute
/// within each 4-lane group, which is exactly the in-lane `vpshufd`
/// pattern, so LLVM auto-vectorises the whole round function when the
/// target has vector rotates (see `.cargo/config.toml`). On targets
/// where it stays scalar the code is still correct, just slower.
type Row = [u32; 16];

#[inline(always)]
fn add(a: Row, b: Row) -> Row {
    let mut o = [0u32; 16];
    for i in 0..16 {
        o[i] = a[i].wrapping_add(b[i]);
    }
    o
}

#[inline(always)]
fn xor_rotl(a: Row, b: Row, r: u32) -> Row {
    let mut o = [0u32; 16];
    for i in 0..16 {
        o[i] = (a[i] ^ b[i]).rotate_left(r);
    }
    o
}

/// Rotate each 4-lane group left by `BY` positions (diagonalisation).
#[inline(always)]
fn group_rotl<const BY: usize>(x: Row) -> Row {
    let mut o = [0u32; 16];
    for g in 0..4 {
        for i in 0..4 {
            o[g * 4 + i] = x[g * 4 + (i + BY) % 4];
        }
    }
    o
}

/// Four consecutive ChaCha blocks `counter..counter+4` in one pass:
/// `out[b * 16 + w]` is word `w` of block `counter + b` — exactly what
/// four scalar block computations yield (pinned against
/// `chacha_block_ref` by the tests).
///
/// A column round is element-wise [`add`]/[`xor_rotl`] on the stacked
/// rows; a diagonal round rotates rows 1–3 within each block's lane
/// group so the diagonals line up as columns, runs the same quarter
/// round, and rotates back — the standard vectorised ChaCha layout,
/// widened to four blocks.
fn chacha_blocks4(key: &[u32; 8], counter: u64, double_rounds: usize) -> [u32; 64] {
    let mut a: Row = [0; 16];
    let mut b: Row = [0; 16];
    let mut c: Row = [0; 16];
    let mut d: Row = [0; 16];
    for g in 0..4 {
        let ctr = counter.wrapping_add(g as u64);
        for i in 0..4 {
            a[g * 4 + i] = SIGMA[i];
            b[g * 4 + i] = key[i];
            c[g * 4 + i] = key[4 + i];
        }
        d[g * 4] = ctr as u32;
        d[g * 4 + 1] = (ctr >> 32) as u32;
    }
    let (ia, ib, ic, id) = (a, b, c, d);

    for _ in 0..double_rounds {
        // Column round: rows are already column-aligned.
        a = add(a, b);
        d = xor_rotl(d, a, 16);
        c = add(c, d);
        b = xor_rotl(b, c, 12);
        a = add(a, b);
        d = xor_rotl(d, a, 8);
        c = add(c, d);
        b = xor_rotl(b, c, 7);
        // Diagonalise, diagonal round, un-diagonalise.
        b = group_rotl::<1>(b);
        c = group_rotl::<2>(c);
        d = group_rotl::<3>(d);
        a = add(a, b);
        d = xor_rotl(d, a, 16);
        c = add(c, d);
        b = xor_rotl(b, c, 12);
        a = add(a, b);
        d = xor_rotl(d, a, 8);
        c = add(c, d);
        b = xor_rotl(b, c, 7);
        b = group_rotl::<3>(b);
        c = group_rotl::<2>(c);
        d = group_rotl::<1>(d);
    }

    let a = add(a, ia);
    let b = add(b, ib);
    let c = add(c, ic);
    let d = add(d, id);
    let mut out = [0u32; 64];
    for g in 0..4 {
        for i in 0..4 {
            out[g * 16 + i] = a[g * 4 + i];
            out[g * 16 + 4 + i] = b[g * 4 + i];
            out[g * 16 + 8 + i] = c[g * 4 + i];
            out[g * 16 + 12 + i] = d[g * 4 + i];
        }
    }
    out
}

/// Word-indexed scalar single-block reference, kept as the equivalence
/// oracle for the vectorised four-block runtime core above.
#[cfg(test)]
fn chacha_block_ref(key: &[u32; 8], counter: u64, double_rounds: usize) -> [u32; 16] {
    let mut x: [u32; 16] = [
        SIGMA[0],
        SIGMA[1],
        SIGMA[2],
        SIGMA[3],
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let input = x;

    macro_rules! quarter {
        ($a:expr, $b:expr, $c:expr, $d:expr) => {
            x[$a] = x[$a].wrapping_add(x[$b]);
            x[$d] = (x[$d] ^ x[$a]).rotate_left(16);
            x[$c] = x[$c].wrapping_add(x[$d]);
            x[$b] = (x[$b] ^ x[$c]).rotate_left(12);
            x[$a] = x[$a].wrapping_add(x[$b]);
            x[$d] = (x[$d] ^ x[$a]).rotate_left(8);
            x[$c] = x[$c].wrapping_add(x[$d]);
            x[$b] = (x[$b] ^ x[$c]).rotate_left(7);
        };
    }

    for _ in 0..double_rounds {
        // Column round.
        quarter!(0, 4, 8, 12);
        quarter!(1, 5, 9, 13);
        quarter!(2, 6, 10, 14);
        quarter!(3, 7, 11, 15);
        // Diagonal round.
        quarter!(0, 5, 10, 15);
        quarter!(1, 6, 11, 12);
        quarter!(2, 7, 8, 13);
        quarter!(3, 4, 9, 14);
    }

    for (word, init) in x.iter_mut().zip(input) {
        *word = word.wrapping_add(init);
    }
    x
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $double_rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            /// Four buffered key-stream blocks (counters
            /// `counter - 4 .. counter`), refilled together through the
            /// vectorised 4-block core. Buffering ahead changes nothing
            /// observable: words are still handed out in counter order.
            buf: [u32; 64],
            /// Next unread word in `buf`; 64 means "refill".
            idx: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name { key, counter: 0, buf: [0; 64], idx: 64 }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx == 64 {
                    self.buf = chacha_blocks4(&self.key, self.counter, $double_rounds);
                    self.counter = self.counter.wrapping_add(4);
                    self.idx = 0;
                }
                let word = self.buf[self.idx];
                self.idx += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }

            /// Bulk override: whenever the buffer is empty and at least
            /// four whole blocks (32 doubles) are wanted, emit the
            /// key-stream blocks straight into `dest` — the same words,
            /// consumed as the same lo/hi pairs, as 32 scalar draws.
            fn fill_standard_f64(&mut self, dest: &mut [f64]) {
                const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
                let mut i = 0;
                while i < dest.len() {
                    if self.idx == 64 && dest.len() - i >= 32 {
                        let blocks = chacha_blocks4(&self.key, self.counter, $double_rounds);
                        self.counter = self.counter.wrapping_add(4);
                        for pair in blocks.chunks_exact(2) {
                            let word = ((pair[1] as u64) << 32) | pair[0] as u64;
                            dest[i] = (word >> 11) as f64 * SCALE;
                            i += 1;
                        }
                    } else {
                        dest[i] = (self.next_u64() >> 11) as f64 * SCALE;
                        i += 1;
                    }
                }
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the workhorse RNG of this repository.
    ChaCha8Rng,
    4
);
chacha_rng!(
    /// ChaCha with 20 rounds (full-strength variant).
    ChaCha20Rng,
    10
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let (va, vb, vc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..64).map(|_| a.next_u64()).collect(),
            (0..64).map(|_| b.next_u64()).collect(),
            (0..64).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn four_block_core_matches_scalar_blocks() {
        // The vectorised core must emit exactly the four blocks the
        // scalar reference produces, in counter order — including across
        // a 32-bit counter-word boundary.
        let key = [0x0102_0304u32, 5, 6, 7, 8, 9, 10, 0xdead_beef];
        for counter in [0u64, 1, 17, 0xffff_fffe, u64::MAX - 2] {
            for rounds in [4usize, 10] {
                let wide = chacha_blocks4(&key, counter, rounds);
                for b in 0..4u64 {
                    let one = chacha_block_ref(&key, counter.wrapping_add(b), rounds);
                    assert_eq!(
                        &wide[b as usize * 16..(b as usize + 1) * 16],
                        &one[..],
                        "counter {counter} block {b} rounds {rounds}"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_fill_matches_scalar_draws_at_every_alignment() {
        // The override must consume the identical word stream however the
        // buffer is aligned when the fill starts and however long it is.
        for skew in 0..65 {
            for len in [0usize, 1, 3, 7, 8, 9, 16, 31, 32, 33, 64, 100] {
                let mut scalar = ChaCha8Rng::seed_from_u64(90 + skew);
                let mut bulk = scalar.clone();
                for _ in 0..skew {
                    assert_eq!(scalar.next_u32(), bulk.next_u32());
                }
                let expect: Vec<f64> = (0..len).map(|_| scalar.gen::<f64>()).collect();
                let mut got = vec![0.0; len];
                bulk.fill_standard_f64(&mut got);
                assert_eq!(got, expect, "skew {skew}, len {len}");
                // …and both generators resume from the same position.
                assert_eq!(scalar.next_u64(), bulk.next_u64());
            }
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
