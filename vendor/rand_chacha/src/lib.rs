//! Vendored offline shim of `rand_chacha`: [`ChaCha8Rng`] and
//! [`ChaCha20Rng`] over the genuine ChaCha permutation (D. J. Bernstein),
//! with a 64-bit block counter and zero nonce. Deterministic, `Clone`,
//! platform-independent. Word streams are self-consistent but not
//! bit-compatible with the crates.io implementation; nothing in this
//! workspace depends on the upstream bit stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// One ChaCha block: 16 words of key stream from (key, counter).
fn chacha_block(key: &[u32; 8], counter: u64, double_rounds: usize) -> [u32; 16] {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut x: [u32; 16] = [
        SIGMA[0],
        SIGMA[1],
        SIGMA[2],
        SIGMA[3],
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let input = x;

    macro_rules! quarter {
        ($a:expr, $b:expr, $c:expr, $d:expr) => {
            x[$a] = x[$a].wrapping_add(x[$b]);
            x[$d] = (x[$d] ^ x[$a]).rotate_left(16);
            x[$c] = x[$c].wrapping_add(x[$d]);
            x[$b] = (x[$b] ^ x[$c]).rotate_left(12);
            x[$a] = x[$a].wrapping_add(x[$b]);
            x[$d] = (x[$d] ^ x[$a]).rotate_left(8);
            x[$c] = x[$c].wrapping_add(x[$d]);
            x[$b] = (x[$b] ^ x[$c]).rotate_left(7);
        };
    }

    for _ in 0..double_rounds {
        // Column round.
        quarter!(0, 4, 8, 12);
        quarter!(1, 5, 9, 13);
        quarter!(2, 6, 10, 14);
        quarter!(3, 7, 11, 15);
        // Diagonal round.
        quarter!(0, 5, 10, 15);
        quarter!(1, 6, 11, 12);
        quarter!(2, 7, 8, 13);
        quarter!(3, 4, 9, 14);
    }

    for (word, init) in x.iter_mut().zip(input) {
        *word = word.wrapping_add(init);
    }
    x
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $double_rounds:expr) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            /// Next unread word in `buf`; 16 means "refill".
            idx: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name { key, counter: 0, buf: [0; 16], idx: 16 }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx == 16 {
                    self.buf = chacha_block(&self.key, self.counter, $double_rounds);
                    self.counter = self.counter.wrapping_add(1);
                    self.idx = 0;
                }
                let word = self.buf[self.idx];
                self.idx += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the workhorse RNG of this repository.
    ChaCha8Rng,
    4
);
chacha_rng!(
    /// ChaCha with 20 rounds (full-strength variant).
    ChaCha20Rng,
    10
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let (va, vb, vc): (Vec<u64>, Vec<u64>, Vec<u64>) = (
            (0..64).map(|_| a.next_u64()).collect(),
            (0..64).map(|_| b.next_u64()).collect(),
            (0..64).map(|_| c.next_u64()).collect(),
        );
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
