//! Vendored offline shim of the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no registry access, so the workspace carries a
//! small, self-contained implementation of the traits it needs: [`RngCore`],
//! [`SeedableRng`] and the ergonomic [`Rng`] extension (`gen`, `gen_range`,
//! `gen_bool`). The value streams are *not* bit-compatible with crates.io
//! `rand`; every consumer in this repository only relies on determinism and
//! distributional quality, both of which hold here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The trait method is named `gen` for drop-in compatibility with rand 0.8;
// `gen` only became a reserved keyword in the 2024 edition.
#![allow(clippy::should_implement_trait)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }

    /// Fill `dest` with standard-uniform `[0, 1)` doubles.
    ///
    /// Contract: consumes the word stream exactly as `dest.len()`
    /// sequential [`Standard`] `f64` draws would, so a batched caller
    /// stays bit-identical to its scalar twin. Block generators override
    /// this to emit whole key-stream blocks without per-draw buffer
    /// bookkeeping.
    fn fill_standard_f64(&mut self, dest: &mut [f64]) {
        for slot in dest {
            *slot = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn fill_standard_f64(&mut self, dest: &mut [f64]) {
        (**self).fill_standard_f64(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly like
    /// upstream `rand` does (self-consistent here; not stream-compatible).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seeds expansion and hashing workhorse.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from a generator's full value range (the
/// `Standard` distribution of upstream `rand`). Floats sample `[0, 1)`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $next:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard (full-range / unit-interval) distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = SplitMix64 { state: self.0 }.next();
            self.0
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..17usize);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
