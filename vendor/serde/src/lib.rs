//! Vendored offline shim of `serde`.
//!
//! This workspace only serialises hand-built `serde_json::Value` trees (see
//! the `serde_json` shim), so `Serialize`/`Deserialize` are marker traits
//! blanket-implemented for every type: existing `#[derive(Serialize,
//! Deserialize)]` annotations and `T: Serialize` bounds keep compiling
//! without any code generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
