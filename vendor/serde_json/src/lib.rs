//! Vendored offline shim of `serde_json`.
//!
//! Provides the subset this workspace uses: the [`Value`] tree, the
//! [`json!`] macro, [`to_string`] / [`to_string_pretty`] and [`from_str`].
//! Instead of serde's `Serialize` machinery, the `json!` macro converts
//! leaf expressions through the local [`ToJson`] trait (by reference, so
//! non-`Copy` struct fields can be quoted without moving). Output is
//! deterministic: object keys are stored sorted (`BTreeMap`), and floats
//! print via Rust's shortest-round-trip formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: keys sorted, deterministic iteration.
pub type Map = BTreeMap<String, Value>;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; exhibit counts stay well inside
    /// the 2^53 exact-integer range).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map),
}

impl Value {
    /// Is this `Value::Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned-integer payload: a number that is a non-negative exact
    /// integer (within f64's 2^53 exact range, like upstream's u64 arm).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Object member by key, if this is an object and the key exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Compact serialisation, matching upstream's `Display` for `Value`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Indexing and comparisons (test ergonomics: v["a"][0]["b"] == 3).
// ---------------------------------------------------------------------------

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

impl_value_eq_num!(f64, f32, i32, i64, u32, u64, usize);

// ---------------------------------------------------------------------------
// Leaf conversion for the json! macro.
// ---------------------------------------------------------------------------

/// By-reference conversion into a [`Value`]; the `json!` macro routes every
/// leaf expression through this trait.
pub trait ToJson {
    /// Build the JSON value for `self`.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),* $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Build a [`Value`] from object/array/leaf syntax, mirroring
/// `serde_json::json!` for the shapes this workspace uses (string-literal
/// keys, arbitrary leaf expressions, nested `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::ToJson::to_json(&$value)); )*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::ToJson::to_json(&$elem) ),* ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

// ---------------------------------------------------------------------------
// Serialisation.
// ---------------------------------------------------------------------------

/// Serialisation / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Shortest round-trip formatting; integral values print without a
        // fractional part, matching JSON integer syntax.
        out.push_str(&format!("{n}"));
    } else {
        // Like upstream serde_json's lossy mode: non-finite becomes null.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

/// Compact serialisation.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Pretty serialisation (2-space indent).
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out.push('\n');
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                _ => return self.err("unterminated string"),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("bad number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document from bytes (must be UTF-8).
pub fn from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error("invalid utf-8".into()))?;
    from_str(s)
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing garbage");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_trees() {
        let name = String::from("cdf");
        let v = json!({
            "kind": name,
            "n": 3usize,
            "points": vec![(1.0, 0.5), (2.0, 1.0)],
            "missing": Option::<f64>::None,
            "flag": true,
        });
        assert_eq!(v["kind"], "cdf");
        assert_eq!(v["n"], 3);
        assert_eq!(v["points"][1][0], 2.0);
        assert!(v["missing"].is_null());
        assert_eq!(v["flag"], true);
        // `name` was quoted by reference and is still usable.
        assert_eq!(name, "cdf");
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({
            "a": [1.0, 2.5, -3.0],
            "b": json!({ "nested": "va\"lue\n", "empty": Vec::<f64>::new() }),
            "c": Value::Null,
        });
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&s).unwrap(), v);
        }
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, -1.5, 1e-12, 6.02e23, 0.1 + 0.2, f64::MAX] {
            let v = Value::Number(n);
            let s = to_string(&v).unwrap();
            assert_eq!(from_str(&s).unwrap(), v, "{s}");
        }
    }
}
