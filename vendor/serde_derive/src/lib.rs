//! Vendored offline shim of `serde_derive`.
//!
//! The sibling `serde` shim blanket-implements its marker traits for every
//! type, so these derives have nothing to generate — they only need to
//! exist so `#[derive(Serialize, Deserialize)]` keeps compiling, and to
//! accept (and ignore) `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
