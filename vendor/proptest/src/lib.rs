//! Vendored offline shim of `proptest`.
//!
//! A miniature, fully deterministic property-testing harness implementing
//! the subset this workspace uses:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { ... } }`
//! * range strategies over integers and floats (`0..10`, `0.0f64..=1.0`)
//! * `prop::collection::vec(strategy, size_range)`
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Each property runs [`CASES`] times with inputs drawn from a SplitMix64
//! stream seeded by the test's name, so failures reproduce exactly across
//! runs and machines. There is no shrinking: the panic message reports the
//! failing case index, and re-running deterministically replays it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Number of cases generated per property.
pub const CASES: u32 = 128;

/// Deterministic generator handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// A constant strategy (`Just(v)`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `vec(element_strategy, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Test-runner entry used by the [`proptest!`] expansion.
pub fn run_property<F: FnMut(&mut TestRng, u32)>(name: &str, mut case: F) {
    // FNV-1a over the test name: stable per-property seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for i in 0..CASES {
        let mut rng = TestRng::new(seed ^ ((i as u64) << 32));
        case(&mut rng, i);
    }
}

/// Bind `pattern in strategy` argument lists inside the runner closure.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $case:ident,) => {};
    ($rng:ident, $case:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $case, $($rest)*);
    };
    ($rng:ident, $case:ident, mut $name:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident, $case:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng, $case, $($rest)*);
    };
    ($rng:ident, $case:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
}

/// The property-test macro: each `fn` becomes a `#[test]` that replays
/// [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_property(stringify!($name), |__rng, __case| {
                $crate::__proptest_bind!(__rng, __case, $($args)*);
                $body
            });
        }
    )*};
}

/// Property assertion (panics with the standard message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_honoured(x in 3..10usize, y in -2.0f64..2.0, z in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((0.0..=1.0).contains(&z));
        }

        #[test]
        fn vectors_respect_size(mut v in prop::collection::vec(0.0f64..1.0, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0.0f64..1.0, 1..50);
        let a = strat.generate(&mut crate::TestRng::new(1));
        let b = strat.generate(&mut crate::TestRng::new(1));
        prop_assert_eq!(a, b);
    }
}
