//! Vendored offline shim of `criterion`.
//!
//! Implements the thin subset the workspace's benches use — `Criterion`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!` — as a plain walltime harness: each benchmark is
//! warmed up briefly, then timed over adaptively chosen iteration counts,
//! and the median per-iteration time is printed. No statistics engine, no
//! HTML reports; enough to compare hot paths release-to-release.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export for convenience parity with upstream criterion.
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARM_FOR: Duration = Duration::from_millis(100);

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Cap on retained samples per benchmark (upstream's `sample_size`).
    sample_size: Option<usize>,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    /// Mean nanoseconds per iteration over the measured batches.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, batching iterations until the measurement budget is
    /// spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and a first estimate of per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARM_FOR {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Batch size aiming at ~25 ms per sample.
        let batch = ((0.025 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_FOR {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

impl Criterion {
    /// Upstream-compatible builder: cap the number of samples kept per
    /// benchmark. The walltime budget still bounds how many are taken.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Open a named group of related benchmarks; each member is printed
    /// as `group/member`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut ns = bencher.samples_ns;
        if ns.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        if let Some(cap) = self.sample_size {
            ns.truncate(cap);
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = ns[ns.len() / 2];
        let (lo, hi) = (ns[0], ns[ns.len() - 1]);
        println!(
            "{name:<40} median {} (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            ns.len()
        );
        self
    }
}

/// Handle returned by [`Criterion::benchmark_group`]; prefixes every
/// member's label with the group name.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one member benchmark of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(&label, f);
        self
    }

    /// Close the group (no-op in the shim; parity with upstream).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:7.1} ns")
    } else if ns < 1e6 {
        format!("{:7.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:7.2} ms", ns / 1e6)
    } else {
        format!("{:7.2} s ", ns / 1e9)
    }
}

/// Group benchmark functions under one callable. Both upstream forms are
/// accepted: `criterion_group!(name, target, ...)` and the named
/// `criterion_group!(name = ...; config = ...; targets = ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
