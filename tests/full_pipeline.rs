//! End-to-end integration: generate a moderately sized world once, run the
//! complete analysis pipeline, and assert the paper's qualitative findings
//! hold — direction, ordering, and significance, per DESIGN.md's success
//! criteria.

use needwant::dataset::{Dataset, World, WorldConfig};
use needwant::study::StudyReport;
use std::sync::OnceLock;

fn world() -> World {
    let mut cfg = WorldConfig::small(20141105);
    cfg.user_scale = 5.0;
    cfg.days = 3;
    cfg.fcc_users = 350;
    World::new(cfg)
}

fn report() -> &'static (Dataset, StudyReport) {
    static R: OnceLock<(Dataset, StudyReport)> = OnceLock::new();
    R.get_or_init(|| {
        let w = world();
        let ds = w.generate();
        let report = StudyReport::run(&ds, &w.profiles, 20);
        (ds, report)
    })
}

#[test]
fn dataset_has_global_coverage() {
    let (ds, _) = report();
    assert!(ds.records.len() > 800, "{} records", ds.records.len());
    assert!(ds.n_countries() > 60, "{} countries", ds.n_countries());
    assert_eq!(ds.survey.len(), 99, "the survey covers 99 markets");
    assert!(
        ds.survey.n_plans() > 600,
        "{} plans across catalogues",
        ds.survey.n_plans()
    );
}

#[test]
fn fig1_population_matches_paper_bands() {
    let (_, r) = report();
    let s = &r.fig1.3;
    // Paper: median 7.4 Mbps; we ask for the right order of magnitude.
    assert!(
        s.median_capacity_mbps > 2.0 && s.median_capacity_mbps < 25.0,
        "median capacity {}",
        s.median_capacity_mbps
    );
    // Paper: typical latency ~100 ms, 5% above 500 ms.
    assert!(
        s.median_latency_ms > 40.0 && s.median_latency_ms < 200.0,
        "median latency {}",
        s.median_latency_ms
    );
    assert!(
        s.frac_latency_above_500ms > 0.005 && s.frac_latency_above_500ms < 0.2,
        "latency tail {}",
        s.frac_latency_above_500ms
    );
    // Paper: ~14% of users above 1% loss.
    assert!(
        s.frac_loss_above_1pct > 0.03 && s.frac_loss_above_1pct < 0.35,
        "loss tail {}",
        s.frac_loss_above_1pct
    );
}

#[test]
fn fig2_strong_correlation_and_diminishing_returns() {
    let (_, r) = report();
    for fig in &r.fig2 {
        let series = &fig.series[0];
        let rr = series.r_log.expect("correlation defined");
        assert!(rr > 0.75, "{}: r = {rr}", fig.id);
        // Diminishing returns: usage spans far fewer decades than capacity.
        let first = series.points.first().unwrap();
        let last = series.points.last().unwrap();
        assert!(
            last.mean / first.mean < 0.5 * last.x / first.x,
            "{}: usage ratio {} vs capacity ratio {}",
            fig.id,
            last.mean / first.mean,
            last.x / first.x
        );
    }
}

#[test]
fn fig3_dasu_and_fcc_peaks_agree() {
    let (_, r) = report();
    let peak_fig = &r.fig3[1];
    let fcc = &peak_fig.series[0];
    let dasu = &peak_fig.series[1];
    // Shared bins should agree within a factor of ~2.5 at the peak metric
    // (the paper: "peak usage is nearly identical for both groups").
    let mut compared = 0;
    for pf in &fcc.points {
        if let Some(pd) = dasu.points.iter().find(|p| (p.x - pf.x).abs() < 1e-9) {
            if pf.n >= 10 && pd.n >= 10 {
                let ratio = (pf.mean / pd.mean).max(pd.mean / pf.mean);
                assert!(
                    ratio < 2.5,
                    "bin {}: FCC {} vs Dasu {}",
                    pf.x,
                    pf.mean,
                    pd.mean
                );
                compared += 1;
            }
        }
    }
    assert!(compared >= 3, "only {compared} shared bins");
}

#[test]
fn table1_upgrades_are_conclusive() {
    let (_, r) = report();
    assert_eq!(r.table1.rows.len(), 2);
    for row in &r.table1.rows {
        assert!(row.n_pairs > 100, "{} pairs", row.n_pairs);
        assert!(
            row.percent_holds > 58.0 && row.percent_holds < 90.0,
            "{}: {}%",
            row.control,
            row.percent_holds
        );
        assert!(row.significant);
    }
    // Peak responds more strongly than mean, as in the paper (70.3 > 66.8).
    assert!(r.table1.rows[1].percent_holds >= r.table1.rows[0].percent_holds - 3.0);
}

#[test]
fn table2_direction_holds_where_the_paper_found_it() {
    let (_, r) = report();
    let dasu = &r.table2.0;
    assert!(dasu.rows.len() >= 4, "{} rows", dasu.rows.len());
    let pooled: f64 = dasu
        .rows
        .iter()
        .map(|row| row.percent_holds * row.n_pairs as f64)
        .sum::<f64>()
        / dasu.rows.iter().map(|row| row.n_pairs as f64).sum::<f64>();
    assert!(pooled > 55.0, "pooled Dasu %H = {pooled}");
    let fcc = &r.table2.1;
    if !fcc.rows.is_empty() {
        let pooled: f64 = fcc
            .rows
            .iter()
            .map(|row| row.percent_holds * row.n_pairs as f64)
            .sum::<f64>()
            / fcc.rows.iter().map(|row| row.n_pairs as f64).sum::<f64>();
        assert!(pooled > 55.0, "pooled FCC %H = {pooled}");
    }
}

#[test]
fn fig6_per_tier_demand_is_stable_across_years() {
    let (_, r) = report();
    let fig = &r.fig6[3]; // p95 no BT
    assert!(fig.series.len() == 3, "{} yearly series", fig.series.len());
    // Median cross-year per-bin ratio stays well below the cross-bin range.
    let (a, b) = (&fig.series[0], &fig.series[2]);
    let mut ratios: Vec<f64> = Vec::new();
    for pa in &a.points {
        if pa.n < 8 {
            continue;
        }
        if let Some(pb) = b.points.iter().find(|p| p.x == pa.x && p.n >= 8) {
            ratios.push((pb.mean / pa.mean).max(pa.mean / pb.mean));
        }
    }
    assert!(ratios.len() >= 3, "{} shared bins", ratios.len());
    ratios.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let median = ratios[ratios.len() / 2];
    assert!(
        median < 2.2,
        "median cross-year ratio {median} (ratios {ratios:?})"
    );
}

#[test]
fn table5_regional_shape() {
    let (_, r) = report();
    let find = |name: &str| r.table5.iter().find(|row| row.region == name).unwrap();
    let africa = find("Africa");
    let na = find("North America");
    let asia_dev = find("Asia (developed)");
    let europe = find("Europe");
    assert!(africa.share_above_10 > 0.5);
    assert_eq!(na.share_above_1, 0.0);
    assert_eq!(asia_dev.share_above_1, 0.0);
    assert!(europe.share_above_5 <= 0.25);
    // Census: most markets correlated, but not all (the paper's 66%/81%).
    assert!(r.census.share_strong > 0.5 && r.census.share_strong < 0.95);
    assert!(r.census.share_moderate > r.census.share_strong);
}

#[test]
fn quality_experiments_point_the_right_way() {
    let (_, r) = report();
    // Latency table: lower latency → more usage, pooled.
    if !r.table7.rows.is_empty() {
        let pooled: f64 = r
            .table7
            .rows
            .iter()
            .map(|row| row.percent_holds * row.n_pairs as f64)
            .sum::<f64>()
            / r.table7
                .rows
                .iter()
                .map(|row| row.n_pairs as f64)
                .sum::<f64>();
        assert!(pooled > 52.0, "latency pooled {pooled}");
    }
    // Loss table: lower loss → more usage, pooled.
    assert!(!r.table8.rows.is_empty());
    let pooled: f64 = r
        .table8
        .rows
        .iter()
        .map(|row| row.percent_holds * row.n_pairs as f64)
        .sum::<f64>()
        / r.table8
            .rows
            .iter()
            .map(|row| row.n_pairs as f64)
            .sum::<f64>();
    assert!(pooled > 52.0, "loss pooled {pooled}");
}

#[test]
fn india_vs_us_matches_section_7_1() {
    let (_, r) = report();
    if let Some(row) = &r.india_vs_us {
        assert!(
            row.percent_holds > 52.0,
            "India should impose lower demand: {}%",
            row.percent_holds
        );
    }
    // India's latency CDF sits far right of the rest (Fig. 11).
    let ndt_india = r.fig11.series.iter().find(|s| s.label == "NDT India");
    let ndt_other = r.fig11.series.iter().find(|s| s.label == "NDT Other");
    if let (Some(i), Some(o)) = (ndt_india, ndt_other) {
        assert!(
            i.median > 2.0 * o.median,
            "india {} vs other {}",
            i.median,
            o.median
        );
    }
}

#[test]
fn every_exhibit_is_present() {
    let (_, r) = report();
    assert!(!r.fig1.0.series.is_empty());
    assert!(r.fig2.iter().all(|f| !f.series[0].points.is_empty()));
    assert!(r.fig3.iter().all(|f| f.series.len() == 2));
    assert!(!r.table1.rows.is_empty());
    assert!(r.fig4.iter().all(|f| f.series.len() == 2));
    assert!(r.fig5.iter().any(|f| !f.groups.is_empty()));
    assert!(!r.table2.0.rows.is_empty());
    assert!(r.fig6.iter().all(|f| !f.series.is_empty()));
    assert!(!r.table3.rows.is_empty());
    assert_eq!(r.table4.len(), 4);
    assert_eq!(r.fig7[0].series.len(), 4);
    assert!(!r.fig8.is_empty());
    assert!(!r.fig9.groups.is_empty());
    assert!(r.fig10.0.series[0].n > 50);
    assert!(!r.table5.is_empty());
    assert!(r.table6.iter().any(|t| !t.rows.is_empty()));
    assert!(!r.table8.rows.is_empty());
    assert_eq!(r.fig12.series.len(), 2);
}
