//! The engine's headline guarantee, end to end: however the population is
//! sharded and however many worker threads execute the shards, every
//! exhibit the pipeline writes is **byte-identical** — the serialised JSON
//! of a 1-shard/1-thread run equals that of an 8-shard/4-thread run.

use needwant::dataset::{World, WorldConfig};
use needwant::engine::ShardPlan;
use needwant::report::json;
use needwant::study::{sec2, sec3, StreamStudy};

fn small_world(seed: u64) -> World {
    let mut cfg = WorldConfig::small(seed);
    cfg.user_scale = 1.0;
    cfg.days = 1;
    cfg.fcc_users = 40;
    World::with_countries(cfg, &["US", "JP", "BW", "SA", "IN"])
}

const SERIAL: ShardPlan = ShardPlan {
    shards: 1,
    threads: 1,
};
const PARALLEL: ShardPlan = ShardPlan {
    shards: 8,
    threads: 4,
};

#[test]
fn materialised_exhibits_are_byte_identical_across_plans() {
    let world = small_world(31);
    let serial = world.generate_with(SERIAL);
    let parallel = world.generate_with(PARALLEL);

    let (fig1a_s, fig1b_s, fig1c_s, _) = sec2::figure1(&serial, &mut bb_trace::EventLog::new());
    let (fig1a_p, fig1b_p, fig1c_p, _) = sec2::figure1(&parallel, &mut bb_trace::EventLog::new());
    for (s, p) in [(fig1a_s, fig1a_p), (fig1b_s, fig1b_p), (fig1c_s, fig1c_p)] {
        assert_eq!(
            serde_json::to_string_pretty(&json::cdf_to_json(&s)).unwrap(),
            serde_json::to_string_pretty(&json::cdf_to_json(&p)).unwrap(),
            "{} differs between shard plans",
            s.id
        );
    }
    for (s, p) in sec3::figure2(&serial, &mut bb_trace::EventLog::new())
        .iter()
        .zip(&sec3::figure2(&parallel, &mut bb_trace::EventLog::new()))
    {
        assert_eq!(
            serde_json::to_string_pretty(&json::binned_to_json(s)).unwrap(),
            serde_json::to_string_pretty(&json::binned_to_json(p)).unwrap(),
            "{} differs between shard plans",
            s.id
        );
    }
}

#[test]
fn streamed_exhibits_are_byte_identical_across_plans() {
    let world = small_world(32);
    let fold = |plan| {
        let (_, study) = world.fold_users(plan, StreamStudy::new, |s: &mut StreamStudy, r, u| {
            s.absorb(r, u)
        });
        study
    };
    let serial = fold(SERIAL);
    let parallel = fold(PARALLEL);
    assert_eq!(serial.users, parallel.users);

    for (s, p) in serial.figure1().iter().zip(parallel.figure1().iter()) {
        assert_eq!(
            serde_json::to_string_pretty(&json::cdf_to_json(s)).unwrap(),
            serde_json::to_string_pretty(&json::cdf_to_json(p)).unwrap(),
            "{} differs between shard plans",
            s.id
        );
    }
    for (s, p) in serial.figure2().iter().zip(parallel.figure2().iter()) {
        assert_eq!(
            serde_json::to_string_pretty(&json::binned_to_json(s)).unwrap(),
            serde_json::to_string_pretty(&json::binned_to_json(p)).unwrap(),
            "{} differs between shard plans",
            s.id
        );
    }
    for (s, p) in serial.figure7().iter().zip(parallel.figure7().iter()) {
        assert_eq!(
            serde_json::to_string_pretty(&json::cdf_to_json(s)).unwrap(),
            serde_json::to_string_pretty(&json::cdf_to_json(p)).unwrap(),
            "{} differs between shard plans",
            s.id
        );
    }
}

#[test]
fn provenance_ledgers_are_byte_identical_across_plans() {
    // The ledger only records functions of the dataset (input counts,
    // matching audits, sign-test inputs), and the dataset itself is
    // plan-invariant — so the serialised JSONL must be byte-identical
    // however generation was sharded. This is the `--ledger` guarantee,
    // pinned at the library layer.
    let world = small_world(35);
    let serial = world.generate_with(SERIAL);
    let parallel = world.generate_with(PARALLEL);
    let run = |ds: &needwant::dataset::Dataset| {
        let mut ledger = bb_trace::EventLog::new();
        needwant::study::StudyReport::run_with_ledger(ds, &world.profiles, 10, &mut ledger);
        ledger.to_jsonl()
    };
    let serial_jsonl = run(&serial);
    // Not vacuous: the experiments actually audited something.
    assert!(serial_jsonl.contains("\"event\": \"match_audit\""));
    assert!(serial_jsonl.contains("\"event\": \"sign_test\""));
    assert!(serial_jsonl.contains("\"event\": \"exhibit\""));
    assert_eq!(
        serial_jsonl,
        run(&parallel),
        "provenance ledger differs between shard plans"
    );
}

#[test]
fn metrics_registries_are_byte_identical_across_plans() {
    // The bb-trace registry only records data events (wraps, resets,
    // stale drops, observation counts) — pure functions of the seed — so
    // its serialised JSON must be byte-identical for every shard/thread
    // plan and for both the materialised and the streaming paths.
    let world = small_world(34);
    let (_, serial_reg, serial_stats) = world.generate_with_traced(SERIAL);
    let (_, parallel_reg, parallel_stats) = world.generate_with_traced(PARALLEL);
    let serial_json = serial_reg.to_json();
    assert_eq!(
        serial_json,
        parallel_reg.to_json(),
        "registry JSON differs between shard plans"
    );

    // Spot-check the counters are actually populated, not vacuously equal.
    assert!(serial_reg.counter("dataset.users.observed") > 0);
    assert!(serial_reg.counter("netsim.collect.polls") > 0);
    assert!(serial_reg.histogram("netsim.collect.gap_slots").is_some());

    // Scheduling observables are plan-dependent by design and live outside
    // the invariance guarantee — but the work accounting must agree.
    assert_eq!(serial_stats.items, parallel_stats.items);
    assert_eq!(serial_stats.shards, 1);
    assert_eq!(parallel_stats.shards, 8);

    // The streaming fold accumulates the identical registry.
    let (_, _, stream_reg, _) = world.fold_users_traced(
        PARALLEL,
        needwant::study::StreamStudy::new,
        |s: &mut needwant::study::StreamStudy, r, u| s.absorb(r, u),
    );
    assert_eq!(
        serial_json,
        stream_reg.to_json(),
        "streaming fold registry differs from materialised registry"
    );
}

#[test]
fn streamed_study_matches_materialised_dataset_counts() {
    let world = small_world(33);
    let dataset = world.generate();
    let (_, study) = world.fold_users(PARALLEL, StreamStudy::new, |s: &mut StreamStudy, r, u| {
        s.absorb(r, u)
    });
    assert_eq!(study.users as usize, dataset.records.len());
    assert_eq!(study.movers as usize, dataset.upgrades.len());
}
