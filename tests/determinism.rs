//! Reproducibility: every dataset and every exhibit is a pure function of
//! the seed. These tests guard the property EXPERIMENTS.md depends on.

use needwant::dataset::{World, WorldConfig};
use needwant::study::sec3;

fn small_world(seed: u64) -> World {
    let mut cfg = WorldConfig::small(seed);
    cfg.user_scale = 0.6;
    cfg.days = 1;
    cfg.fcc_users = 25;
    World::with_countries(cfg, &["US", "JP", "IN"])
}

#[test]
fn same_seed_same_dataset() {
    let a = small_world(11).generate();
    let b = small_world(11).generate();
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.user, rb.user);
        assert_eq!(ra.country, rb.country);
        assert_eq!(ra.capacity, rb.capacity);
        assert_eq!(ra.latency, rb.latency);
        assert_eq!(ra.loss, rb.loss);
        assert_eq!(ra.demand_with_bt, rb.demand_with_bt);
        assert_eq!(ra.demand_no_bt, rb.demand_no_bt);
        assert_eq!(ra.plan_price, rb.plan_price);
    }
    assert_eq!(a.upgrades.len(), b.upgrades.len());
}

#[test]
fn same_seed_same_exhibits() {
    let a = small_world(13).generate();
    let b = small_world(13).generate();
    assert_eq!(
        sec3::figure2(&a, &mut bb_trace::EventLog::new()),
        sec3::figure2(&b, &mut bb_trace::EventLog::new())
    );
    let ta = sec3::table1(&a, &mut bb_trace::EventLog::new());
    let tb = sec3::table1(&b, &mut bb_trace::EventLog::new());
    assert_eq!(ta.rows.len(), tb.rows.len());
    for (ra, rb) in ta.rows.iter().zip(&tb.rows) {
        assert_eq!(ra.percent_holds, rb.percent_holds);
        assert_eq!(ra.p_value, rb.p_value);
    }
}

#[test]
fn different_seeds_differ() {
    let a = small_world(1).generate();
    let b = small_world(2).generate();
    // Same structure…
    assert_eq!(a.records.len(), b.records.len());
    // …but different draws.
    let differing = a
        .records
        .iter()
        .zip(&b.records)
        .filter(|(ra, rb)| ra.capacity != rb.capacity)
        .count();
    assert!(
        differing > a.records.len() / 4,
        "only {differing} of {} records differ",
        a.records.len()
    );
}

#[test]
fn seed_controls_the_survey_too() {
    let a = small_world(5).generate();
    let b = small_world(5).generate();
    for (ca, cb) in a.survey.iter().zip(b.survey.iter()) {
        assert_eq!(ca.0, cb.0);
        assert_eq!(ca.1.catalog.plans, cb.1.catalog.plans);
    }
}
