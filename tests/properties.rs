//! Property-based tests of the core invariants, spanning crates.

use needwant::causal::{match_pairs, Caliper, Unit};
use needwant::netsim::collect::{BtFilter, CounterSource};
use needwant::netsim::counters::{
    max_plausible_bytes, upnp_deltas, upnp_deltas_stats, NetstatCounter, UpnpCounter,
};
use needwant::netsim::fault::TokenBucket;
use needwant::netsim::link::AccessLink;
use needwant::netsim::tcp::{achievable_rate, mathis_throughput};
use needwant::netsim::{simulate_user, UsageSeries, UserWorkload};
use needwant::stats::dist::Binomial;
use needwant::stats::hypothesis::{binomial_test, Tail};
use needwant::stats::{quantile, Ecdf};
use needwant::trace::Registry;
use needwant::types::{Bandwidth, CapacityBin, Latency, LossRate, MoneyPpp, PppConverter};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    // ---------- statistics ----------

    #[test]
    fn quantiles_are_monotone_and_bounded(
        mut data in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let v_lo = quantile(&data, lo);
        let v_hi = quantile(&data, hi);
        prop_assert!(v_lo <= v_hi);
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v_lo >= data[0] && v_hi <= data[data.len() - 1]);
    }

    #[test]
    fn ecdf_is_a_distribution_function(
        data in prop::collection::vec(-1e3f64..1e3, 1..100),
        x1 in -1e3f64..1e3,
        x2 in -1e3f64..1e3,
    ) {
        let e = Ecdf::new(data.iter().copied());
        let (a, b) = (x1.min(x2), x1.max(x2));
        prop_assert!(e.eval(a) <= e.eval(b), "monotone");
        prop_assert!((0.0..=1.0).contains(&e.eval(a)));
        prop_assert!(e.eval(e.max()) == 1.0);
    }

    #[test]
    fn binomial_sf_is_monotone_in_k(n in 1u64..500, p in 0.01f64..0.99) {
        let d = Binomial::new(n, p);
        let mut prev = 1.0f64;
        for k in 0..=n {
            let sf = d.sf_at_least(k);
            prop_assert!(sf <= prev + 1e-12, "sf must fall as k grows");
            prop_assert!((0.0..=1.0 + 1e-12).contains(&sf));
            prev = sf;
        }
    }

    #[test]
    fn binomial_test_p_value_falls_with_more_successes(
        n in 10u64..300,
        k in 1u64..10,
    ) {
        let k = k.min(n - 1);
        let t1 = binomial_test(k, n, 0.5, Tail::Greater);
        let t2 = binomial_test(k + 1, n, 0.5, Tail::Greater);
        prop_assert!(t2.p_value <= t1.p_value);
    }

    // ---------- types ----------

    #[test]
    fn bandwidth_arithmetic_is_consistent(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let x = Bandwidth::from_bps(a);
        let y = Bandwidth::from_bps(b);
        prop_assert!((x + y).bps() >= x.bps().max(y.bps()));
        // Saturating subtraction: (x - y) + y recovers the larger value.
        let recovered = ((x - y) + y).bps();
        prop_assert!((recovered - a.max(b)).abs() <= 1e-9 * a.max(b).max(1.0));
        prop_assert!(x.min(y) <= x.max(y));
    }

    #[test]
    fn capacity_bins_partition_the_axis(bps in 1.0f64..1e9) {
        let bw = Bandwidth::from_bps(bps);
        let bin = CapacityBin::of(bw);
        prop_assert!(bw <= bin.upper());
        if bin.0 > 0 {
            prop_assert!(bw > bin.lower());
        }
        // Adjacent bins tile: upper(k) == lower(k+1).
        prop_assert_eq!(bin.upper(), bin.next().lower());
    }

    #[test]
    fn ppp_round_trip(amount in 0.01f64..1e6, rate in 0.01f64..1e4, ppp in 0.01f64..1e4) {
        let c = PppConverter::new(rate, ppp);
        let dollars = c.to_ppp(amount);
        prop_assert!((dollars.usd() * ppp - amount).abs() < 1e-6 * amount.max(1.0));
    }

    #[test]
    fn money_fraction_of_income_is_scale_free(price in 0.1f64..1e4, income in 1.0f64..1e6, k in 0.1f64..100.0) {
        let f1 = MoneyPpp::from_usd(price).fraction_of(MoneyPpp::from_usd(income)).unwrap();
        let f2 = MoneyPpp::from_usd(price * k).fraction_of(MoneyPpp::from_usd(income * k)).unwrap();
        prop_assert!((f1 - f2).abs() < 1e-9 * f1.max(1e-9));
    }

    // ---------- causal ----------

    #[test]
    fn calipers_are_symmetric_and_scale_free(
        a in 0.0f64..1e6,
        b in 0.0f64..1e6,
        frac in 0.01f64..1.0,
        k in 0.1f64..10.0,
    ) {
        let c = Caliper::relative(frac);
        prop_assert_eq!(c.within(a, b), c.within(b, a));
        prop_assert_eq!(c.within(a, b), c.within(a * k, b * k));
    }

    #[test]
    fn matching_pairs_are_disjoint_and_respect_calipers(
        control in prop::collection::vec((1.0f64..100.0, -10.0f64..10.0), 0..40),
        treatment in prop::collection::vec((1.0f64..100.0, -10.0f64..10.0), 0..40),
    ) {
        let mk = |base: u64, v: &[(f64, f64)]| -> Vec<Unit> {
            v.iter().enumerate()
                .map(|(i, (cov, out))| Unit::new(base + i as u64, vec![*cov], *out))
                .collect()
        };
        let c = mk(0, &control);
        let t = mk(1000, &treatment);
        let calipers = [Caliper::PAPER];
        let pairs = match_pairs(&c, &t, &calipers);
        prop_assert!(pairs.len() <= c.len().min(t.len()));
        let mut used_c: Vec<u64> = pairs.iter().map(|p| p.control_id).collect();
        let mut used_t: Vec<u64> = pairs.iter().map(|p| p.treatment_id).collect();
        used_c.sort_unstable(); used_c.dedup();
        used_t.sort_unstable(); used_t.dedup();
        prop_assert_eq!(used_c.len(), pairs.len(), "controls reused");
        prop_assert_eq!(used_t.len(), pairs.len(), "treated reused");
        for p in &pairs {
            let cu = c.iter().find(|u| u.id == p.control_id).unwrap();
            let tu = t.iter().find(|u| u.id == p.treatment_id).unwrap();
            prop_assert!(calipers[0].within(cu.covariates[0], tu.covariates[0]));
        }
    }

    // ---------- netsim ----------

    #[test]
    fn mathis_is_monotone(
        rtt1 in 1.0f64..2000.0,
        rtt2 in 1.0f64..2000.0,
        loss1 in 0.0f64..0.3,
        loss2 in 0.0f64..0.3,
    ) {
        let (r_lo, r_hi) = (rtt1.min(rtt2), rtt1.max(rtt2));
        let (l_lo, l_hi) = (loss1.min(loss2), loss1.max(loss2));
        let fast = mathis_throughput(Latency::from_ms(r_lo), LossRate::from_fraction(l_lo));
        let slow = mathis_throughput(Latency::from_ms(r_hi), LossRate::from_fraction(l_hi));
        prop_assert!(slow <= fast);
    }

    #[test]
    fn achievable_rate_never_exceeds_its_bounds(
        cap in 0.1f64..1000.0,
        rtt in 1.0f64..2000.0,
        loss in 0.0f64..0.3,
        desired in 0.01f64..1000.0,
        flows in 1u32..64,
        bg in 0.0f64..1.0,
    ) {
        let link = AccessLink::new(
            Bandwidth::from_mbps(cap),
            Latency::from_ms(rtt),
            LossRate::from_fraction(loss),
        );
        let want = Bandwidth::from_mbps(desired);
        let got = achievable_rate(&link, want, flows, bg);
        prop_assert!(got <= want);
        prop_assert!(got <= link.capacity);
    }

    #[test]
    fn upnp_counters_reconstruct_any_traffic_pattern(
        deltas in prop::collection::vec(0u64..50_000_000, 1..60),
    ) {
        let mut counter = UpnpCounter::new();
        let mut reads = vec![counter.read()];
        for &d in &deltas {
            counter.add(d);
            reads.push(counter.read());
        }
        let recovered = upnp_deltas(&reads, max_plausible_bytes(100e9, 30.0));
        prop_assert_eq!(recovered, deltas);
    }

    #[test]
    fn upnp_recovery_is_bounded_under_wrap_reset_and_drop_schedules(
        // Per poll interval: bytes transferred (up to ~2 GB, enough to be
        // implausible for a 100 Mbps / 30 s interval and to wrap the u32
        // register quickly), a reset roll (0 ⇒ gateway reboots, ~8%) and a
        // drop roll (0 ⇒ the poll is lost, ~10%, merging two intervals).
        schedule in prop::collection::vec(
            (0u64..2_000_000_000, 0u8..12, 0u8..10),
            2..60,
        ),
        preload in 0u64..4_000_000_000,
    ) {
        // 100 Mbps for 30 s, with the 2x headroom: 750 MB per interval.
        let max_plausible = max_plausible_bytes(100e6, 30.0);
        let mut upnp = UpnpCounter::new();
        let mut netstat = NetstatCounter::new();
        upnp.add(preload);
        netstat.add(preload);
        let mut upnp_reads = vec![upnp.read()];
        let mut net_reads = vec![netstat.read()];
        // Some(bytes): no reset since the last recorded poll and the true
        // total is plausible, so recovery must be *exact*. None: recovery
        // only has to respect the clamp bound.
        let mut expected: Vec<Option<u64>> = Vec::new();
        let mut pending = 0u64;
        let mut pending_reset = false;
        for &(bytes, reset_roll, drop_roll) in &schedule {
            if reset_roll == 0 {
                upnp.reset();
                netstat.reset();
                pending_reset = true;
            }
            upnp.add(bytes);
            netstat.add(bytes);
            pending += bytes;
            if drop_roll == 0 {
                continue; // lost poll: this interval merges into the next
            }
            upnp_reads.push(upnp.read());
            net_reads.push(netstat.read());
            expected.push((!pending_reset && pending <= max_plausible).then_some(pending));
            pending = 0;
            pending_reset = false;
        }

        let (recovered, stats) = upnp_deltas_stats(&upnp_reads, max_plausible);
        prop_assert_eq!(recovered.len(), expected.len());
        for (i, (&got, &want)) in recovered.iter().zip(&expected).enumerate() {
            // The headline guarantee of the recovery heuristic: no
            // recovered delta ever exceeds the plausibility clamp.
            prop_assert!(
                got <= max_plausible,
                "interval {i}: recovered {got} above clamp {max_plausible}"
            );
            if let Some(bytes) = want {
                prop_assert_eq!(got, bytes, "interval {i}: clean interval not exact");
                // The 64-bit netstat register cannot wrap, so on clean
                // intervals both counter sources must agree.
                let net_delta = net_reads[i + 1].saturating_sub(net_reads[i]);
                prop_assert_eq!(got, net_delta, "interval {i}: sources disagree");
            }
        }
        prop_assert!(
            stats.wraps + stats.resets <= recovered.len() as u64,
            "each interval fires at most one heuristic"
        );
        prop_assert!(stats.clamped <= stats.resets, "only resets clamp");
    }

    #[test]
    fn token_bucket_never_exceeds_rate_plus_burst(
        rate_mbps in 0.1f64..100.0,
        burst in 1e3f64..1e7,
        offers in prop::collection::vec(0.0f64..1e8, 1..50),
    ) {
        let mut tb = TokenBucket::new(Bandwidth::from_mbps(rate_mbps), burst);
        let mut granted = 0.0;
        for (i, offer) in offers.iter().enumerate() {
            granted += tb.admit(i as f64, *offer);
        }
        let horizon = offers.len() as f64;
        let ceiling = burst + rate_mbps * 1e6 / 8.0 * horizon;
        prop_assert!(granted <= ceiling + 1e-6, "granted {granted} vs ceiling {ceiling}");
    }
}

/// End-to-end version of the clamp bound, for both counter sources: under
/// seeded random workloads and a flaky (0.6-uptime) client whose missed
/// polls merge and drop intervals, every reconstructed per-slot rate stays
/// within the plausibility headroom of the link, and the traced registry
/// stays consistent (UPnP heuristics never fire for netstat collection).
#[test]
fn counter_collection_stays_plausible_under_random_schedules() {
    use needwant::types::{Bandwidth, Latency, LossRate, TimeAxis, Year};
    let link = AccessLink::new(
        Bandwidth::from_mbps(100.0),
        Latency::from_ms(30.0),
        LossRate::from_percent(0.01),
    );
    let wl = UserWorkload::with_bt(Bandwidth::from_mbps(20.0), 0.5);
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let truth = simulate_user(&link, &wl, TimeAxis::new(Year(2013), 3), &mut rng);
        for source in [CounterSource::Upnp, CounterSource::Netstat] {
            let mut reg = Registry::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 100);
            let series = UsageSeries::collect_via_counters_traced(
                &truth,
                0.6,
                source,
                link.capacity,
                &mut rng,
                &mut reg,
            );
            // max_plausible allows 2x the link capacity per interval.
            let ceiling = 2.0 * link.capacity.bps() + 1.0;
            for rate in series.rates(BtFilter::Include) {
                assert!(
                    rate <= ceiling,
                    "seed {seed} {source:?}: rate {rate} above {ceiling}"
                );
            }
            assert!(reg.counter("netsim.collect.polls") > 0, "{source:?}");
            let heuristics = reg.counter("netsim.upnp.wraps")
                + reg.counter("netsim.upnp.resets")
                + reg.counter("netsim.upnp.reset_clamped");
            match source {
                // A fat BT pipe over 3 days must wrap the u32 register.
                CounterSource::Upnp => {
                    assert!(reg.counter("netsim.upnp.wraps") > 0, "seed {seed}")
                }
                CounterSource::Netstat => {
                    assert_eq!(heuristics, 0, "netstat must not fire UPnP heuristics")
                }
            }
        }
    }
}
