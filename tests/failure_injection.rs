//! Failure injection: the pipeline must degrade gracefully, never panic,
//! when fed worlds the paper's analysis would also struggle with —
//! degraded path quality everywhere, markets with pathological pricing,
//! populations too thin for matching.

use needwant::dataset::{World, WorldConfig};
use needwant::market::{MarketSurvey, Plan, PlanCatalog, Technology};
use needwant::netsim::fault::FaultPlan;
use needwant::netsim::link::AccessLink;
use needwant::netsim::probe::NdtProbe;
use needwant::study::{sec3, sec4, sec6, sec7, StudyReport};
use needwant::types::{Bandwidth, Country, Latency, LossRate, Region};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn tiny_population_produces_empty_but_valid_tables() {
    // A couple of users per country: nearly every matched experiment
    // should come back empty rather than panicking.
    let mut cfg = WorldConfig::small(3);
    cfg.user_scale = 0.05;
    cfg.days = 1;
    cfg.fcc_users = 2;
    cfg.upgrade_fraction = 0.0;
    let world = World::with_countries(cfg, &["US", "JP", "BW", "SA", "IN"]);
    let ds = world.generate();
    let report = StudyReport::run(&ds, &world.profiles, 30);
    // Experiments with no pairs must simply report no rows.
    assert!(report.table1.rows.is_empty() || report.table1.rows[0].n_pairs > 0);
    assert!(report.india_vs_us.is_none() || report.india_vs_us.as_ref().unwrap().n_pairs >= 8);
    // Population exhibits still exist.
    assert!(report.fig1.3.median_capacity_mbps > 0.0);
}

#[test]
fn degraded_world_still_analyzable() {
    // Push every link through a satellite-like fault plan by raising the
    // whole world's path-quality parameters.
    let mut cfg = WorldConfig::small(17);
    cfg.user_scale = 2.0;
    cfg.days = 1;
    let mut world = World::with_countries(cfg, &["US", "DE", "JP"]);
    for p in &mut world.profiles {
        p.rtt_median_ms = 900.0;
        p.loss_median_pct = 3.0;
    }
    let ds = world.generate();
    let report = StudyReport::run(&ds, &world.profiles, 10);
    // The world is uniformly terrible: demand exists but is suppressed.
    let s = &report.fig1.3;
    assert!(
        s.median_latency_ms > 400.0,
        "median {}",
        s.median_latency_ms
    );
    assert!(s.frac_loss_above_1pct > 0.5);
    // The per-year experiment still runs (or declines gracefully).
    let _ = sec4::year_experiment(&ds, &mut bb_trace::EventLog::new());
}

#[test]
fn zero_correlation_market_is_excluded_not_fatal() {
    let mut survey = MarketSurvey::new();
    // Pathological market: price unrelated to capacity.
    survey.insert(
        Region::Africa,
        PlanCatalog::new(
            Country::new("XX"),
            vec![
                Plan::simple(1.0, 80.0, Technology::Dsl),
                Plan::simple(8.0, 20.0, Technology::Wireless),
                Plan::simple(2.0, 55.0, Technology::Dsl),
                Plan::simple(16.0, 60.0, Technology::Cable),
            ],
        ),
    );
    assert!(survey.upgrade_costs().is_empty(), "r < 0.4 must exclude it");
    let census = survey.correlation_census();
    assert_eq!(census.n_markets, 1);
    assert_eq!(census.share_moderate, 0.0);
    assert!(
        survey.table5().is_empty(),
        "no usable market, no Table 5 rows"
    );
}

#[test]
fn probe_survives_the_worst_links() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let probe = NdtProbe::default();
    for (cap, rtt, loss) in [
        (0.05, 2500.0, 28.0), // barely-working satellite
        (1000.0, 1.0, 0.0),   // pristine fiber
        (0.1, 1.0, 0.0),      // tiny but clean
    ] {
        let link = AccessLink::new(
            Bandwidth::from_mbps(cap),
            Latency::from_ms(rtt),
            LossRate::from_percent(loss),
        );
        let r = probe.run_averaged(&link, 3, &mut rng);
        assert!(r.download.bps() > 0.0);
        assert!(r.avg_rtt.ms() > 0.0);
        assert!(r.loss.fraction() <= 1.0);
    }
}

#[test]
fn fault_plans_compose_without_overflow() {
    let link = AccessLink::new(
        Bandwidth::from_mbps(10.0),
        Latency::from_ms(50.0),
        LossRate::from_percent(0.5),
    );
    // Stack degradations until loss saturates; must clamp, not overflow.
    let mut degraded = link;
    for _ in 0..10 {
        degraded = FaultPlan::satellite().apply(&degraded);
    }
    assert!(degraded.loss.fraction() <= 1.0);
    assert!(degraded.base_rtt.ms() > 5000.0);
}

#[test]
fn single_country_world_skips_cross_market_experiments() {
    let mut cfg = WorldConfig::small(23);
    cfg.user_scale = 2.0;
    cfg.days = 1;
    cfg.fcc_users = 0;
    let world = World::with_countries(cfg, &["US"]);
    let ds = world.generate();
    // The price experiment needs multiple price bins; with one market the
    // treatment side is empty and the table must come back rowless.
    let t3 = needwant::study::sec5::table3(&ds, &mut bb_trace::EventLog::new());
    assert!(t3.rows.is_empty());
    // Capacity experiments within the single market still work.
    let (dasu, _) = sec3::table2(&ds, &mut bb_trace::EventLog::new());
    let _ = dasu; // may or may not have rows at this size; must not panic
    let _ = sec6::table6(&ds, &mut bb_trace::EventLog::new());
    let _ = sec7::table7(&ds, &mut bb_trace::EventLog::new());
}
