//! Policy scenario: what does the price of broadband access do to usage?
//!
//! A policy maker wants to know how subscribers would behave if the entry
//! price of broadband in a market were lower (subsidy) or higher (tax,
//! market failure). We clone one market archetype, sweep its access price,
//! regenerate the world each time, and report the per-tier demand and peak
//! utilisation that result — the §5/§9 story ("a focus on wider access to
//! a medium, high-quality capacity service may have a more significant
//! impact than a focus on increased service capacity").
//!
//! ```text
//! cargo run --release --example market_policy
//! ```

use needwant::dataset::{World, WorldConfig};
use needwant::types::{Country, ServiceTier};

fn main() {
    println!("access-price sweep over a mid-income market archetype\n");
    println!(
        "{:>10}  {:>8}  {:>12}  {:>12}  {:>14}",
        "price", "users", "median cap", "mean demand", "peak utilization"
    );

    for price_multiplier in [0.5, 1.0, 1.5, 2.5, 4.0] {
        // Rebuild the world each round with Mexico's archetype rescaled.
        let mut cfg = WorldConfig::small(4242);
        cfg.user_scale = 60.0;
        cfg.days = 3;
        cfg.fcc_users = 0;
        let mut world = World::with_countries(cfg, &["MX"]);
        let profile = &mut world.profiles[0];
        profile.market.access_price *= price_multiplier;
        let base_price = profile.market.access_price;

        let ds = world.generate();
        let mx = Country::new("MX");

        let mut caps: Vec<f64> = ds.in_country(mx).map(|r| r.capacity.mbps()).collect();
        caps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_cap = caps[caps.len() / 2];

        let demands: Vec<f64> = ds
            .in_country(mx)
            .filter_map(|r| r.demand_no_bt.map(|d| d.mean.mbps()))
            .collect();
        let mean_demand = demands.iter().sum::<f64>() / demands.len() as f64;

        let utils: Vec<f64> = ds
            .in_country(mx)
            .filter_map(|r| r.peak_utilization())
            .collect();
        let mean_util = utils.iter().sum::<f64>() / utils.len() as f64;

        println!(
            "{:>9.0}$  {:>8}  {:>9.1} Mb  {:>9.2} Mb  {:>13.0}%",
            base_price,
            caps.len(),
            median_cap,
            mean_demand,
            mean_util * 100.0
        );
    }

    println!();
    println!("Reading the table: as access gets more expensive, subscribers");
    println!("shift down the ladder (median capacity falls) while the ones");
    println!("who stay use their links harder (utilisation rises) — the");
    println!("paper's 'need, want, can afford' selection in action.");

    // Per-tier demand at the baseline price, the Figure 9 view.
    let mut cfg = WorldConfig::small(4242);
    cfg.user_scale = 60.0;
    cfg.days = 3;
    cfg.fcc_users = 0;
    let ds = World::with_countries(cfg, &["MX"]).generate();
    println!("\nper-tier demand at baseline price:");
    for tier in ServiceTier::ALL {
        let demands: Vec<f64> = ds
            .dasu()
            .filter(|r| ServiceTier::of(r.capacity) == tier)
            .filter_map(|r| r.demand_no_bt.map(|d| d.peak.mbps()))
            .collect();
        if demands.len() < 10 {
            continue;
        }
        let mean = demands.iter().sum::<f64>() / demands.len() as f64;
        println!(
            "  {:<12} {:>5} users, mean peak demand {:>6.2} Mbps",
            tier.label(),
            demands.len(),
            mean
        );
    }
}
