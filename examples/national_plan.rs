//! §10 extension: "explore the potential benefits of national broadband
//! deployment plans, both on the market and on user behaviors."
//!
//! Three Botswanas:
//!   (a) the 2013 status quo,
//!   (b) three more years of organic evolution (prices drift down,
//!       ladders grow),
//!   (c) a national plan applied in 2013: entry price halved and a 1 Mbps
//!       service floor.
//!
//! For each we regenerate the same population and compare what a
//! measurement study would see: median capacity, demand, utilisation and
//! how much of their income subscribers spend.
//!
//! ```text
//! cargo run --release --example national_plan
//! ```

use needwant::dataset::{World, WorldConfig};
use needwant::stats::quantile;
use needwant::types::Country;

fn main() {
    println!("Botswana under three market regimes\n");
    println!(
        "{:<22} {:>10}  {:>12}  {:>12}  {:>14}",
        "regime", "users", "median cap", "mean demand", "peak utilization"
    );

    for (label, evolve_years, subsidise) in [
        ("status quo 2013", 0, false),
        ("organic, 3 yrs later", 3, false),
        ("national plan 2013", 0, true),
    ] {
        let mut cfg = WorldConfig::small(60_203); // Botswana's dialing code
        cfg.user_scale = 120.0;
        cfg.days = 3;
        cfg.fcc_users = 0;
        let mut world = World::with_countries(cfg, &["BW"]);
        {
            let market = &mut world.profiles[0].market;
            *market = market.evolved(evolve_years);
            if subsidise {
                *market = market.subsidised(1.0);
            }
        }
        let ds = world.generate();
        let bw = Country::new("BW");

        let mut caps: Vec<f64> = ds.in_country(bw).map(|r| r.capacity.mbps()).collect();
        caps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let demands: Vec<f64> = ds
            .in_country(bw)
            .filter_map(|r| r.demand_no_bt.map(|d| d.mean.mbps()))
            .collect();
        let utils: Vec<f64> = ds
            .in_country(bw)
            .filter_map(|r| r.peak_utilization())
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

        println!(
            "{:<22} {:>10}  {:>9.2} Mb  {:>9.3} Mb  {:>13.0}%",
            label,
            caps.len(),
            quantile(&caps, 0.5),
            mean(&demands),
            mean(&utils) * 100.0
        );
    }

    println!();
    println!("Reading the table: organic market evolution barely moves an");
    println!("affordability-bound market — cheaper fast tiers don't help");
    println!("subscribers who can't clear the entry price. The national plan");
    println!("does: the same population lands on ~2x the capacity, realized");
    println!("demand rises, and the saturated-link utilisation relaxes —");
    println!("the paper's §9 policy argument ('a focus on wider access to a");
    println!("medium, high-quality capacity service'), quantified.");
}
