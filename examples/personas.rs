//! The §10 extension: how different *categories* of users are shaped by
//! the same markets — streamers, browsers, downloaders and gamers.
//!
//! ```text
//! cargo run --release --example personas
//! ```

use needwant::dataset::{Persona, World, WorldConfig};
use needwant::study::ext;
use needwant::types::ServiceTier;

fn main() {
    let mut cfg = WorldConfig::small(2718);
    cfg.user_scale = 10.0;
    cfg.days = 3;
    cfg.fcc_users = 0;
    let ds = World::with_countries(cfg, &["US", "DE", "GB", "JP", "BR", "MX"]).generate();

    // 1. Demand by persona.
    println!("demand by user category ({} users):\n", ds.dasu().count());
    println!(
        "{:<12} {:>6}  {:>18}  {:>16}",
        "persona", "users", "mean demand", "BitTorrent share"
    );
    for row in ext::persona_breakdown(&ds) {
        println!(
            "{:<12} {:>6}  {:>11.2} Mbps [{:.2}, {:.2}]  {:>13.0}%",
            row.persona.label(),
            row.n_users,
            row.mean_demand_mbps,
            row.ci.0,
            row.ci.1,
            row.bt_share * 100.0
        );
    }

    // 2. Do streamers pick faster plans? (Need drives the tier choice.)
    println!("\ntier choice by persona:");
    for persona in Persona::ALL {
        let mut counts = std::collections::BTreeMap::new();
        let mut total = 0usize;
        for r in ds.dasu().filter(|r| r.persona == persona) {
            *counts.entry(ServiceTier::of(r.capacity)).or_insert(0usize) += 1;
            total += 1;
        }
        if total == 0 {
            continue;
        }
        let above_16 = ServiceTier::ALL
            .iter()
            .filter(|t| **t >= ServiceTier::From16To32)
            .map(|t| counts.get(t).copied().unwrap_or(0))
            .sum::<usize>();
        println!(
            "  {:<12} {:>4} users, {:>4.0}% on tiers of 16+ Mbps",
            persona.label(),
            total,
            100.0 * above_16 as f64 / total as f64
        );
    }

    // 3. The matched experiment: the label survives the confounders.
    match ext::persona_experiment(&ds) {
        Some(row) => println!(
            "\nmatched streamers-vs-browsers: streamers use more {:.1}% of the time (p = {:.2e}, {} pairs)",
            row.percent_holds, row.p_value, row.n_pairs
        ),
        None => println!("\n(too few matched streamer/browser pairs at this scale)"),
    }

    println!("\nThe paper treats users 'as a homogeneous consumer group' and");
    println!("flags exactly this breakdown as future work (§10); here the");
    println!("persona shapes the application mix and duty cycle, and the");
    println!("same need/want/afford machinery produces the differences.");
}
