//! Track individual movers across service upgrades (§3.2, Figs. 4 & 5).
//!
//! Generates a world with a high mover fraction, then walks the upgrade
//! observations: how much did each user's demand change, by initial tier,
//! and how often did the upgrade "pay off" (demand actually rose)?
//!
//! ```text
//! cargo run --release --example upgrade_dynamics
//! ```

use needwant::dataset::{World, WorldConfig};
use needwant::stats::hypothesis::{binomial_test, Tail};
use needwant::types::{DemandMetric, UpgradeTier};
use std::collections::BTreeMap;

fn main() {
    let mut cfg = WorldConfig::small(314);
    cfg.user_scale = 10.0;
    cfg.days = 3;
    cfg.fcc_users = 0;
    cfg.upgrade_fraction = 0.6; // most users observed across an upgrade
    let ds = World::with_countries(cfg, &["US", "DE", "GB", "JP", "BR"]).generate();

    println!(
        "{} users observed on both a slow and a fast network\n",
        ds.upgrades.len()
    );

    // Per initial tier: mean demand change and share of movers who rose.
    let mut by_tier: BTreeMap<UpgradeTier, Vec<(f64, f64)>> = BTreeMap::new();
    for up in &ds.upgrades {
        let (Some(from), Some(before), Some(after)) = (
            UpgradeTier::of(up.before.capacity),
            up.before.demand_no_bt,
            up.after.demand_no_bt,
        ) else {
            continue;
        };
        by_tier.entry(from).or_default().push((
            before.metric(DemandMetric::Peak).mbps(),
            after.metric(DemandMetric::Peak).mbps(),
        ));
    }

    println!(
        "{:<12} {:>7}  {:>12}  {:>12}  {:>10}",
        "from tier", "movers", "peak before", "peak after", "% rising"
    );
    for (tier, moves) in &by_tier {
        if moves.len() < 5 {
            continue;
        }
        let before: f64 = moves.iter().map(|(b, _)| b).sum::<f64>() / moves.len() as f64;
        let after: f64 = moves.iter().map(|(_, a)| a).sum::<f64>() / moves.len() as f64;
        let rising = moves.iter().filter(|(b, a)| a > b).count();
        println!(
            "{:<12} {:>7}  {:>9.2} Mb  {:>9.2} Mb  {:>9.0}%",
            tier.label(),
            moves.len(),
            before,
            after,
            100.0 * rising as f64 / moves.len() as f64
        );
    }

    // The Table 1 sign test over all movers.
    let mut holds = 0u64;
    let mut trials = 0u64;
    for moves in by_tier.values() {
        for (b, a) in moves {
            if a != b {
                trials += 1;
                if a > b {
                    holds += 1;
                }
            }
        }
    }
    if trials > 0 {
        let t = binomial_test(holds, trials, 0.5, Tail::Greater);
        println!(
            "\noverall: peak demand rises for {:.1}% of movers (p = {:.2e}) — the",
            t.share_percent(),
            t.p_value
        );
        println!("paper's Table 1 reports 70.3% with p = 1.13e-36 on its larger sample.");
    }

    println!("\nNote the gradient: upgrades from the slowest tiers unlock");
    println!("pent-up demand (capacity was the binding constraint); upgrades");
    println!("between already-fast tiers change little, because demand there");
    println!("is bounded by the era's applications, not the pipe (§3.2, §9).");
}
