//! Fault injection: degrade a population's connection quality and watch
//! demand fall (the §7 mechanism), smoltcp-style CLI knobs included.
//!
//! ```text
//! cargo run --release --example quality_impact -- [--latency-ms 600] [--loss-pct 1.5] [--shape-mbps 2]
//! ```

use needwant::netsim::collect::{BtFilter, UsageSeries, Vantage};
use needwant::netsim::fault::FaultPlan;
use needwant::netsim::link::AccessLink;
use needwant::netsim::probe::NdtProbe;
use needwant::netsim::workload::{simulate_user, UserWorkload};
use needwant::types::{Bandwidth, Latency, LossRate, TimeAxis, Year};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Parse the fault-injection knobs.
    let mut extra_latency = 600.0f64;
    let mut extra_loss = 1.5f64;
    let mut shape: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("{flag} takes a number"))
        };
        match flag.as_str() {
            "--latency-ms" => extra_latency = val(),
            "--loss-pct" => extra_loss = val(),
            "--shape-mbps" => shape = Some(val()),
            other => panic!("unknown flag {other} (try --latency-ms/--loss-pct/--shape-mbps)"),
        }
    }

    let plan = FaultPlan {
        extra_latency: Latency::from_ms(extra_latency),
        extra_loss: LossRate::from_percent(extra_loss),
        sample_drop_prob: 0.0,
        shape_to: shape.map(Bandwidth::from_mbps),
    };

    let baseline = AccessLink::new(
        Bandwidth::from_mbps(10.0),
        Latency::from_ms(45.0),
        LossRate::from_percent(0.05),
    );
    let degraded = plan.apply(&baseline);

    println!("baseline link: {:?}", baseline);
    println!("degraded link: {:?}\n", degraded);

    // What an NDT probe would report on each.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let probe = NdtProbe::default();
    let base_report = probe.run_averaged(&baseline, 4, &mut rng);
    let degr_report = probe.run_averaged(&degraded, 4, &mut rng);
    println!(
        "NDT baseline: {} down, {} rtt, {} loss",
        base_report.download, base_report.avg_rtt, base_report.loss
    );
    println!(
        "NDT degraded: {} down, {} rtt, {} loss\n",
        degr_report.download, degr_report.avg_rtt, degr_report.loss
    );

    // Simulate a small cohort on both links and compare realized demand.
    let axis = TimeAxis::new(Year(2013), 5);
    let wl = UserWorkload::without_bt(Bandwidth::from_kbps(700.0));
    let cohort = 40;
    let mut totals = (0.0f64, 0.0f64);
    let mut peaks = (0.0f64, 0.0f64);
    for seed in 0..cohort {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + seed);
        let t_base = simulate_user(&baseline, &wl, axis, &mut rng);
        let mut rng = ChaCha8Rng::seed_from_u64(100 + seed);
        let t_degr = simulate_user(&degraded, &wl, axis, &mut rng);
        totals.0 += t_base.total_bytes();
        totals.1 += t_degr.total_bytes();
        let mut rng = ChaCha8Rng::seed_from_u64(500 + seed);
        if let Some(d) =
            UsageSeries::collect(&t_base, Vantage::DASU_TYPICAL, &mut rng).demand(BtFilter::Include)
        {
            peaks.0 += d.peak.mbps();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(500 + seed);
        if let Some(d) =
            UsageSeries::collect(&t_degr, Vantage::DASU_TYPICAL, &mut rng).demand(BtFilter::Include)
        {
            peaks.1 += d.peak.mbps();
        }
    }

    let suppression = 100.0 * (1.0 - totals.1 / totals.0);
    println!("cohort of {cohort} users, {} days each:", 5);
    println!(
        "  total bytes:   baseline {:.2} GB, degraded {:.2} GB ({suppression:.0}% suppressed)",
        totals.0 / 1e9,
        totals.1 / 1e9
    );
    println!(
        "  avg p95 rate:  baseline {:.2} Mbps, degraded {:.2} Mbps",
        peaks.0 / cohort as f64,
        peaks.1 / cohort as f64
    );
    println!();
    println!("This is the paper's §7 finding as a mechanism: latencies above");
    println!("~500 ms and loss above ~1% collapse the per-flow TCP bound, so");
    println!("streaming sessions degrade or get abandoned, and total demand");
    println!("drops even though the link's nominal capacity is unchanged.");
}
