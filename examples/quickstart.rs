//! Quickstart: build a small world, generate a dataset, and run one
//! natural experiment end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use needwant::dataset::{World, WorldConfig};
use needwant::report::text;
use needwant::study::{sec2, sec3};

fn main() {
    // 1. A small deterministic world: five markets, three-day observation
    //    windows, a US gateway cohort alongside the global end-host one.
    let mut cfg = WorldConfig::small(7);
    cfg.user_scale = 8.0;
    cfg.days = 3;
    cfg.fcc_users = 150;
    let world = World::with_countries(cfg, &["US", "JP", "DE", "BR", "IN"]);

    // 2. Generate: agents pick plans ("need, want, can afford"), traffic is
    //    simulated over their links, and the Dasu/FCC pipelines observe it.
    let dataset = world.generate();
    println!(
        "generated {} user records in {} countries, {} service upgrades, {} plan catalogues\n",
        dataset.records.len(),
        dataset.n_countries(),
        dataset.upgrades.len(),
        dataset.survey.len(),
    );

    // 3. Population characteristics (the paper's Figure 1).
    let (fig1a, _, _, stats) = sec2::figure1(&dataset, &mut bb_trace::EventLog::new());
    println!("{}", text::render_cdf_figure(&fig1a));
    println!(
        "median capacity {:.1} Mbps, median latency {:.0} ms, {:.1}% of users above 1% loss\n",
        stats.median_capacity_mbps,
        stats.median_latency_ms,
        stats.frac_loss_above_1pct * 100.0,
    );

    // 4. The headline relationship: usage vs capacity (Figure 2d).
    let fig2 = sec3::figure2(&dataset, &mut bb_trace::EventLog::new());
    println!("{}", text::render_binned_figure(&fig2[3]));

    // 5. A natural experiment: does moving to a faster service raise an
    //    individual's demand? (Table 1.)
    let table1 = sec3::table1(&dataset, &mut bb_trace::EventLog::new());
    println!("{}", text::render_experiment_table(&table1));
    for row in &table1.rows {
        let verdict = if row.significant && row.percent_holds > 52.0 {
            "causal effect supported"
        } else {
            "inconclusive at this sample size"
        };
        println!("{}: {verdict}", row.control);
    }
}
