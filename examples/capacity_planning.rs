//! Operator scenario: over-provisioning headroom from per-tier demand.
//!
//! §9 of the paper suggests that "as service capacities continue to
//! increase, network operators can plan on higher over-provisioning
//! rates": peak per-subscriber demand grows much more slowly than tier
//! capacity, so an aggregation link serving N subscribers of a fast tier
//! needs far less than N × tier. This example computes, per capacity tier,
//! the 95th-percentile per-subscriber demand and the implied
//! over-subscription ratio an operator could plan with.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use needwant::dataset::{World, WorldConfig};
use needwant::stats::quantile;
use needwant::types::CapacityBin;
use std::collections::BTreeMap;

fn main() {
    let mut cfg = WorldConfig::small(99);
    cfg.user_scale = 25.0;
    cfg.days = 3;
    cfg.fcc_users = 400;
    let ds = World::with_countries(cfg, &["US"]).generate();

    // Collect per-user peak (95th-percentile) demand per capacity bin,
    // including BitTorrent traffic — the operator carries all of it.
    let mut per_bin: BTreeMap<CapacityBin, Vec<f64>> = BTreeMap::new();
    for r in &ds.records {
        if let Some(d) = r.demand_with_bt {
            per_bin
                .entry(CapacityBin::of(r.capacity))
                .or_default()
                .push(d.peak.mbps());
        }
    }

    println!("per-tier peak demand and over-subscription headroom (US market)\n");
    println!(
        "{:<14} {:>6}  {:>12}  {:>12}  {:>16}",
        "tier", "users", "median peak", "p95 of peaks", "oversubscription"
    );
    for (bin, peaks) in &per_bin {
        if peaks.len() < 25 {
            continue;
        }
        let median = quantile(peaks, 0.5);
        let p95 = quantile(peaks, 0.95);
        // Plan for the 95th percentile subscriber's peak: the ratio of the
        // sold rate to that demand is the safe over-subscription factor.
        let tier_mbps = bin.upper().mbps();
        let ratio = tier_mbps / p95.max(1e-9);
        println!(
            "{:<14} {:>6}  {:>9.2} Mb  {:>9.2} Mb  {:>15.1}x",
            bin.to_string(),
            peaks.len(),
            median,
            p95,
            ratio
        );
    }

    println!();
    println!("The over-subscription column is the paper's §9 point: the");
    println!("faster the tier, the more subscribers a unit of backhaul can");
    println!("serve, because per-tier demand plateaus near the application");
    println!("ceilings (~10 Mbps era video) rather than scaling with the");
    println!("sold rate.");
}
