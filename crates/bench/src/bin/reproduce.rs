//! The reproduction harness: regenerate every table and figure of the
//! paper from the synthetic world and compare against the published
//! values.
//!
//! ```text
//! cargo run --release -p bb-bench --bin reproduce -- [--scale N] [--days D] [--seed S] [--out DIR]
//!     [--threads T] [--shards S] [--users U]
//! ```
//!
//! Outputs: rendered text exhibits on stdout plus `DIR/` with one `.txt`,
//! `.csv` and `.json` file per exhibit, and `DIR/experiments.md` with the
//! paper-vs-measured comparison (the source of the repository's
//! `EXPERIMENTS.md`).
//!
//! `--threads`/`--shards` parallelise world generation through
//! `bb-engine`; the output is bit-identical for every plan. `--users U`
//! switches to the streaming scale path: the panel is never materialised —
//! `~U` users are folded shard by shard into `bb_study::StreamStudy`
//! sketches, and the headline exhibits (Fig. 1, Fig. 2, Fig. 7) are
//! rendered from the merged sketches in bounded memory.
//!
//! `--metrics PATH` writes the merged `bb-trace` registry — collection
//! heuristic counters, a pure function of the seed and therefore
//! byte-identical for every shard/thread plan — plus a plan-dependent
//! `.runtime.json` sidecar (wall times, steal counts). `--ledger PATH`
//! writes the provenance event log (JSONL, also plan-invariant):
//! one event per exhibit with input/drop accounting, one `match_audit`
//! per natural experiment, one `sign_test` per reported test.
//! `--chrome-trace PATH` writes a plan-dependent Chrome trace-event
//! file of the harness phases, loadable in Perfetto. `--quiet`
//! suppresses the per-phase progress lines on stderr.
//!
//! `--checkpoint DIR` commits every completed shard to `DIR` (atomic
//! tmp-file + rename, fsync'd manifest) and `--resume` restores the
//! committed shards of a matching earlier run instead of recomputing
//! them; mismatched or corrupt state is rejected and recomputed, never
//! merged. A resumed run's outputs are byte-identical to a cold run
//! under any `--threads`/`--shards` plan. `DIR/status.json` records the
//! `checkpoint.skipped` / `checkpoint.recomputed` /
//! `checkpoint.rejected` counters of the most recent run.
//! `--fail-after-shard N` is the crash-injection test hook: the process
//! aborts with exit code 83 once N shards are durably committed.

use bb_bench::REPRO_SEED;
use bb_dataset::{World, WorldConfig};
use bb_engine::{
    atomic_write, CheckpointParams, CheckpointReport, CheckpointStore, RunHooks, RunStats,
    ShardPlan,
};
use bb_netsim::chaos::{ChaosScenario, ChaosSpec};
use bb_report::bundle;
use bb_report::csv;
use bb_report::gnuplot;
use bb_report::json;
use bb_report::text;
use bb_serve::{Server, ServerConfig};
use bb_study::{provenance, StreamStudy, StudyReport};
use bb_trace::{EventLog, Registry, Timings};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
usage: reproduce [options]
       reproduce serve [serve options]
       reproduce coordinator [coordinator options]
       reproduce worker --connect ADDR [worker options]
       reproduce chaosnet --upstream ADDR [chaosnet options]

Regenerates the paper's tables and figures from the synthetic world.

options:
  --seed S        world seed (default: the pinned reproduction seed)
  --scale N       per-country user multiplier; finite and > 0 (default 40)
  --days D        observation window in days; at least 1 (default 7)
  --fcc N         size of the US-only FCC gateway cohort (default 600)
  --out DIR       output directory for exhibits (default: results)
  --sweep N       also run a robustness sweep over N regenerated seeds
  --chaos NAME    degrade collection with a deterministic fault scenario:
                  burst-outage, clock-skew, reset-storm, poll-churn,
                  probe-blackout, targeted-us, omnibus
  --severity S    chaos severity in [0, 1] (default 0.5; requires --chaos;
                  severity 0 is bit-identical to running without --chaos)
  --chaos-sweep   run the chaos campaign: the full experiment battery
                  across a severity grid of the --chaos scenario (default
                  omnibus), appended to experiments.md as the \"Robustness
                  under degraded collection\" section and written to
                  OUT/chaos.json (plan-invariant; incompatible with
                  --users)
  --threads T     worker threads; at least 1 (default 1)
  --shards S      shard count; at least 1 (default: derived from --threads)
  --users U       stream ~U users through the sketch study instead of
                  materialising the panel; at least 1
  --metrics PATH  write the merged bb-trace metrics registry as JSON to
                  PATH (byte-identical for any --threads/--shards plan)
                  plus a plan-dependent PATH-adjacent .runtime.json
                  sidecar with wall times and steal counts
  --ledger PATH   write the provenance event log as JSONL to PATH: per-
                  exhibit input/drop accounting, per-experiment matching
                  audits and sign-test inputs (byte-identical for any
                  --threads/--shards plan)
  --chrome-trace PATH
                  write a Chrome trace-event JSON file of the harness
                  phases to PATH (plan-dependent; open in Perfetto or
                  chrome://tracing)
  --checkpoint DIR
                  durably commit each completed generation shard to DIR
                  (atomic rename + fsync'd manifest); DIR/status.json
                  records the checkpoint.* counters of the run
  --resume        restore committed shards from --checkpoint DIR instead
                  of recomputing them; mismatched or corrupt state is
                  rejected and recomputed, and the outputs stay
                  byte-identical to a cold run under any plan
  --fail-after-shard N
                  crash-injection test hook: abort with exit code 83
                  once N shards are durably committed (requires
                  --checkpoint; N at least 1)
  --quiet         suppress per-phase progress lines on stderr
  -h, --help      print this help

serve options (reproduce serve: always-on query gateway over the
streaming path — POST /jobs, SSE progress at /jobs/{id}/events, cached
results at /metrics, /ledger, /exhibits/{id}, /countries/{cc},
/survival; responses are byte-identical to this harness's artifacts for
the same parameters):
  --port P        TCP port to bind on 127.0.0.1; 0 picks an ephemeral
                  port (default 8080; the bound address is printed on
                  stdout as 'bb-serve listening on http://HOST:PORT')
  --cache-dir DIR root of the manifest-keyed result cache and the
                  per-job checkpoint directories; must be non-empty
                  (default: serve-cache)
  --days D        observation window for every job, days (default 7)
  --fcc N         FCC gateway cohort size for every job (default 600)
  --seed S        seed for jobs that omit one (default: the pinned
                  reproduction seed)
  --users U       user count for jobs that omit one (default 2000)
  --threads T     worker threads; at least 1 (default 1)
  --shards S      shard count; at least 1 (default: from --threads);
                  part of the cache key
  --access-log F  append one JSONL line per request to F (ts, request
                  id, method, route template, path, status, bytes, µs);
                  live telemetry is also exposed at GET /metrics.prom
                  (Prometheus text) and GET /debug/telemetry (JSON)
  --quiet         suppress startup lines on stderr
  -h, --help      print this help

coordinator options (reproduce coordinator: serve shard leases to
`reproduce worker` processes over TCP and merge their snapshot-encoded
partials in shard order; metrics.json, the ledger, and every exhibit
are byte-identical to a single-process `reproduce --users` run of the
same seed/users/days/fcc/chaos — the bound address is printed on stdout
as 'bb-federate coordinator listening on HOST:PORT'):
  --listen ADDR   TCP bind address (default 127.0.0.1:0 = ephemeral)
  --users U       stream ~U users; at least 1 (default 2000)
  --workers K     expected worker count; only sets the default shard
                  count (K*4 oversubscription); at least 1 (default 2)
  --shards S      shard count; at least 1 (default: workers*4)
  --seed S        world seed (default: the pinned reproduction seed)
  --days D        observation window in days; at least 1 (default 7)
  --fcc N         US-only FCC gateway cohort size (default 600)
  --chaos NAME    degraded-collection scenario (see the batch options)
  --severity S    chaos severity in [0, 1] (default 0.5)
  --lease-timeout SECS
                  reassign a leased shard after SECS without a result
                  or heartbeat; at least 1 (default 30)
  --io-deadline SECS
                  drop a worker socket silent for SECS (half-open or
                  stalled peers become counted lease expiries instead
                  of hung threads); at least 1 (default 30)
  --checkpoint DIR
                  durably commit every merged shard payload to DIR as
                  it lands (atomic rename + fsync'd manifest), so a
                  killed coordinator can restart with --resume
  --resume        restore committed shards from --checkpoint DIR and
                  re-lease only the missing ranges; resumed output is
                  byte-identical to a cold single-process run
  --out DIR       output directory for exhibits (default: results)
  --metrics PATH  write the merged metrics registry to PATH plus a
                  federation .runtime.json sidecar (workers,
                  reassignments, rejections, reconnects, deadline
                  expiries, resumed shards — process-dependent)
  --ledger PATH   write the provenance event log as JSONL to PATH
  --quiet         suppress progress lines on stderr
  -h, --help      print this help

worker options (reproduce worker: claim shard ranges from a
coordinator, compute them with the same per-range fold the in-process
path uses, stream the partials back; run as many workers as you like;
losing the coordinator triggers a deterministic backoff reconnect loop
that re-sends the in-flight result on the new connection):
  --connect ADDR  coordinator address (required; HOST:PORT from the
                  coordinator's stdout line)
  --die-on-assign N
                  crash-injection test hook: abort without a result on
                  receiving the Nth shard assignment (N at least 1)
  --max-reconnects N
                  consecutive failed connect/handshake attempts before
                  giving up; a successful handshake resets the count;
                  0 disables reconnecting (default 5)
  --backoff-cap SECS
                  ceiling of the exponential reconnect backoff; at
                  least 1 (default 5)
  --backoff-seed S
                  seed of the deterministic backoff jitter (default:
                  the process id)
  --io-deadline SECS
                  treat a coordinator silent for SECS as lost and
                  reconnect; at least 1 (default 30)
  --quiet         suppress progress lines on stderr
  -h, --help      print this help

chaosnet options (reproduce chaosnet: a deterministic flaky-network
TCP proxy; point workers at its address and it forwards to --upstream,
injecting a seeded schedule of connection cuts, stalls, and delivery
delays — the bound address is printed on stdout as 'bb-chaosnet
listening on HOST:PORT -> UPSTREAM'; SIGTERM/SIGINT print the fault
stats and exit):
  --upstream ADDR coordinator address to forward to (required)
  --seed S        fault schedule seed (default: the pinned seed)
  --cut N         per-mille of connections severed mid-stream
                  (default 0)
  --stall N       per-mille of connections silenced while held open
                  (default 0)
  --delay N       per-mille of connections with per-chunk delivery
                  delay (default 0; cut+stall+delay at most 1000)
  --cut-bytes MAX max bytes forwarded before a cut or stall fires
                  (default 4096)
  --delay-ms MAX  max per-chunk delay in milliseconds (default 50)
  --quiet         suppress the stats line on stderr
  -h, --help      print this help
";

/// Exit code of the `--fail-after-shard` injected crash: distinguishable
/// from real failures (1) and usage errors (2) so the recovery tests can
/// assert the abort actually came from the hook.
const FAIL_AFTER_EXIT: i32 = 83;

/// A progress line on stderr, suppressed by `--quiet`.
macro_rules! progress {
    ($args:expr, $($t:tt)*) => {
        if !$args.quiet {
            eprintln!($($t)*);
        }
    };
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("coordinator") => {
            match CoordinatorCli::try_parse(argv.into_iter().skip(1)) {
                Ok(None) => print!("{USAGE}"),
                Ok(Some(args)) => {
                    if let Err(err) = bb_bench::federation::run_coordinator(&args) {
                        eprintln!("reproduce: coordinator: {err}");
                        std::process::exit(1);
                    }
                }
                Err(err) => {
                    eprint!("reproduce: {err}\n\n{USAGE}");
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("worker") => {
            match WorkerCli::try_parse(argv.into_iter().skip(1)) {
                Ok(None) => print!("{USAGE}"),
                Ok(Some(args)) => {
                    if let Err(err) = bb_bench::federation::run_worker_process(
                        &args.connect,
                        &args.options,
                        args.quiet,
                    ) {
                        eprintln!("reproduce: worker: {err}");
                        std::process::exit(1);
                    }
                }
                Err(err) => {
                    eprint!("reproduce: {err}\n\n{USAGE}");
                    std::process::exit(2);
                }
            }
            return;
        }
        Some("chaosnet") => {
            match ChaosnetCli::try_parse(argv.into_iter().skip(1)) {
                Ok(None) => print!("{USAGE}"),
                Ok(Some(args)) => run_chaosnet(&args),
                Err(err) => {
                    eprint!("reproduce: {err}\n\n{USAGE}");
                    std::process::exit(2);
                }
            }
            return;
        }
        _ => {}
    }
    if argv.first().map(String::as_str) == Some("serve") {
        match ServeArgs::try_parse(argv.into_iter().skip(1)) {
            Ok(None) => {
                print!("{USAGE}");
                return;
            }
            Ok(Some(args)) => run_serve(&args),
            Err(err) => {
                eprint!("reproduce: {err}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
        return;
    }
    let args = match Args::try_parse(argv.into_iter()) {
        Ok(Parsed::Help) => {
            print!("{USAGE}");
            return;
        }
        Ok(Parsed::Run(args)) => *args,
        Err(err) => {
            eprint!("reproduce: {err}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let plan = args.plan();
    if let Some(users) = args.users {
        run_streaming(&args, plan, users);
        return;
    }
    progress!(
        args,
        "generating world: seed {}, user scale {}, {} days, {} FCC gateways ({} shards / {} threads)",
        args.seed,
        args.scale,
        args.days,
        args.fcc_users,
        plan.shards,
        plan.threads
    );
    let mut cfg = WorldConfig::paper_scale(args.seed);
    cfg.user_scale = args.scale;
    cfg.days = args.days;
    cfg.fcc_users = args.fcc_users;
    cfg.chaos = args.chaos_spec();
    if let Some(spec) = &cfg.chaos {
        progress!(args, "chaos campaign active: {}", spec.label());
    }
    let world = World::new(cfg);
    let mut timings = Timings::new();
    timings.begin("reproduce");
    timings.begin("generate");
    let store = checkpoint_store(&args, "materialised");
    let fail_hook = fail_after_hook(&args);
    let hooks = match fail_hook.as_ref() {
        Some(hook) => RunHooks::on_commit(hook),
        None => RunHooks::none(),
    };
    let (dataset, registry, stats, ckpt) = match &store {
        Some(store) => match world.generate_with_checkpointed(plan, store, args.resume, hooks) {
            Ok((dataset, registry, stats, report)) => {
                report_checkpoint(&args, store, &report);
                (dataset, registry, stats, Some(report))
            }
            Err(e) => {
                eprintln!("reproduce: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let (dataset, registry, stats) = world.generate_with_traced(plan);
            (dataset, registry, stats, None)
        }
    };
    timings.end();
    progress!(
        args,
        "generated {} user records ({} Dasu / {} FCC), {} movers, {} markets in {:.1?}",
        dataset.records.len(),
        dataset.dasu().count(),
        dataset.fcc().count(),
        dataset.upgrades.len(),
        dataset.survey.len(),
        stats.total
    );

    let t1 = std::time::Instant::now();
    timings.begin("analysis");
    let mut ledger = EventLog::new();
    ledger
        .emit("dataset")
        .u64("seed", args.seed)
        .u64("records", dataset.records.len() as u64)
        .u64("dasu", dataset.dasu().count() as u64)
        .u64("fcc", dataset.fcc().count() as u64)
        .u64("movers", dataset.upgrades.len() as u64)
        .u64("markets", dataset.survey.len() as u64);
    provenance::log_data_quality(&mut ledger, &registry);
    let report = StudyReport::run_with_ledger(&dataset, &world.profiles, 30, &mut ledger);
    timings.end();
    progress!(args, "analysis pipeline finished in {:.1?}", t1.elapsed());
    let extensions = bb_study::ext::extension_table(&dataset);
    let separations = bb_study::ext::cdf_separations(&dataset);
    let personas = bb_study::ext::persona_breakdown(&dataset);
    let uploads = bb_study::ext::upload_breakdown(&dataset);

    create_dir(&args.out);
    timings.begin("render");
    write_metrics(&args, &registry, &stats, ckpt.as_ref());
    write_ledger(&args, &ledger);
    write_exhibits(&report, &args.out);
    write(
        &args.out,
        "ext.txt",
        &text::render_experiment_table(&extensions),
    );
    let mut comparison = comparison_markdown(&report);
    comparison.push_str(&extensions_markdown(
        &extensions,
        &separations,
        &personas,
        &uploads,
    ));
    if args.sweep_seeds > 0 {
        progress!(
            args,
            "running robustness sweep over {} seeds…",
            args.sweep_seeds
        );
        // A reduced world per seed keeps the sweep affordable.
        let mut sweep_cfg = WorldConfig::small(args.seed);
        sweep_cfg.user_scale = (args.scale / 3.0).max(1.0);
        sweep_cfg.days = 3;
        sweep_cfg.fcc_users = args.fcc_users / 2;
        let rows = bb_study::robustness::seed_sweep(&sweep_cfg, args.sweep_seeds);
        use std::fmt::Write as _;
        let mut md = String::from("## Robustness across seeds\n\n");
        let _ = writeln!(
            md,
            "Each experiment pooled and re-run over {} regenerated worlds (reduced scale):\n",
            args.sweep_seeds
        );
        md.push_str(&bb_report::markdown::sweep_table(&rows));
        md.push('\n');
        comparison.push_str(&md);
    }
    if args.chaos_sweep {
        let scenario = args.chaos.unwrap_or(ChaosScenario::Omnibus);
        progress!(
            args,
            "running chaos campaign: scenario {} over severities {:?}…",
            scenario.name(),
            CHAOS_GRID
        );
        // Same reduced world the seed sweep uses — the campaign
        // regenerates it once per severity.
        let mut chaos_cfg = WorldConfig::small(args.seed);
        chaos_cfg.user_scale = (args.scale / 3.0).max(1.0);
        chaos_cfg.days = 3;
        chaos_cfg.fcc_users = args.fcc_users / 2;
        let matrix = bb_study::robustness::chaos_sweep(&chaos_cfg, scenario, CHAOS_GRID, plan);
        let mut md = String::from("## Robustness under degraded collection\n\n");
        let _ = writeln!(
            md,
            "The full experiment battery re-run while the `{}` fault scenario degrades \
             collection at increasing severity (reduced-scale world, deterministic in the seed):\n",
            matrix.scenario
        );
        md.push_str(&bb_report::markdown::survival_matrix(&matrix));
        md.push('\n');
        comparison.push_str(&md);
        write(&args.out, "chaos.json", &matrix.to_json());
        progress!(
            args,
            "wrote survival matrix to {}",
            args.out.join("chaos.json").display()
        );
    }
    comparison.push_str(&bb_report::markdown::provenance(&ledger));
    write(&args.out, "experiments.md", &comparison);
    println!("{comparison}");
    timings.end();
    timings.end();
    write_chrome_trace(&args, &timings);
    progress!(args, "wrote exhibits to {}", args.out.display());
}

/// The `--users U` scale path: stream ~U users through the mergeable
/// sketch study without materialising the panel.
fn run_streaming(args: &Args, plan: ShardPlan, users: u64) {
    // The world derivation is shared with the serve gateway's job
    // runner, so an HTTP job and this batch path produce byte-identical
    // artifacts for the same request.
    let mut cfg = WorldConfig::streaming(args.seed, users, args.days, args.fcc_users);
    cfg.chaos = args.chaos_spec();
    if let Some(spec) = &cfg.chaos {
        progress!(args, "chaos campaign active: {}", spec.label());
    }
    let world = World::new(cfg);
    let exact_users = world.n_users();
    progress!(
        args,
        "streaming {exact_users} users: seed {}, {} days, {} shards / {} threads",
        args.seed,
        args.days,
        plan.shards,
        plan.threads
    );
    let mut timings = Timings::new();
    timings.begin("reproduce");
    timings.begin("stream");
    let store = checkpoint_store(args, "streaming");
    let fail_hook = fail_after_hook(args);
    let hooks = match fail_hook.as_ref() {
        Some(hook) => RunHooks::on_commit(hook),
        None => RunHooks::none(),
    };
    let (study, mut registry, stats, ckpt) = match &store {
        Some(store) => {
            match world.fold_users_checkpointed(
                plan,
                store,
                args.resume,
                hooks,
                StreamStudy::new,
                |s, r, u| s.absorb(r, u),
            ) {
                Ok((_, study, registry, stats, report)) => {
                    report_checkpoint(args, store, &report);
                    (study, registry, stats, Some(report))
                }
                Err(e) => {
                    eprintln!("reproduce: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            let (_, study, registry, stats) =
                world.fold_users_traced(plan, StreamStudy::new, |s, r, u| s.absorb(r, u));
            (study, registry, stats, None)
        }
    };
    timings.end();
    let elapsed = stats.total;
    progress!(
        args,
        "streamed {} users ({} Dasu / {} FCC, {} movers) in {:.1?} — {:.0} users/sec",
        study.users,
        study.dasu_users,
        study.fcc_users,
        study.movers,
        elapsed,
        study.users as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    // Metrics counters, ledger assembly and the exhibit file set are
    // shared with the serve gateway (`bb_study::provenance`,
    // `bb_report::bundle`) — byte-identity with served results holds by
    // construction.
    provenance::register_stream_metrics(&mut registry, &study);
    let mut ledger = EventLog::new();
    provenance::stream_provenance(&mut ledger, args.seed, &study, &registry);

    create_dir(&args.out);
    timings.begin("render");
    write_metrics(args, &registry, &stats, ckpt.as_ref());
    write_ledger(args, &ledger);
    for (name, content) in bundle::stream_exhibit_files(&study) {
        write(&args.out, &name, &content);
    }
    if let Some(stats) = study.population_stats() {
        println!("# Streaming scale run\n");
        println!("| quantity | paper | measured |");
        println!("|---|---|---|");
        println!("| users streamed | — | {} |", study.users);
        println!(
            "| median download capacity | 7.4 Mbps | {:.1} Mbps |",
            stats.median_capacity_mbps
        );
        println!(
            "| share below 1 Mbps | ~10% | {:.0}% |",
            stats.frac_below_1mbps * 100.0
        );
        println!(
            "| median latency | ~100 ms | {:.0} ms |",
            stats.median_latency_ms
        );
        println!(
            "| share with loss > 1% | ~14% | {:.1}% |",
            stats.frac_loss_above_1pct * 100.0
        );
    }
    timings.end();
    timings.end();
    write_chrome_trace(args, &timings);
    progress!(args, "wrote streaming exhibits to {}", args.out.display());
}

struct Args {
    seed: u64,
    scale: f64,
    days: u32,
    fcc_users: usize,
    out: PathBuf,
    sweep_seeds: u64,
    chaos: Option<ChaosScenario>,
    severity: Option<f64>,
    chaos_sweep: bool,
    threads: usize,
    shards: Option<usize>,
    users: Option<u64>,
    metrics: Option<PathBuf>,
    ledger: Option<PathBuf>,
    chrome_trace: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    fail_after_shard: Option<u64>,
    quiet: bool,
}

/// Configuration of the `serve` subcommand.
struct ServeArgs {
    port: u16,
    cache_dir: PathBuf,
    days: u32,
    fcc_users: usize,
    seed: u64,
    users: u64,
    threads: usize,
    shards: Option<usize>,
    access_log: Option<PathBuf>,
    quiet: bool,
}

impl ServeArgs {
    /// Parse the flags after `serve`. `Ok(None)` means `--help`.
    fn try_parse(mut it: impl Iterator<Item = String>) -> Result<Option<ServeArgs>, String> {
        let mut args = ServeArgs {
            port: 8080,
            cache_dir: PathBuf::from("serve-cache"),
            days: WorldConfig::paper_scale(0).days,
            fcc_users: WorldConfig::paper_scale(0).fcc_users,
            seed: REPRO_SEED,
            users: 2000,
            threads: 1,
            shards: None,
            access_log: None,
            quiet: false,
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--port" => {
                    args.port = num(&flag, &take(&mut it, &flag)?, "a port in [0, 65535]")?;
                }
                "--cache-dir" => {
                    let dir = take(&mut it, &flag)?;
                    if dir.is_empty() {
                        return Err("--cache-dir must not be empty".into());
                    }
                    args.cache_dir = PathBuf::from(dir);
                }
                "--days" => {
                    args.days = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if args.days == 0 {
                        return Err("--days must be at least 1".into());
                    }
                }
                "--fcc" => args.fcc_users = num(&flag, &take(&mut it, &flag)?, "an integer")?,
                "--seed" => args.seed = num(&flag, &take(&mut it, &flag)?, "an integer")?,
                "--users" => {
                    args.users = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if args.users == 0 {
                        return Err("--users must be at least 1".into());
                    }
                }
                "--threads" => {
                    args.threads = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if args.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--shards" => {
                    let shards: usize = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    args.shards = Some(shards);
                }
                "--access-log" => {
                    let path = take(&mut it, &flag)?;
                    if path.is_empty() {
                        return Err("--access-log must not be empty".into());
                    }
                    args.access_log = Some(PathBuf::from(path));
                }
                "--quiet" => args.quiet = true,
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown serve flag {other:?}")),
            }
        }
        Ok(Some(args))
    }
}

/// Parser for the `coordinator` subcommand. Produces the federation
/// module's argument struct directly.
struct CoordinatorCli;

impl CoordinatorCli {
    /// Parse the flags after `coordinator`. `Ok(None)` means `--help`.
    fn try_parse(
        mut it: impl Iterator<Item = String>,
    ) -> Result<Option<bb_bench::federation::CoordinatorArgs>, String> {
        let mut listen = String::from("127.0.0.1:0");
        let mut seed = REPRO_SEED;
        let mut users: u64 = 2000;
        let mut days = WorldConfig::paper_scale(0).days;
        let mut fcc_users = WorldConfig::paper_scale(0).fcc_users;
        let mut workers: usize = 2;
        let mut shards: Option<usize> = None;
        let mut chaos: Option<ChaosScenario> = None;
        let mut severity: Option<f64> = None;
        let mut lease_secs: u64 = 30;
        let mut io_deadline_secs: u64 = 30;
        let mut out = PathBuf::from("results");
        let mut metrics = None;
        let mut ledger = None;
        let mut checkpoint: Option<PathBuf> = None;
        let mut resume = false;
        let mut quiet = false;
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--listen" => {
                    listen = take(&mut it, &flag)?;
                    if listen.is_empty() {
                        return Err("--listen must not be empty".into());
                    }
                }
                "--seed" => seed = num(&flag, &take(&mut it, &flag)?, "an integer")?,
                "--users" => {
                    users = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if users == 0 {
                        return Err("--users must be at least 1".into());
                    }
                }
                "--days" => {
                    days = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if days == 0 {
                        return Err("--days must be at least 1".into());
                    }
                }
                "--fcc" => fcc_users = num(&flag, &take(&mut it, &flag)?, "an integer")?,
                "--workers" => {
                    workers = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if workers == 0 {
                        return Err("--workers must be at least 1".into());
                    }
                }
                "--shards" => {
                    let n: usize = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if n == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    shards = Some(n);
                }
                "--chaos" => {
                    let name = take(&mut it, &flag)?;
                    chaos = Some(ChaosScenario::parse(&name).ok_or_else(|| {
                        let known: Vec<&str> =
                            ChaosScenario::ALL.iter().map(|s| s.name()).collect();
                        format!("--chaos takes one of {}, got {name:?}", known.join(", "))
                    })?);
                }
                "--severity" => {
                    let s: f64 = num(&flag, &take(&mut it, &flag)?, "a number in [0, 1]")?;
                    if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                        return Err(format!("--severity must be in [0, 1], got {s}"));
                    }
                    severity = Some(s);
                }
                "--lease-timeout" => {
                    lease_secs = num(&flag, &take(&mut it, &flag)?, "a whole number of seconds")?;
                    if lease_secs == 0 {
                        return Err("--lease-timeout must be at least 1".into());
                    }
                }
                "--io-deadline" => {
                    io_deadline_secs =
                        num(&flag, &take(&mut it, &flag)?, "a whole number of seconds")?;
                    if io_deadline_secs == 0 {
                        return Err("--io-deadline must be at least 1".into());
                    }
                }
                "--checkpoint" => {
                    let dir = take(&mut it, &flag)?;
                    if dir.is_empty() {
                        return Err("--checkpoint must not be empty".into());
                    }
                    checkpoint = Some(PathBuf::from(dir));
                }
                "--resume" => resume = true,
                "--out" => out = PathBuf::from(take(&mut it, &flag)?),
                "--metrics" => metrics = Some(PathBuf::from(take(&mut it, &flag)?)),
                "--ledger" => ledger = Some(PathBuf::from(take(&mut it, &flag)?)),
                "--quiet" => quiet = true,
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown coordinator flag {other:?}")),
            }
        }
        if severity.is_some() && chaos.is_none() {
            return Err("--severity requires --chaos NAME".into());
        }
        if resume && checkpoint.is_none() {
            return Err("--resume requires --checkpoint DIR".into());
        }
        Ok(Some(bb_bench::federation::CoordinatorArgs {
            listen,
            seed,
            users,
            days,
            fcc_users,
            shards: shards.unwrap_or(workers * 4),
            chaos: chaos.map(|scenario| ChaosSpec::new(scenario, severity.unwrap_or(0.5))),
            out,
            metrics,
            ledger,
            lease_timeout: std::time::Duration::from_secs(lease_secs),
            io_deadline: std::time::Duration::from_secs(io_deadline_secs),
            checkpoint,
            resume,
            quiet,
        }))
    }
}

/// Configuration of the `worker` subcommand.
struct WorkerCli {
    connect: String,
    options: bb_bench::federation::WorkerOptions,
    quiet: bool,
}

impl WorkerCli {
    /// Parse the flags after `worker`. `Ok(None)` means `--help`.
    fn try_parse(mut it: impl Iterator<Item = String>) -> Result<Option<WorkerCli>, String> {
        let mut connect: Option<String> = None;
        let mut options = bb_bench::federation::WorkerOptions::default();
        let mut quiet = false;
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--connect" => {
                    let addr = take(&mut it, &flag)?;
                    if addr.is_empty() {
                        return Err("--connect must not be empty".into());
                    }
                    connect = Some(addr);
                }
                "--die-on-assign" => {
                    let n: u64 = num(&flag, &take(&mut it, &flag)?, "an assignment count")?;
                    if n == 0 {
                        return Err("--die-on-assign must be at least 1".into());
                    }
                    options.die_on_assign = Some(n);
                }
                "--max-reconnects" => {
                    options.max_reconnects =
                        num(&flag, &take(&mut it, &flag)?, "a retry count")?;
                }
                "--backoff-cap" => {
                    let secs: u64 =
                        num(&flag, &take(&mut it, &flag)?, "a whole number of seconds")?;
                    if secs == 0 {
                        return Err("--backoff-cap must be at least 1".into());
                    }
                    options.backoff_cap = std::time::Duration::from_secs(secs);
                }
                "--backoff-seed" => {
                    options.backoff_seed = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                }
                "--io-deadline" => {
                    let secs: u64 =
                        num(&flag, &take(&mut it, &flag)?, "a whole number of seconds")?;
                    if secs == 0 {
                        return Err("--io-deadline must be at least 1".into());
                    }
                    options.io_deadline = Some(std::time::Duration::from_secs(secs));
                }
                "--quiet" => quiet = true,
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown worker flag {other:?}")),
            }
        }
        let connect = connect.ok_or("worker requires --connect ADDR")?;
        Ok(Some(WorkerCli {
            connect,
            options,
            quiet,
        }))
    }
}

/// Configuration of the `chaosnet` subcommand.
struct ChaosnetCli {
    listen: String,
    upstream: std::net::SocketAddr,
    seed: u64,
    cut_per_mille: u64,
    stall_per_mille: u64,
    delay_per_mille: u64,
    cut_bytes_max: u64,
    delay_ms_max: u64,
    quiet: bool,
}

impl ChaosnetCli {
    /// Parse the flags after `chaosnet`. `Ok(None)` means `--help`.
    fn try_parse(mut it: impl Iterator<Item = String>) -> Result<Option<ChaosnetCli>, String> {
        let mut args = ChaosnetCli {
            listen: String::from("127.0.0.1:0"),
            upstream: "127.0.0.1:0".parse().expect("literal addr"),
            seed: REPRO_SEED,
            cut_per_mille: 0,
            stall_per_mille: 0,
            delay_per_mille: 0,
            cut_bytes_max: 4096,
            delay_ms_max: 50,
            quiet: false,
        };
        let mut upstream_set = false;
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--upstream" => {
                    let addr = take(&mut it, &flag)?;
                    args.upstream = addr
                        .parse()
                        .map_err(|e| format!("--upstream {addr:?}: {e}"))?;
                    upstream_set = true;
                }
                "--listen" => {
                    args.listen = take(&mut it, &flag)?;
                    if args.listen.is_empty() {
                        return Err("--listen must not be empty".into());
                    }
                }
                "--seed" => args.seed = num(&flag, &take(&mut it, &flag)?, "an integer")?,
                "--cut" => {
                    args.cut_per_mille = per_mille(&flag, &take(&mut it, &flag)?)?;
                }
                "--stall" => {
                    args.stall_per_mille = per_mille(&flag, &take(&mut it, &flag)?)?;
                }
                "--delay" => {
                    args.delay_per_mille = per_mille(&flag, &take(&mut it, &flag)?)?;
                }
                "--cut-bytes" => {
                    args.cut_bytes_max = num(&flag, &take(&mut it, &flag)?, "a byte count")?;
                    if args.cut_bytes_max == 0 {
                        return Err("--cut-bytes must be at least 1".into());
                    }
                }
                "--delay-ms" => {
                    args.delay_ms_max = num(&flag, &take(&mut it, &flag)?, "milliseconds")?;
                    if args.delay_ms_max == 0 {
                        return Err("--delay-ms must be at least 1".into());
                    }
                }
                "--quiet" => args.quiet = true,
                "--help" | "-h" => return Ok(None),
                other => return Err(format!("unknown chaosnet flag {other:?}")),
            }
        }
        if !upstream_set {
            return Err("chaosnet requires --upstream HOST:PORT".into());
        }
        if args.cut_per_mille + args.stall_per_mille + args.delay_per_mille > 1000 {
            return Err("--cut + --stall + --delay must not exceed 1000".into());
        }
        Ok(Some(args))
    }
}

/// The `chaosnet` subcommand: a standalone flaky-network proxy between
/// `reproduce worker` processes and a coordinator.
fn run_chaosnet(args: &ChaosnetCli) {
    // The library proxy always binds an ephemeral loopback port and
    // prints it on stdout; a fixed --listen would need a second
    // forwarding hop, so it is simply not supported.
    if args.listen != "127.0.0.1:0" {
        eprintln!("reproduce: chaosnet: only --listen 127.0.0.1:0 (ephemeral) is supported");
        std::process::exit(2);
    }
    let plan = bb_federate::ChaosPlan::seeded(
        args.seed,
        args.cut_per_mille,
        args.stall_per_mille,
        args.delay_per_mille,
        args.cut_bytes_max,
        args.delay_ms_max,
    );
    let proxy = match bb_federate::ChaosProxy::start(args.upstream, plan) {
        Ok(proxy) => proxy,
        Err(e) => {
            eprintln!("reproduce: chaosnet: start proxy: {e}");
            std::process::exit(1);
        }
    };
    if !args.quiet {
        eprintln!(
            "chaosnet: seed {}, cut {}‰, stall {}‰, delay {}‰",
            args.seed, args.cut_per_mille, args.stall_per_mille, args.delay_per_mille
        );
    }
    // The bound address on stdout, flushed — same scrape contract as the
    // coordinator and serve banners.
    println!(
        "bb-chaosnet listening on {} -> {}",
        proxy.local_addr(),
        args.upstream
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    signals::install();
    while !signals::requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let stats = proxy.stats();
    if !args.quiet {
        eprintln!(
            "chaosnet: {} connections, {} cuts, {} stalls, {} delayed chunks, {} bytes",
            stats.connections, stats.cuts, stats.stalls, stats.delayed_chunks, stats.bytes_forwarded
        );
    }
}

/// `--cut`/`--stall`/`--delay` take per-mille probabilities in [0, 1000].
fn per_mille(flag: &str, value: &str) -> Result<u64, String> {
    let n: u64 = num(flag, value, "a per-mille value in [0, 1000]")?;
    if n > 1000 {
        return Err(format!("{flag} must be at most 1000, got {n}"));
    }
    Ok(n)
}

/// The `serve` subcommand: start the gateway and run until killed.
fn run_serve(args: &ServeArgs) {
    let plan = match args.shards {
        Some(shards) => ShardPlan::new(shards, args.threads),
        None => ShardPlan::for_threads(args.threads),
    };
    let config = ServerConfig {
        port: args.port,
        cache_dir: args.cache_dir.clone(),
        days: args.days,
        fcc_users: args.fcc_users,
        plan,
        default_seed: args.seed,
        default_users: args.users,
        access_log: args.access_log.clone(),
        sse_keepalive: std::time::Duration::from_secs(10),
        debug_routes: false,
    };
    let mut server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("reproduce: serve: {e}");
            std::process::exit(1);
        }
    };
    if !args.quiet {
        eprintln!(
            "serve: cache {} ({} shards / {} threads, {} days, {} FCC)",
            args.cache_dir.display(),
            plan.shards,
            plan.threads,
            args.days,
            args.fcc_users
        );
    }
    // The bound address on stdout, flushed, so a parent process (the CI
    // smoke job, the end-to-end tests) can scrape the ephemeral port.
    println!("bb-serve listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    signals::install();
    while !signals::requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    if !args.quiet {
        eprintln!("serve: shutdown signal received, draining in-flight requests");
    }
    // Graceful path: stop accepting, drain the in-flight pool, flush the
    // access log. A job still computing keeps its per-shard checkpoints
    // (they are committed as shards finish), so a restarted server
    // resumes it from the last durable shard; exiting without joining
    // the scheduler thread is what lets a long job stop mid-run.
    server.shutdown();
    std::process::exit(0);
}

/// Minimal async-signal-safe SIGTERM/SIGINT latch. The binary links
/// libc through std anyway; `signal(2)` with a flag-setting handler is
/// the one legal thing a handler may do without locks or allocation.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Install the latch for SIGTERM and SIGINT.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    /// True once either signal has been delivered.
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// The outcome of a successful command-line parse.
enum Parsed {
    /// `--help`/`-h`: print the usage text and exit 0.
    Help,
    /// A validated run configuration.
    Run(Box<Args>),
}

/// The next token after `flag`, or a "missing value" error.
fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("missing value for {flag}"))
}

/// Parse `raw` as the value of `flag`, describing the expected shape on error.
fn num<T: std::str::FromStr>(flag: &str, raw: &str, wants: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} takes {wants}, got {raw:?}"))
}

impl Args {
    fn try_parse(mut it: impl Iterator<Item = String>) -> Result<Parsed, String> {
        let mut args = Args {
            seed: REPRO_SEED,
            scale: WorldConfig::paper_scale(0).user_scale,
            days: WorldConfig::paper_scale(0).days,
            fcc_users: WorldConfig::paper_scale(0).fcc_users,
            out: PathBuf::from("results"),
            sweep_seeds: 0,
            chaos: None,
            severity: None,
            chaos_sweep: false,
            threads: 1,
            shards: None,
            users: None,
            metrics: None,
            ledger: None,
            chrome_trace: None,
            checkpoint: None,
            resume: false,
            fail_after_shard: None,
            quiet: false,
        };
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--seed" => args.seed = num(&flag, &take(&mut it, &flag)?, "an integer")?,
                "--scale" => {
                    let scale: f64 = num(&flag, &take(&mut it, &flag)?, "a number")?;
                    if !scale.is_finite() || scale <= 0.0 {
                        return Err(format!("--scale must be a finite number > 0, got {scale}"));
                    }
                    args.scale = scale;
                }
                "--days" => {
                    args.days = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if args.days == 0 {
                        return Err("--days must be at least 1".into());
                    }
                }
                "--fcc" => args.fcc_users = num(&flag, &take(&mut it, &flag)?, "an integer")?,
                "--out" => args.out = PathBuf::from(take(&mut it, &flag)?),
                "--sweep" => {
                    args.sweep_seeds = num(&flag, &take(&mut it, &flag)?, "a seed count")?;
                }
                "--chaos" => {
                    let name = take(&mut it, &flag)?;
                    args.chaos = Some(ChaosScenario::parse(&name).ok_or_else(|| {
                        let known: Vec<&str> =
                            ChaosScenario::ALL.iter().map(|s| s.name()).collect();
                        format!("--chaos takes one of {}, got {name:?}", known.join(", "))
                    })?);
                }
                "--severity" => {
                    let s: f64 = num(&flag, &take(&mut it, &flag)?, "a number in [0, 1]")?;
                    if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                        return Err(format!("--severity must be in [0, 1], got {s}"));
                    }
                    args.severity = Some(s);
                }
                "--chaos-sweep" => args.chaos_sweep = true,
                "--threads" => {
                    args.threads = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if args.threads == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                }
                "--shards" => {
                    let shards: usize = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                    args.shards = Some(shards);
                }
                "--users" => {
                    let users: u64 = num(&flag, &take(&mut it, &flag)?, "an integer")?;
                    if users == 0 {
                        return Err("--users must be at least 1".into());
                    }
                    args.users = Some(users);
                }
                "--metrics" => args.metrics = Some(PathBuf::from(take(&mut it, &flag)?)),
                "--ledger" => args.ledger = Some(PathBuf::from(take(&mut it, &flag)?)),
                "--chrome-trace" => {
                    args.chrome_trace = Some(PathBuf::from(take(&mut it, &flag)?));
                }
                "--checkpoint" => args.checkpoint = Some(PathBuf::from(take(&mut it, &flag)?)),
                "--resume" => args.resume = true,
                "--fail-after-shard" => {
                    let n: u64 = num(&flag, &take(&mut it, &flag)?, "a shard count")?;
                    if n == 0 {
                        return Err("--fail-after-shard must be at least 1".into());
                    }
                    args.fail_after_shard = Some(n);
                }
                "--quiet" => args.quiet = true,
                "--help" | "-h" => return Ok(Parsed::Help),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if args.severity.is_some() && args.chaos.is_none() {
            return Err("--severity requires --chaos NAME".into());
        }
        if args.chaos_sweep && args.users.is_some() {
            return Err(
                "--chaos-sweep needs the materialised experiment battery; drop --users".into(),
            );
        }
        if args.resume && args.checkpoint.is_none() {
            return Err("--resume requires --checkpoint DIR".into());
        }
        if args.fail_after_shard.is_some() && args.checkpoint.is_none() {
            return Err("--fail-after-shard requires --checkpoint DIR".into());
        }
        Ok(Parsed::Run(Box::new(args)))
    }

    /// The degradation campaign the flags imply: `--chaos NAME` at
    /// `--severity S` (default 0.5). `None` = clean collection.
    fn chaos_spec(&self) -> Option<ChaosSpec> {
        self.chaos
            .map(|scenario| ChaosSpec::new(scenario, self.severity.unwrap_or(0.5)))
    }

    /// The shard plan the flags imply. Output never depends on it.
    fn plan(&self) -> ShardPlan {
        match self.shards {
            Some(shards) => ShardPlan::new(shards, self.threads),
            None => ShardPlan::for_threads(self.threads),
        }
    }
}

/// The [`CheckpointStore`] the flags imply, if any. The parameter list
/// pins everything the deterministic output depends on (plus the
/// pipeline path, since the two paths accumulate different state);
/// notably *not* the thread count — shard boundaries are
/// thread-invariant, so a resume may use a different `--threads`.
fn checkpoint_store(args: &Args, path: &str) -> Option<CheckpointStore> {
    let dir = args.checkpoint.as_ref()?;
    let params = CheckpointParams::new()
        .set("path", path)
        .set("seed", args.seed)
        .set("scale", args.scale)
        .set("days", args.days)
        .set("fcc", args.fcc_users)
        .set(
            "users",
            args.users.map_or_else(|| "-".into(), |u| u.to_string()),
        )
        .set(
            "chaos",
            args.chaos_spec().map_or_else(|| "-".into(), |c| c.label()),
        );
    Some(CheckpointStore::new(dir, params))
}

/// The `--fail-after-shard` crash injection: a commit observer that
/// aborts the process once N shards are durable. Policy lives here in
/// the CLI; the engine only exposes the `after_commit` hook.
fn fail_after_hook(args: &Args) -> Option<impl Fn(u64) + Sync> {
    let n = args.fail_after_shard?;
    let quiet = args.quiet;
    Some(move |committed: u64| {
        if committed >= n {
            if !quiet {
                eprintln!("reproduce: injected failure after {committed} committed shards");
            }
            std::process::exit(FAIL_AFTER_EXIT);
        }
    })
}

/// Log the checkpoint outcome and write `DIR/status.json` with the
/// `checkpoint.*` counters. The counters describe *this process* (a
/// resumed run skips, a cold run recomputes), so they go to the
/// checkpoint dir and the runtime sidecar — never the plan-invariant
/// metrics registry or the exhibits.
fn report_checkpoint(args: &Args, store: &CheckpointStore, report: &CheckpointReport) {
    progress!(
        args,
        "checkpoint: {} skipped, {} recomputed, {} rejected ({})",
        report.skipped,
        report.recomputed,
        report.rejected,
        store.dir().display()
    );
    for reason in &report.reasons {
        progress!(args, "checkpoint: rejected: {reason}");
    }
    let mut status = Registry::new();
    status.add("checkpoint.skipped", report.skipped);
    status.add("checkpoint.recomputed", report.recomputed);
    status.add("checkpoint.rejected", report.rejected);
    let path = store.dir().join("status.json");
    // Atomic (tmp → fsync → rename): a crash mid-write leaves the
    // previous status intact, never a torn file.
    if let Err(e) = atomic_write(&path, &status.to_json()) {
        eprintln!("reproduce: write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Create `dir` (and parents), exiting 1 with a message on failure.
fn create_dir(dir: &Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("reproduce: create {}: {e}", dir.display());
        std::process::exit(1);
    }
}

fn write(out: &Path, name: &str, content: &str) {
    if let Err(e) = std::fs::write(out.join(name), content) {
        eprintln!("reproduce: write {name}: {e}");
        std::process::exit(1);
    }
}

/// Write the merged metrics registry (plan-invariant JSON) and the
/// plan-dependent `.runtime.json` scheduling sidecar next to it. When
/// the run was checkpointed, the sidecar additionally carries the
/// `checkpoint.*` counters (process-dependent, like the wall times).
fn write_metrics(
    args: &Args,
    registry: &Registry,
    stats: &RunStats,
    ckpt: Option<&CheckpointReport>,
) {
    let Some(path) = &args.metrics else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            create_dir(parent);
        }
    }
    if let Err(e) = atomic_write(path, &registry.to_json()) {
        eprintln!("reproduce: write {}: {e}", path.display());
        std::process::exit(1);
    }
    // Wall times and steal counts depend on the plan and the machine, so
    // they live in a sidecar rather than the byte-stable metrics file.
    let mut walls = String::new();
    for (i, (bucket, count)) in stats.shard_wall_us.buckets().enumerate() {
        if i > 0 {
            walls.push_str(", ");
        }
        let _ = write!(walls, "[{bucket}, {count}]");
    }
    let checkpoint = match ckpt {
        Some(report) => format!(
            ",\n  \"checkpoint\": {{\"skipped\": {}, \"recomputed\": {}, \"rejected\": {}}}",
            report.skipped, report.recomputed, report.rejected
        ),
        None => String::new(),
    };
    let runtime = format!(
        "{{\n  \"plan\": {{\"shards\": {}, \"threads\": {}}},\n  \"items\": {},\n  \"steals\": {},\n  \"work_us\": {},\n  \"merge_us\": {},\n  \"total_us\": {},\n  \"shard_wall_us_log2_buckets\": [{walls}]{checkpoint}\n}}\n",
        stats.shards,
        stats.threads,
        stats.items,
        stats.steals,
        stats.work.as_micros(),
        stats.merge.as_micros(),
        stats.total.as_micros()
    );
    let sidecar = path.with_extension("runtime.json");
    if let Err(e) = atomic_write(&sidecar, &runtime) {
        eprintln!("reproduce: write {}: {e}", sidecar.display());
        std::process::exit(1);
    }
    progress!(
        args,
        "wrote metrics to {} (runtime sidecar {})",
        path.display(),
        sidecar.display()
    );
}

/// The `--chaos-sweep` severity grid. Starts at the mandatory fault-free
/// baseline; the survival thresholds are derived against it.
const CHAOS_GRID: &[f64] = &[0.0, 0.25, 0.5, 0.75, 1.0];

/// Write the plan-invariant provenance ledger as JSONL.
fn write_ledger(args: &Args, ledger: &EventLog) {
    let Some(path) = &args.ledger else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            create_dir(parent);
        }
    }
    if let Err(e) = atomic_write(path, &ledger.to_jsonl()) {
        eprintln!("reproduce: write {}: {e}", path.display());
        std::process::exit(1);
    }
    progress!(
        args,
        "wrote provenance ledger ({} events) to {}",
        ledger.len(),
        path.display()
    );
}

/// Write the plan-dependent Chrome trace of the harness phases.
fn write_chrome_trace(args: &Args, timings: &Timings) {
    let Some(path) = &args.chrome_trace else {
        return;
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            create_dir(parent);
        }
    }
    if let Err(e) = std::fs::write(path, timings.to_chrome_trace()) {
        eprintln!("reproduce: write {}: {e}", path.display());
        std::process::exit(1);
    }
    progress!(
        args,
        "wrote chrome trace to {} (open in Perfetto or chrome://tracing)",
        path.display()
    );
}

fn write_exhibits(r: &StudyReport, out: &Path) {
    // CDF figures.
    let cdfs = [
        &r.fig1.0, &r.fig1.1, &r.fig1.2, &r.fig4[0], &r.fig4[1], &r.fig7[0], &r.fig7[1],
        &r.fig10.0, &r.fig11, &r.fig12,
    ];
    for f in cdfs.into_iter().chain(r.fig8.iter()) {
        write(out, &format!("{}.txt", f.id), &text::render_cdf_figure(f));
        write(out, &format!("{}.csv", f.id), &csv::cdf_to_csv(f));
        write(out, &format!("{}.gp", f.id), &gnuplot::cdf_script(f));
        write(
            out,
            &format!("{}.json", f.id),
            &serde_json::to_string_pretty(&json::cdf_to_json(f)).expect("serialise"),
        );
    }
    // Binned figures.
    for f in r.fig2.iter().chain(r.fig3.iter()).chain(r.fig6.iter()) {
        write(
            out,
            &format!("{}.txt", f.id),
            &text::render_binned_figure(f),
        );
        write(out, &format!("{}.csv", f.id), &csv::binned_to_csv(f));
        write(out, &format!("{}.gp", f.id), &gnuplot::binned_script(f));
        write(
            out,
            &format!("{}.json", f.id),
            &serde_json::to_string_pretty(&json::binned_to_json(f)).expect("serialise"),
        );
    }
    // Bar figures.
    for f in r.fig5.iter().chain([&r.fig9]) {
        write(out, &format!("{}.txt", f.id), &text::render_bar_figure(f));
        write(out, &format!("{}.csv", f.id), &csv::bar_to_csv(f));
        write(out, &format!("{}.gp", f.id), &gnuplot::bar_script(f));
        write(
            out,
            &format!("{}.json", f.id),
            &serde_json::to_string_pretty(&json::bar_to_json(f)).expect("serialise"),
        );
    }
    // Experiment tables.
    for t in r.experiment_tables() {
        write(
            out,
            &format!("{}.txt", t.id),
            &text::render_experiment_table(t),
        );
        write(out, &format!("{}.csv", t.id), &csv::experiment_to_csv(t));
        write(
            out,
            &format!("{}.json", t.id),
            &serde_json::to_string_pretty(&json::experiment_to_json(t)).expect("serialise"),
        );
    }
}

/// Render the paper-vs-measured comparison for every exhibit.
fn comparison_markdown(r: &StudyReport) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "# Paper vs measured (seed-deterministic run)\n");
    let _ = writeln!(
        md,
        "Success criteria are *shape, ordering and significance*, not absolute"
    );
    let _ = writeln!(
        md,
        "traffic volumes — the substrate is a simulator (see DESIGN.md §1).\n"
    );

    // §2.2 / Figure 1.
    let s = &r.fig1.3;
    let _ = writeln!(md, "## Figure 1 — population characteristics (§2.2)\n");
    let _ = writeln!(md, "| quantity | paper | measured |");
    let _ = writeln!(md, "|---|---|---|");
    let _ = writeln!(
        md,
        "| median download capacity | 7.4 Mbps | {:.1} Mbps |",
        s.median_capacity_mbps
    );
    let _ = writeln!(
        md,
        "| capacity IQR | 14.3 Mbps | {:.1} Mbps |",
        s.capacity_iqr_mbps
    );
    let _ = writeln!(
        md,
        "| share below 1 Mbps | ~10% | {:.0}% |",
        s.frac_below_1mbps * 100.0
    );
    let _ = writeln!(
        md,
        "| share above 30 Mbps | ~10% | {:.0}% |",
        s.frac_above_30mbps * 100.0
    );
    let _ = writeln!(
        md,
        "| median latency | ~100 ms | {:.0} ms |",
        s.median_latency_ms
    );
    let _ = writeln!(
        md,
        "| share with latency > 500 ms | ~5% | {:.1}% |",
        s.frac_latency_above_500ms * 100.0
    );
    let _ = writeln!(
        md,
        "| share with loss > 1% | ~14% | {:.1}% |\n",
        s.frac_loss_above_1pct * 100.0
    );

    // Figure 2.
    let _ = writeln!(md, "## Figure 2 — usage vs capacity (§3.1)\n");
    let _ = writeln!(md, "| panel | paper r | measured r | bins |");
    let _ = writeln!(md, "|---|---|---|---|");
    let paper_r = [0.870, 0.913, 0.885, 0.890];
    for (fig, pr) in r.fig2.iter().zip(paper_r) {
        let _ = writeln!(
            md,
            "| {} | {:.3} | {} | {} |",
            fig.title,
            pr,
            fig.series[0]
                .r_log
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            fig.series[0].points.len()
        );
    }
    let _ = writeln!(md);

    // Table 1.
    let _ = writeln!(md, "## Table 1 — individual upgrades (§3.2)\n");
    let _ = writeln!(md, "| metric | paper %H (p) | measured %H (p) | pairs |");
    let _ = writeln!(md, "|---|---|---|---|");
    let paper_t1 = [
        ("Average usage", 66.8, 1.94e-25),
        ("Peak usage", 70.3, 1.13e-36),
    ];
    for ((label, ph, pp), row) in paper_t1.iter().zip(&r.table1.rows) {
        let _ = writeln!(
            md,
            "| {label} | {ph}% ({pp:.2e}) | {:.1}% ({:.2e}) | {} |",
            row.percent_holds, row.p_value, row.n_pairs
        );
    }
    let _ = writeln!(md);

    // Figure 4 medians.
    let _ = writeln!(md, "## Figure 4 — movers' demand CDFs (§3.2)\n");
    let _ = writeln!(
        md,
        "Paper: median mean usage roughly doubles (95 → 189 kbps); median"
    );
    let _ = writeln!(md, "peak usage more than triples (192 → 634 kbps).\n");
    for fig in &r.fig4 {
        if fig.series.len() == 2 {
            let _ = writeln!(
                md,
                "- {}: slow median {:.0} kbps → fast median {:.0} kbps (×{:.1})",
                fig.title,
                fig.series[0].median * 1e3,
                fig.series[1].median * 1e3,
                fig.series[1].median / fig.series[0].median.max(1e-9)
            );
        }
    }
    let _ = writeln!(md);

    // Table 2.
    for (label, table) in [("Dasu", &r.table2.0), ("FCC", &r.table2.1)] {
        let _ = writeln!(md, "## Table 2 ({label}) — matched capacity bins (§3.2)\n");
        let _ = writeln!(md, "```\n{}```\n", text::render_experiment_table(table));
    }
    let _ = writeln!(
        md,
        "Paper: the Dasu effect is strongest below ~6.4 Mbps and fades above"
    );
    let _ = writeln!(
        md,
        "12.8 Mbps; the FCC (US-only) effect persists across all bins.\n"
    );

    // §4.
    let _ = writeln!(md, "## §4 — longitudinal (Fig. 6 + per-tier experiment)\n");
    let share = bb_study::sec4::share_of_tiers_with_significant_change(&r.year_experiment);
    let _ = writeln!(
        md,
        "Paper: no significant per-tier change between 2011 and 2013."
    );
    let _ = writeln!(
        md,
        "Measured: {:.0}% of testable tiers show a conclusive change ({} tiers tested).\n",
        share * 100.0,
        r.year_experiment.rows.len()
    );

    // Table 3.
    let _ = writeln!(md, "## Table 3 — price of access (§5)\n");
    let _ = writeln!(
        md,
        "| comparison | paper %H (p) | measured %H (p) | pairs |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    let paper_t3 = [
        ("($0,$25] vs ($25,$60]", 63.4, 8.89e-22),
        ("($0,$25] vs ($60,∞)", 72.2, 5.40e-10),
    ];
    for (i, row) in r.table3.rows.iter().enumerate() {
        let (label, ph, pp) = paper_t3.get(i).copied().unwrap_or(("extra", 0.0, 1.0));
        let _ = writeln!(
            md,
            "| {label} | {ph}% ({pp:.2e}) | {:.1}% ({:.2e}) | {} |",
            row.percent_holds, row.p_value, row.n_pairs
        );
    }
    let _ = writeln!(md);

    // Table 4.
    let _ = writeln!(md, "## Table 4 — case study (§5)\n");
    let _ = writeln!(
        md,
        "| country | users (paper) | median cap (paper) | price (paper) | share of income (paper) | users | median cap | price | share |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|");
    let paper_t4 = [
        ("BW", 67, 0.517, 100.0, 8.0),
        ("SA", 120, 4.21, 79.0, 3.3),
        ("US", 3759, 17.6, 53.0, 1.3),
        ("JP", 73, 29.0, 37.0, 1.3),
    ];
    for ((code, pu, pc, pp, ps), row) in paper_t4.iter().zip(&r.table4) {
        let _ = writeln!(
            md,
            "| {code} | {pu} | {pc} Mbps | ${pp} | {ps}% | {} | {:.2} Mbps | ${:.0} | {:.1}% |",
            row.n_users,
            row.median_capacity.mbps(),
            row.price.usd(),
            row.price_share_of_income * 100.0
        );
    }
    let _ = writeln!(md);

    // Figure 7b ordering.
    let _ = writeln!(md, "## Figures 7–9 — utilisation orderings (§5)\n");
    if r.fig7[1].series.len() == 4 {
        let medians: Vec<String> = r.fig7[1]
            .series
            .iter()
            .map(|s| format!("{} {:.0}%", s.label, s.median * 100.0))
            .collect();
        let _ = writeln!(
            md,
            "Paper: peak utilisation orders BW > SA > US > JP. Measured medians: {}.\n",
            medians.join(", ")
        );
    }

    // Figure 10 / Table 5 / census.
    let _ = writeln!(md, "## Figure 10 / Table 5 / census (§6)\n");
    let _ = writeln!(
        md,
        "Measured upgrade-cost CDF spans {} markets (median ${:.2}/Mbps).",
        r.fig10.0.series[0].n, r.fig10.0.series[0].median
    );
    let _ = writeln!(
        md,
        "Correlation census: paper 66% strong / 81% moderate; measured {:.0}% / {:.0}%.\n",
        r.census.share_strong * 100.0,
        r.census.share_moderate * 100.0
    );
    let _ = writeln!(
        md,
        "| region | paper >$1/$5/$10 | measured >$1/$5/$10 | countries |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    let paper_t5: &[(&str, &str)] = &[
        ("Africa", "100/84/74"),
        ("Asia (all)", "67/47/33"),
        ("Asia (developed)", "0/0/0"),
        ("Asia (developing)", "83/58/42"),
        ("Central America/Caribbean", "100/86/14"),
        ("Europe", "10/0/0"),
        ("Middle East", "86/57/43"),
        ("North America", "0/0/0"),
        ("South America", "78/55/33"),
    ];
    for row in &r.table5 {
        let paper = paper_t5
            .iter()
            .find(|(name, _)| *name == row.region)
            .map(|(_, v)| *v)
            .unwrap_or("—");
        let _ = writeln!(
            md,
            "| {} | {paper} | {:.0}/{:.0}/{:.0} | {} |",
            row.region,
            row.share_above_1 * 100.0,
            row.share_above_5 * 100.0,
            row.share_above_10 * 100.0,
            row.n_countries
        );
    }
    let _ = writeln!(md);

    // Table 6.
    let _ = writeln!(md, "## Table 6 — cost of increasing capacity (§6)\n");
    let paper_t6 = [
        ("w/ BitTorrent", vec![(53.8, 0.00717), (58.7, 0.0110)]),
        ("w/o BitTorrent", vec![(52.2, 0.0947), (56.3, 0.0265)]),
    ];
    for ((label, paper_rows), table) in paper_t6.iter().zip(&r.table6) {
        let _ = writeln!(md, "### {label}\n");
        let _ = writeln!(
            md,
            "| comparison | paper %H (p) | measured %H (p) | pairs |"
        );
        let _ = writeln!(md, "|---|---|---|---|");
        for (i, row) in table.rows.iter().enumerate() {
            let (ph, pp) = paper_rows.get(i).copied().unwrap_or((0.0, 1.0));
            let _ = writeln!(
                md,
                "| {} vs {} | {ph}% ({pp:.2e}) | {:.1}% ({:.2e}) | {} |",
                row.control, row.treatment, row.percent_holds, row.p_value, row.n_pairs
            );
        }
        let _ = writeln!(md);
    }

    // Table 7.
    let _ = writeln!(md, "## Table 7 — latency (§7.1)\n");
    let paper_t7 = [
        (63.5, 0.00825),
        (63.4, 0.00620),
        (59.4, 0.00766),
        (56.3, 0.0330),
    ];
    let _ = writeln!(
        md,
        "| treatment bin | paper %H (p) | measured %H (p) | pairs |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    for (i, row) in r.table7.rows.iter().enumerate() {
        let (ph, pp) = paper_t7.get(i).copied().unwrap_or((0.0, 1.0));
        let _ = writeln!(
            md,
            "| {} | {ph}% ({pp:.2e}) | {:.1}% ({:.2e}) | {} |",
            row.treatment, row.percent_holds, row.p_value, row.n_pairs
        );
    }
    if let Some(row) = &r.india_vs_us {
        let _ = writeln!(
            md,
            "\nIndia vs capacity-matched US (paper: lower demand 62% of the time,"
        );
        let _ = writeln!(
            md,
            "p < 0.001): measured {:.1}% ({:.2e}) over {} pairs.\n",
            row.percent_holds, row.p_value, row.n_pairs
        );
    }

    // Table 8.
    let _ = writeln!(md, "## Table 8 — packet loss (§7.2)\n");
    let paper_t8 = [
        (55.4, 5.85e-6),
        (53.4, 8.55e-4),
        (58.9, 2.16e-5),
        (53.8, 0.0360),
    ];
    let _ = writeln!(
        md,
        "| comparison | paper %H (p) | measured %H (p) | pairs |"
    );
    let _ = writeln!(md, "|---|---|---|---|");
    for (i, row) in r.table8.rows.iter().enumerate() {
        let (ph, pp) = paper_t8.get(i).copied().unwrap_or((0.0, 1.0));
        let _ = writeln!(
            md,
            "| {} vs {} | {ph}% ({pp:.2e}) | {:.1}% ({:.2e}) | {} |",
            row.control, row.treatment, row.percent_holds, row.p_value, row.n_pairs
        );
    }
    let _ = writeln!(md);
    md
}

/// Markdown for the beyond-the-paper extensions.
fn extensions_markdown(
    table: &bb_study::exhibit::ExperimentTable,
    separations: &Option<bb_study::ext::CdfSeparations>,
    personas: &[bb_study::ext::PersonaRow],
    uploads: &[bb_study::ext::UploadRow],
) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "## Extensions (beyond the paper)\n");
    let _ = writeln!(
        md,
        "Usage caps (Chetty et al., §8), user personas (§10 future work),"
    );
    let _ = writeln!(
        md,
        "and the natural-experiment vs stratified-QED design comparison (§8):\n"
    );
    let _ = writeln!(md, "```\n{}```\n", text::render_experiment_table(table));
    if let Some(sep) = separations {
        let _ = writeln!(
            md,
            "KS separation of India vs the rest: latency D = {:.2} (p = {:.1e}), loss D = {:.2} (p = {:.1e}).\n",
            sep.latency.statistic, sep.latency.p_value, sep.loss.statistic, sep.loss.p_value
        );
    }
    if !uploads.is_empty() {
        let _ = writeln!(md, "| group | users | down (Mbps) | up (Mbps) | up/down |");
        let _ = writeln!(md, "|---|---|---|---|---|");
        for row in uploads {
            let _ = writeln!(
                md,
                "| {} | {} | {:.2} | {:.2} | {:.2} |",
                row.group, row.n_users, row.down_mbps, row.up_mbps, row.ratio
            );
        }
        let _ = writeln!(md);
    }
    if !personas.is_empty() {
        let _ = writeln!(
            md,
            "| persona | users | mean demand (Mbps) | BitTorrent share |"
        );
        let _ = writeln!(md, "|---|---|---|---|");
        for row in personas {
            let _ = writeln!(
                md,
                "| {} | {} | {:.2} | {:.0}% |",
                row.persona,
                row.n_users,
                row.mean_demand_mbps,
                row.bt_share * 100.0
            );
        }
        let _ = writeln!(md);
    }
    md
}
