//! The federated streaming run: coordinator and worker entry points for
//! the `reproduce coordinator` / `reproduce worker` subcommands.
//!
//! `bb-federate` moves opaque shard payloads; this module fixes what a
//! payload *is* for the reproduction harness — the snapshot encoding of
//! one shard's `(StreamStudy, Registry)` partial, computed by
//! [`World::stream_shard`], the exact per-range body every in-process
//! streaming fold uses. The coordinator decodes the payloads, folds
//! them **in shard order** (the same `acc.merge(next)` reduction as
//! `bb_engine::run_sharded`), and then hands the merged study to the
//! provenance/bundle code shared with `reproduce --users` and the serve
//! gateway. Byte-identity of `metrics.json`, the ledger, and every
//! exhibit with a single-process run therefore holds by construction —
//! and the killed-worker battery in `crates/bench/tests/federate.rs`
//! plus the CI `federation-smoke` job `cmp` it anyway.
//!
//! Process-dependent federation bookkeeping (reassignments, rejected
//! frames, per-worker counters) goes to the `.runtime.json` sidecar and
//! stderr — never into the deterministic artifacts, mirroring how the
//! checkpoint layer reports.

use bb_dataset::{World, WorldConfig};
use bb_engine::{
    atomic_write, CheckpointParams, CheckpointStore, Mergeable, ResumeManifest, Snapshot,
};
use bb_federate::{run_worker, Coordinator, CoordinatorConfig, FederationReport, JobSpec};
use bb_netsim::chaos::{ChaosScenario, ChaosSpec};
use bb_report::bundle;
use bb_study::{provenance, StreamStudy};
use bb_trace::{EventLog, Registry, Telemetry};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use bb_federate::WorkerOptions;

/// Everything the `reproduce coordinator` subcommand needs.
#[derive(Clone, Debug)]
pub struct CoordinatorArgs {
    /// Bind address, e.g. `127.0.0.1:0`.
    pub listen: String,
    /// World seed.
    pub seed: u64,
    /// Requested (approximate) streamed user count.
    pub users: u64,
    /// Observation window in days.
    pub days: u32,
    /// US-only FCC gateway cohort size.
    pub fcc_users: usize,
    /// Shard count to cut the user space into.
    pub shards: usize,
    /// Optional degraded-collection campaign.
    pub chaos: Option<ChaosSpec>,
    /// Exhibit output directory.
    pub out: PathBuf,
    /// Optional metrics JSON path (plus `.runtime.json` sidecar).
    pub metrics: Option<PathBuf>,
    /// Optional provenance ledger JSONL path.
    pub ledger: Option<PathBuf>,
    /// Lease timeout before a silent shard is reassigned.
    pub lease_timeout: Duration,
    /// Read/write deadline on every worker socket.
    pub io_deadline: Duration,
    /// Durable checkpoint directory: every merged shard payload is
    /// persisted here as it lands, so a killed coordinator can restart
    /// with `resume` and re-lease only the missing ranges.
    pub checkpoint: Option<PathBuf>,
    /// Restore committed shards from `checkpoint` before serving.
    pub resume: bool,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

/// The wire job a coordinator config implies.
fn job_spec(args: &CoordinatorArgs, n_items: u64) -> JobSpec {
    JobSpec {
        seed: args.seed,
        users: args.users,
        days: args.days,
        fcc_users: args.fcc_users as u64,
        chaos_scenario: args
            .chaos
            .as_ref()
            .map_or_else(|| "-".into(), |c| c.scenario.name().to_string()),
        chaos_severity: args.chaos.as_ref().map_or(0.0, |c| c.severity),
        n_items,
        shards: args.shards.max(1) as u64,
    }
}

/// Rebuild the world a [`JobSpec`] describes (worker side).
fn job_world(job: &JobSpec) -> Result<World, String> {
    let mut cfg = WorldConfig::streaming(
        job.seed,
        job.users,
        job.days,
        usize::try_from(job.fcc_users).map_err(|_| "fcc overflows usize".to_string())?,
    );
    if job.chaos_scenario != "-" {
        let scenario = ChaosScenario::parse(&job.chaos_scenario)
            .ok_or_else(|| format!("unknown chaos scenario {:?}", job.chaos_scenario))?;
        if !job.chaos_severity.is_finite() || !(0.0..=1.0).contains(&job.chaos_severity) {
            return Err(format!("severity out of range: {}", job.chaos_severity));
        }
        cfg.chaos = Some(ChaosSpec::new(scenario, job.chaos_severity));
    }
    Ok(World::new(cfg))
}

/// Run the coordinator to completion: serve shard leases, merge the
/// validated payloads in shard order, and write the same artifact set
/// as a single-process `reproduce --users` run.
pub fn run_coordinator(args: &CoordinatorArgs) -> Result<(), String> {
    let mut cfg = WorldConfig::streaming(args.seed, args.users, args.days, args.fcc_users);
    cfg.chaos = args.chaos;
    if let Some(spec) = &cfg.chaos {
        progress(
            args.quiet,
            &format!("chaos campaign active: {}", spec.label()),
        );
    }
    let world = World::new(cfg);
    let n_items = world.n_users();
    let job = job_spec(args, n_items);
    let telemetry = Arc::new(Telemetry::system());
    let mut coordinator_cfg = CoordinatorConfig::new(job.clone());
    coordinator_cfg.lease_timeout = args.lease_timeout;
    coordinator_cfg.io_deadline = args.io_deadline;
    let coordinator = Coordinator::bind(&args.listen, coordinator_cfg, Arc::clone(&telemetry))
        .map_err(|e| format!("bind {}: {e}", args.listen))?;
    let durability = prepare_checkpoint(args, &job, &coordinator)?;
    let addr = coordinator
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    progress(
        args.quiet,
        &format!(
            "federating {n_items} users over {} shards: seed {}, {} days, lease {:?}",
            coordinator.shard_count(),
            args.seed,
            args.days,
            args.lease_timeout
        ),
    );
    // The bound address on stdout, flushed, so parents (tests, the CI
    // smoke job) can scrape the ephemeral port — same contract as
    // `bb-serve listening on …`.
    println!("bb-federate coordinator listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let started = std::time::Instant::now();
    // Forged or corrupt payloads must die here, not at merge time: a
    // full decode is the validation.
    let validate = |_: u64, payload: &str| {
        <(StreamStudy, Registry)>::from_snapshot_str(payload)
            .map(|_| ())
            .map_err(|e| e.to_string())
    };
    // Durability hook: each freshly merged payload becomes a committed
    // shard file plus a manifest update, atomically, as it lands.
    let n_shards = coordinator.shard_count();
    let persist = move |index: usize, payload: &str| -> Result<(), String> {
        let Some((store, done)) = &durability else {
            return Ok(());
        };
        let digest = store
            .save_shard_text(index, payload)
            .map_err(|e| e.to_string())?;
        let mut done = done.lock().expect("checkpoint done map");
        done.insert(index, digest);
        store
            .save_manifest(n_items, n_shards, &done)
            .map_err(|e| e.to_string())
    };
    let (payloads, report) = coordinator.run_with(validate, persist);
    report_federation(args.quiet, &report);

    let mut partials = Vec::with_capacity(payloads.len());
    for (shard, payload) in payloads.iter().enumerate() {
        let partial = <(StreamStudy, Registry)>::from_snapshot_str(payload)
            .map_err(|e| format!("decode merged shard {shard}: {e}"))?;
        partials.push(partial);
    }
    // Identical to `run_sharded`'s in-order reduction.
    let (study, mut registry) = partials
        .into_iter()
        .reduce(|mut acc, next| {
            acc.merge(next);
            acc
        })
        .ok_or("no shards to merge")?;
    let elapsed = started.elapsed();
    progress(
        args.quiet,
        &format!(
            "merged {} users ({} Dasu / {} FCC, {} movers) from {} workers in {:.1?}",
            study.users,
            study.dasu_users,
            study.fcc_users,
            study.movers,
            report.workers_seen,
            elapsed
        ),
    );

    // From here on: exactly the single-process streaming output path.
    provenance::register_stream_metrics(&mut registry, &study);
    let mut ledger = EventLog::new();
    provenance::stream_provenance(&mut ledger, args.seed, &study, &registry);

    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("create {}: {e}", args.out.display()))?;
    write_metrics(args, &registry, &report)?;
    write_ledger(args, &ledger)?;
    for (name, content) in bundle::stream_exhibit_files(&study) {
        std::fs::write(args.out.join(&name), content).map_err(|e| format!("write {name}: {e}"))?;
    }
    if let Some(stats) = study.population_stats() {
        println!("# Streaming scale run\n");
        println!("| quantity | paper | measured |");
        println!("|---|---|---|");
        println!("| users streamed | — | {} |", study.users);
        println!(
            "| median download capacity | 7.4 Mbps | {:.1} Mbps |",
            stats.median_capacity_mbps
        );
        println!(
            "| share below 1 Mbps | ~10% | {:.0}% |",
            stats.frac_below_1mbps * 100.0
        );
        println!(
            "| median latency | ~100 ms | {:.0} ms |",
            stats.median_latency_ms
        );
        println!(
            "| share with loss > 1% | ~14% | {:.1}% |",
            stats.frac_loss_above_1pct * 100.0
        );
    }
    progress(
        args.quiet,
        &format!("wrote federated exhibits to {}", args.out.display()),
    );
    Ok(())
}

/// The checkpoint handles the persist hook needs: the store plus the
/// digest map the manifest is rewritten from.
type Durability = (Arc<CheckpointStore>, Arc<Mutex<BTreeMap<usize, u64>>>);

/// Set up coordinator durability: open (or create) the checkpoint
/// store, and on `--resume` restore every committed shard that survives
/// digest *and* full decode validation into the coordinator's table so
/// only the missing ranges are leased out. The manifest is rewritten up
/// front, exactly like the single-process checkpointed runner: a fresh
/// run truncates a stale done-list, a resume drops rejected entries.
fn prepare_checkpoint(
    args: &CoordinatorArgs,
    job: &JobSpec,
    coordinator: &Coordinator,
) -> Result<Option<Durability>, String> {
    let Some(dir) = &args.checkpoint else {
        return Ok(None);
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    // The params pin the run identity the same way `reproduce --users
    // --checkpoint` does: a checkpoint taken for a different job is
    // rejected wholesale, never silently merged.
    let params = CheckpointParams::new()
        .set("mode", "federated")
        .set("seed", job.seed)
        .set("users", job.users)
        .set("days", job.days)
        .set("fcc", job.fcc_users)
        .set("chaos", &job.chaos_scenario)
        .set("severity", format!("{:016x}", job.chaos_severity.to_bits()))
        .set("shards", job.shards);
    let store = Arc::new(CheckpointStore::new(dir, params));
    let n_items = job.n_items;
    let n_shards = coordinator.shard_count();
    let mut done = BTreeMap::new();
    if args.resume {
        let mut restored = Vec::new();
        match store.load_manifest(n_items, n_shards) {
            ResumeManifest::Missing => {
                progress(args.quiet, "resume: no manifest found, starting cold");
            }
            ResumeManifest::Rejected(reason) => {
                progress(
                    args.quiet,
                    &format!("resume: checkpoint rejected ({reason}), starting cold"),
                );
            }
            ResumeManifest::Valid(entries) => {
                for (index, digest) in entries {
                    match store.load_shard_text(index, digest) {
                        Ok(text) => {
                            // Same bar as a worker payload: a full decode
                            // is the validation.
                            match <(StreamStudy, Registry)>::from_snapshot_str(&text) {
                                Ok(_) => {
                                    done.insert(index, digest);
                                    restored.push((index, text));
                                }
                                Err(e) => progress(
                                    args.quiet,
                                    &format!("resume: shard {index} undecodable ({e}), recomputing"),
                                ),
                            }
                        }
                        Err(reason) => {
                            progress(args.quiet, &format!("resume: {reason}, recomputing"));
                        }
                    }
                }
            }
        }
        let n_restored = coordinator.preload(restored);
        progress(
            args.quiet,
            &format!("resume: restored {n_restored} of {n_shards} shards from {}", dir.display()),
        );
    }
    store
        .save_manifest(n_items, n_shards, &done)
        .map_err(|e| e.to_string())?;
    Ok(Some((store, Arc::new(Mutex::new(done)))))
}

/// Run one worker process against `addr` until the coordinator finishes
/// it. Returns the number of shards computed.
pub fn run_worker_process(addr: &str, opts: &WorkerOptions, quiet: bool) -> Result<u64, String> {
    let report = run_worker(addr, opts, |job: &JobSpec| {
        let world = job_world(job)?;
        let derived = world.n_users();
        if derived != job.n_items {
            // Refuse rather than contaminate the merge: a worker whose
            // derivation disagrees would fold different users.
            return Err(format!(
                "user-count mismatch: coordinator pinned {} users, this worker derives {derived}",
                job.n_items
            ));
        }
        if !quiet {
            eprintln!(
                "worker: joined job seed {} ({} users, {} shards)",
                job.seed, job.n_items, job.shards
            );
        }
        Ok(move |_shard: u64, range: std::ops::Range<u64>| {
            let partial: (StreamStudy, Registry) =
                world.stream_shard(range, StreamStudy::new, |s, r, u| s.absorb(r, u));
            partial.to_snapshot_string()
        })
    })?;
    if !quiet {
        eprintln!(
            "worker {}: computed {} shard(s) over {} reconnect(s), coordinator finished",
            report.worker, report.computed, report.reconnects
        );
    }
    Ok(report.computed)
}

fn progress(quiet: bool, line: &str) {
    if !quiet {
        eprintln!("reproduce: {line}");
    }
}

fn report_federation(quiet: bool, report: &FederationReport) {
    progress(
        quiet,
        &format!(
            "federation: {} workers, {} reassignments, {} rejected frames, \
             {} rejected results, {} duplicates, {} reconnects, \
             {} deadline expiries, {} resumed shards",
            report.workers_seen,
            report.reassignments,
            report.frames_rejected,
            report.results_rejected,
            report.duplicate_results,
            report.worker_reconnects,
            report.deadline_expiries,
            report.resumed_shards
        ),
    );
    for reason in &report.reasons {
        progress(quiet, &format!("federation: {reason}"));
    }
}

/// Write the plan-invariant metrics JSON plus the federation-shaped
/// `.runtime.json` sidecar (the coordinator's analogue of the
/// single-process scheduling sidecar: process-dependent, never merged
/// into the byte-stable artifacts).
fn write_metrics(
    args: &CoordinatorArgs,
    registry: &Registry,
    report: &FederationReport,
) -> Result<(), String> {
    let Some(path) = &args.metrics else {
        return Ok(());
    };
    create_parent(path)?;
    atomic_write(path, &registry.to_json())
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    let runtime = format!(
        "{{\n  \"federation\": {{\"workers\": {}, \"reassignments\": {}, \
         \"rejected_frames\": {}, \"rejected_results\": {}, \"duplicates\": {}, \
         \"reconnects\": {}, \"deadline_expiries\": {}, \"resumed_shards\": {}}}\n}}\n",
        report.workers_seen,
        report.reassignments,
        report.frames_rejected,
        report.results_rejected,
        report.duplicate_results,
        report.worker_reconnects,
        report.deadline_expiries,
        report.resumed_shards
    );
    let sidecar = path.with_extension("runtime.json");
    atomic_write(&sidecar, &runtime).map_err(|e| format!("write {}: {e}", sidecar.display()))?;
    progress(
        args.quiet,
        &format!(
            "wrote metrics to {} (runtime sidecar {})",
            path.display(),
            sidecar.display()
        ),
    );
    Ok(())
}

fn write_ledger(args: &CoordinatorArgs, ledger: &EventLog) -> Result<(), String> {
    let Some(path) = &args.ledger else {
        return Ok(());
    };
    create_parent(path)?;
    atomic_write(path, &ledger.to_jsonl()).map_err(|e| format!("write {}: {e}", path.display()))?;
    progress(
        args.quiet,
        &format!(
            "wrote provenance ledger ({} events) to {}",
            ledger.len(),
            path.display()
        ),
    );
    Ok(())
}

fn create_parent(path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    Ok(())
}
