//! # bb-bench — shared fixtures for benchmarks and the reproduce harness.
//!
//! The Criterion benches and the `reproduce` binary all operate on a
//! generated world; this crate centralises the configurations so every
//! bench regenerates exactly the same exhibits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bb_dataset::{Dataset, World, WorldConfig};
use std::sync::OnceLock;

pub mod federation;

/// The master seed of the reproduction: every published number in
/// `EXPERIMENTS.md` comes from this seed.
pub const REPRO_SEED: u64 = 20141105; // IMC 2014 opened on November 5.

/// A mid-sized world for benchmarking the *analysis* stages: large enough
/// that per-exhibit timings are representative, small enough that the
/// fixture builds in seconds.
pub fn bench_world() -> World {
    let mut cfg = WorldConfig::small(REPRO_SEED);
    cfg.user_scale = 4.0;
    cfg.days = 3;
    cfg.fcc_users = 300;
    World::new(cfg)
}

/// The shared bench dataset (generated once per process).
pub fn bench_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| bench_world().generate())
}

/// The full paper-scale world used by the `reproduce` binary.
pub fn paper_world(seed: u64) -> World {
    World::new(WorldConfig::paper_scale(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_dataset_is_populated() {
        let ds = bench_dataset();
        assert!(ds.records.len() > 500, "{} records", ds.records.len());
        assert_eq!(ds.survey.len(), 99);
        assert!(!ds.upgrades.is_empty());
    }
}
