//! Crash-and-recover integration tests of the `reproduce` binary.
//!
//! The scenario under test is the real one: a long run dies partway
//! through (simulated by `--fail-after-shard`, which aborts with exit
//! code 83 once N shards are durably committed), a second invocation
//! resumes from the checkpoint directory — possibly under a different
//! thread count — and every output artifact (`metrics.json`, the
//! `--ledger` JSONL, `experiments.md`, the exhibit files, stdout) is
//! byte-for-byte identical to an uninterrupted cold run. The metamorphic
//! cases then corrupt the checkpoint between the crash and the resume
//! and require a counted, logged rejection with identical output.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Exit code of the injected crash (see `FAIL_AFTER_EXIT` in the binary).
const FAIL_AFTER_EXIT: i32 = 83;

fn reproduce(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn reproduce")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Compare two output trees byte-for-byte (same file set, same bytes).
fn assert_trees_identical(a: &Path, b: &Path) {
    let list = |root: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(root)
            .expect("read output dir")
            .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let (fa, fb) = (list(a), list(b));
    assert_eq!(fa, fb, "different file sets in {a:?} vs {b:?}");
    for name in fa {
        let ba = std::fs::read(a.join(&name)).expect("read a");
        let bb = std::fs::read(b.join(&name)).expect("read b");
        assert_eq!(ba, bb, "{name} differs between {a:?} and {b:?}");
    }
}

fn read(dir: &Path, rel: &str) -> Vec<u8> {
    std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

fn status_json(dir: &Path, ckpt: &str) -> String {
    String::from_utf8(read(dir, &format!("{ckpt}/status.json"))).expect("status.json is UTF-8")
}

/// Extract a `checkpoint.*` counter from `status.json` (the file is the
/// stable registry JSON: `"checkpoint.skipped": N,`).
fn counter(status: &str, name: &str) -> u64 {
    status
        .lines()
        .find(|l| l.contains(&format!("\"{name}\"")))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().trim_end_matches(',').parse().expect("counter"))
        .unwrap_or_else(|| panic!("{name} missing from status.json: {status}"))
}

/// One crash-then-resume cycle on the streaming path under the given
/// plan, asserting byte-identity against an uninterrupted run.
fn crash_resume_streaming(dir: &Path, label: &str, shards: &str, threads_resume: &str) {
    let base = ["--users", "300", "--days", "1", "--fcc", "20", "--quiet"];
    let cold_out = format!("cold-{label}");
    let warm_out = format!("warm-{label}");
    let ckpt = format!("ck-{label}");

    // Uninterrupted baseline (no checkpointing at all).
    let mut args: Vec<&str> = base.to_vec();
    let cold_metrics = format!("{cold_out}/metrics.json");
    let cold_ledger = format!("{cold_out}/ledger.jsonl");
    args.extend(["--shards", shards, "--threads", "2", "--out", &cold_out]);
    args.extend(["--metrics", &cold_metrics, "--ledger", &cold_ledger]);
    let out = reproduce(&args, dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "cold {label}: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Crash partway: die after 2 durable shard commits.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", shards, "--threads", "2", "--out", &warm_out]);
    args.extend(["--checkpoint", &ckpt, "--fail-after-shard", "2"]);
    let out = reproduce(&args, dir);
    assert_eq!(
        out.status.code(),
        Some(FAIL_AFTER_EXIT),
        "crash {label}: expected the injected-failure exit code, got {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        dir.join(&ckpt).join("manifest").exists(),
        "{label}: a crashed run must leave a durable manifest behind"
    );

    // Resume — deliberately under a different thread count.
    let mut args: Vec<&str> = base.to_vec();
    let warm_metrics = format!("{warm_out}/metrics.json");
    let warm_ledger = format!("{warm_out}/ledger.jsonl");
    args.extend(["--shards", shards, "--threads", threads_resume]);
    args.extend(["--out", &warm_out, "--checkpoint", &ckpt, "--resume"]);
    args.extend(["--metrics", &warm_metrics, "--ledger", &warm_ledger]);
    let out = reproduce(&args, dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume {label}: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The recovery actually used the checkpoint…
    let status = status_json(dir, &ckpt);
    assert_eq!(counter(&status, "checkpoint.skipped"), 2, "{status}");
    assert_eq!(counter(&status, "checkpoint.rejected"), 0, "{status}");

    // …and every artifact matches the uninterrupted run byte-for-byte.
    assert_eq!(
        read(dir, &cold_metrics),
        read(dir, &warm_metrics),
        "{label}: metrics.json must not betray the crash"
    );
    assert_eq!(
        read(dir, &cold_ledger),
        read(dir, &warm_ledger),
        "{label}: provenance ledger must not betray the crash"
    );
    let cold_stdout = reproduce(
        &{
            let mut a: Vec<&str> = base.to_vec();
            a.extend(["--shards", shards, "--threads", "2", "--out", &cold_out]);
            a
        },
        dir,
    )
    .stdout;
    assert_eq!(out.stdout, cold_stdout);
    // Exclude the metrics/ledger (already compared, and the sidecar is
    // plan-dependent by design): compare the exhibit files only.
    for name in [
        "fig1a.csv",
        "fig1a.json",
        "fig2a.csv",
        "fig7a.csv",
        "fig7b.json",
    ] {
        assert_eq!(
            read(dir, &format!("{cold_out}/{name}")),
            read(dir, &format!("{warm_out}/{name}")),
            "{label}: exhibit {name} must not betray the crash"
        );
    }
}

#[test]
fn streaming_crash_resume_is_byte_identical_under_two_plans() {
    let dir = tmpdir("ckpt-cli-streaming");
    // Plan 1: 6 shards, resumed with more threads than the crash run.
    crash_resume_streaming(&dir, "p6", "6", "4");
    // Plan 2: different shard count entirely, resumed single-threaded.
    crash_resume_streaming(&dir, "p3", "3", "1");
}

#[test]
fn materialised_crash_resume_is_byte_identical() {
    let dir = tmpdir("ckpt-cli-materialised");
    let base = ["--scale", "2", "--days", "1", "--fcc", "30", "--quiet"];

    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "5", "--threads", "2", "--out", "cold"]);
    args.extend([
        "--metrics",
        "cold/metrics.json",
        "--ledger",
        "cold/ledger.jsonl",
    ]);
    let out = reproduce(&args, &dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "cold: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let cold_stdout = out.stdout;

    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "5", "--threads", "2", "--out", "warm"]);
    args.extend(["--checkpoint", "ck", "--fail-after-shard", "3"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(FAIL_AFTER_EXIT), "crash run");

    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "5", "--threads", "3", "--out", "warm"]);
    args.extend(["--checkpoint", "ck", "--resume"]);
    args.extend([
        "--metrics",
        "warm/metrics.json",
        "--ledger",
        "warm/ledger.jsonl",
    ]);
    let out = reproduce(&args, &dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let status = status_json(&dir, "ck");
    assert_eq!(counter(&status, "checkpoint.skipped"), 3, "{status}");
    assert_eq!(counter(&status, "checkpoint.recomputed"), 2, "{status}");

    // experiments.md is the materialised path's flagship artifact; it and
    // the full exhibit tree must match the uninterrupted run, except the
    // plan-dependent runtime sidecar.
    assert_eq!(out.stdout, cold_stdout, "stdout must not betray the crash");
    let strip_sidecars = |out_dir: &str| {
        let _ = std::fs::remove_file(dir.join(out_dir).join("metrics.runtime.json"));
    };
    strip_sidecars("cold");
    strip_sidecars("warm");
    assert_trees_identical(&dir.join("cold"), &dir.join("warm"));
}

#[test]
fn corrupted_checkpoint_is_rejected_counted_and_recovered_from() {
    let dir = tmpdir("ckpt-cli-corrupt");
    let base = ["--users", "300", "--days", "1", "--fcc", "20", "--quiet"];

    // Baseline without checkpointing.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "4", "--threads", "2", "--out", "cold"]);
    args.extend(["--metrics", "cold/metrics.json"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0), "cold run");

    // Complete checkpointed run (nothing skipped yet).
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "4", "--threads", "2", "--out", "full"]);
    args.extend(["--checkpoint", "ck"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0), "checkpointed run");

    // Corrupt one shard (truncation) and break another's checksum.
    let shard0 = dir.join("ck/shard-00000.ckpt");
    let content = std::fs::read_to_string(&shard0).expect("read shard 0");
    std::fs::write(&shard0, &content[..content.len() / 2]).expect("truncate shard 0");
    let shard2 = dir.join("ck/shard-00002.ckpt");
    let mut bytes = std::fs::read(&shard2).expect("read shard 2");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&shard2, &bytes).expect("flip shard 2");

    // Resume (not quiet: the rejection reasons must be logged).
    let out = reproduce(
        &[
            "--users",
            "300",
            "--days",
            "1",
            "--fcc",
            "20",
            "--shards",
            "4",
            "--threads",
            "2",
            "--out",
            "warm",
            "--checkpoint",
            "ck",
            "--resume",
            "--metrics",
            "warm/metrics.json",
        ],
        &dir,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "corruption must degrade to recomputation, not failure: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rejected:"),
        "rejection reasons must be logged, got: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");

    let status = status_json(&dir, "ck");
    assert_eq!(counter(&status, "checkpoint.rejected"), 2, "{status}");
    assert_eq!(counter(&status, "checkpoint.skipped"), 2, "{status}");
    assert_eq!(counter(&status, "checkpoint.recomputed"), 2, "{status}");

    // Output unharmed despite the damage.
    assert_eq!(
        read(&dir, "cold/metrics.json"),
        read(&dir, "warm/metrics.json"),
        "corruption must never alter the output"
    );
}

/// Re-seal a checkpoint file body with a freshly computed trailing
/// `!checksum` line, so doctored content passes every integrity check and
/// only semantic validation can reject it.
fn seal(body: &str) -> String {
    format!(
        "{body}!checksum {:016x}\n",
        bb_engine::fnv1a64(body.as_bytes())
    )
}

/// The file content minus its trailing `!checksum` line.
fn unsealed(content: &str) -> &str {
    &content[..content.rfind("!checksum").expect("checksum line")]
}

#[test]
fn foreign_accuracy_shard_is_rejected_and_recomputed_not_a_panic() {
    let dir = tmpdir("ckpt-cli-alpha");
    let base = ["--users", "300", "--days", "1", "--fcc", "20", "--quiet"];

    // Baseline without checkpointing.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "4", "--threads", "2", "--out", "cold"]);
    args.extend(["--metrics", "cold/metrics.json"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0), "cold run");

    // Complete checkpointed run.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--shards", "4", "--threads", "2", "--out", "full"]);
    args.extend(["--checkpoint", "ck"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0), "checkpointed run");

    // Doctor shard 1's sketches to a *valid but foreign* accuracy
    // (α 0.005 → 0.01) and re-seal both the shard file and the manifest
    // digest that vouches for it. Every checksum now passes; before the
    // restore-time α check this state sailed into `merge`, whose α assert
    // killed the worker thread and the whole resume with it.
    let ours = format!("alpha {:016x}", 0.005f64.to_bits());
    let foreign = format!("alpha {:016x}", 0.01f64.to_bits());
    let shard1 = dir.join("ck/shard-00001.ckpt");
    let content = std::fs::read_to_string(&shard1).expect("read shard 1");
    let body = unsealed(&content).replace(&ours, &foreign);
    assert_ne!(seal(&body), content, "shard must contain α fields");
    let old_digest = format!("{:016x}", bb_engine::fnv1a64(unsealed(&content).as_bytes()));
    let new_digest = format!("{:016x}", bb_engine::fnv1a64(body.as_bytes()));
    std::fs::write(&shard1, seal(&body)).expect("write doctored shard");
    let manifest = dir.join("ck/manifest");
    let content = std::fs::read_to_string(&manifest).expect("read manifest");
    let body = unsealed(&content).replace(&old_digest, &new_digest);
    assert_ne!(seal(&body), content, "manifest must reference shard 1");
    std::fs::write(&manifest, seal(&body)).expect("write doctored manifest");

    // Resume (not quiet: the rejection reason must be logged).
    let out = reproduce(
        &[
            "--users",
            "300",
            "--days",
            "1",
            "--fcc",
            "20",
            "--shards",
            "4",
            "--threads",
            "2",
            "--out",
            "warm",
            "--checkpoint",
            "ck",
            "--resume",
            "--metrics",
            "warm/metrics.json",
        ],
        &dir,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(0),
        "a foreign-accuracy sketch must degrade to recomputation, not kill the run: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(
        stderr.contains("does not match this build's"),
        "the α mismatch must be the logged rejection reason, got: {stderr}"
    );

    let status = status_json(&dir, "ck");
    assert_eq!(counter(&status, "checkpoint.rejected"), 1, "{status}");
    assert_eq!(counter(&status, "checkpoint.skipped"), 3, "{status}");
    assert_eq!(counter(&status, "checkpoint.recomputed"), 1, "{status}");

    // Output unharmed despite the doctored shard.
    assert_eq!(
        read(&dir, "cold/metrics.json"),
        read(&dir, "warm/metrics.json"),
        "a rejected shard must never alter the output"
    );
}

#[test]
fn mismatched_seed_rejects_stale_state_instead_of_merging_it() {
    let dir = tmpdir("ckpt-cli-seed");
    let base = [
        "--users", "300", "--days", "1", "--fcc", "20", "--quiet", "--shards", "4",
    ];

    // Checkpoint a run under seed 1.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--seed", "1", "--out", "s1", "--checkpoint", "ck"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0), "seed-1 run");

    // Baseline for seed 2 without any checkpoint.
    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--seed",
        "2",
        "--out",
        "cold2",
        "--metrics",
        "cold2/metrics.json",
    ]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0), "seed-2 baseline");

    // Resume under seed 2 against the seed-1 checkpoint: every stale
    // shard must be rejected (one manifest-level rejection), and the
    // output must equal the seed-2 baseline exactly.
    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--seed",
        "2",
        "--out",
        "warm2",
        "--checkpoint",
        "ck",
        "--resume",
    ]);
    args.extend(["--metrics", "warm2/metrics.json"]);
    let out = reproduce(&args, &dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "seed mismatch must recompute, not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = status_json(&dir, "ck");
    assert_eq!(counter(&status, "checkpoint.rejected"), 1, "{status}");
    assert_eq!(counter(&status, "checkpoint.skipped"), 0, "{status}");
    assert_eq!(
        read(&dir, "cold2/metrics.json"),
        read(&dir, "warm2/metrics.json"),
        "stale seed-1 state must never leak into seed-2 output"
    );
}

#[test]
fn ledger_with_resume_matches_cold_ledger_and_sidecar_reports_checkpoint() {
    let dir = tmpdir("ckpt-cli-ledger-resume");
    let base = [
        "--users", "300", "--days", "1", "--fcc", "20", "--quiet", "--shards", "4",
    ];

    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--out", "cold", "--ledger", "cold/ledger.jsonl"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0));

    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--out", "warm", "--checkpoint", "ck"]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0));

    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--out", "warm", "--checkpoint", "ck", "--resume"]);
    args.extend([
        "--ledger",
        "warm/ledger.jsonl",
        "--metrics",
        "warm/metrics.json",
    ]);
    let out = reproduce(&args, &dir);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        read(&dir, "cold/ledger.jsonl"),
        read(&dir, "warm/ledger.jsonl"),
        "--ledger with --resume must equal the cold ledger"
    );
    // The runtime sidecar of a checkpointed run carries the checkpoint
    // counters (they are process-dependent, like the wall times).
    let sidecar = String::from_utf8(read(&dir, "warm/metrics.runtime.json")).expect("sidecar");
    assert!(sidecar.contains("\"checkpoint\""), "{sidecar}");
    assert!(sidecar.contains("\"skipped\": 4"), "{sidecar}");
}
