//! End-to-end test of `reproduce serve`: start the gateway as a child
//! process, run a job over HTTP, and verify the serving invariants the
//! design pins — every result-bearing response is byte-identical to the
//! batch CLI's artifacts for the same parameters (under a *different*
//! thread plan), and an identical re-submission is answered from the
//! result cache without recomputation.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Kills the server when the test ends, pass or fail.
struct ServerGuard(Child);

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Start `reproduce serve` on an ephemeral port and scrape the bound
/// address from its startup line.
fn start_server(dir: &Path, args: &[&str]) -> (ServerGuard, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("serve")
        .args(args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn reproduce serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("startup line");
    let addr = line
        .trim()
        .strip_prefix("bb-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    (ServerGuard(child), addr)
}

/// Minimal HTTP/1.1 exchange; responses use `Connection: close`.
fn http(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response head: {head:?}"));
    (status, raw[head_end + 4..].to_vec())
}

fn get(addr: &str, path: &str) -> (u16, Vec<u8>) {
    http(addr, "GET", path, b"")
}

/// Submit a job and block until it is done (via the SSE stream, which
/// only closes after the terminal event). Returns the SSE transcript.
fn run_job_to_done(addr: &str, body: &str) -> (u64, String) {
    let (status, response) = http(addr, "POST", "/jobs", body.as_bytes());
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&response));
    let response = String::from_utf8_lossy(&response).to_string();
    let id: u64 = response
        .split("\"job\":")
        .nth(1)
        .and_then(|s| s.trim_start().split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no job id in {response}"));
    let (status, sse) = get(addr, &format!("/jobs/{id}/events"));
    assert_eq!(status, 200);
    let sse = String::from_utf8_lossy(&sse).to_string();
    assert!(
        sse.contains("event: done"),
        "job {id} did not finish: {sse}"
    );
    (id, sse)
}

/// Shards the manifest in any per-job checkpoint dir says are committed
/// (0 when no job has checkpointed anything yet).
fn committed_shards(cache: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(cache.join("checkpoints")) else {
        return 0;
    };
    for entry in entries.flatten() {
        if let Ok(text) = std::fs::read_to_string(entry.path().join("manifest")) {
            let done = text
                .lines()
                .find_map(|line| line.strip_prefix("done "))
                .and_then(|n| n.trim().parse().ok())
                .unwrap_or(0);
            if done > 0 {
                return done;
            }
        }
    }
    0
}

/// SIGTERM mid-job is a *graceful* shutdown: the server exits 0 instead
/// of dying on the default signal disposition, the per-shard checkpoint
/// survives, and a restarted server resumes the interrupted job from
/// committed shards — finishing with artifacts byte-identical to the
/// batch CLI.
#[test]
fn sigterm_mid_job_shuts_down_gracefully_and_the_restart_resumes() {
    let dir = tmpdir("serve-sigterm");

    // A release build chews through 300 users before the signal can
    // land; debug is ~25x slower. Size the job per profile so at least
    // one shard commits while several still remain to be interrupted.
    let users = if cfg!(debug_assertions) { "300" } else { "12000" };

    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args([
            "--users",
            users,
            "--days",
            "1",
            "--fcc",
            "20",
            "--quiet",
            "--threads",
            "2",
            "--shards",
            "8",
            "--out",
            "batch",
            "--metrics",
            "batch/metrics.json",
        ])
        .current_dir(&dir)
        .output()
        .expect("batch run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "batch: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let server_args = [
        "--port", "0", "--cache-dir", "cache", "--days", "1", "--fcc", "20", "--users", users,
        "--threads", "1", "--shards", "6", "--quiet",
    ];
    let (mut guard, addr) = start_server(&dir, &server_args);

    // Submit a job but do not wait for it; instead watch the per-job
    // checkpoint until at least one shard is durably committed.
    let (status, response) = http(&addr, "POST", "/jobs", b"{}");
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&response));
    let deadline = Instant::now() + Duration::from_secs(60);
    while committed_shards(&dir.join("cache")) == 0 {
        assert!(
            Instant::now() < deadline,
            "no shard committed before the signal"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // SIGTERM, not SIGKILL: the shutdown path must run.
    let sigterm = Command::new("kill")
        .args(["-TERM", &guard.0.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(sigterm.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = guard.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server did not exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        status.code(),
        Some(0),
        "SIGTERM must be a graceful exit, not the default signal death"
    );

    // Same cache dir, fresh process: the interrupted job's checkpoint is
    // picked up, so the re-run restores at least one shard instead of
    // recomputing everything…
    let (_guard2, addr) = start_server(&dir, &server_args);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if get(&addr, "/healthz").0 == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "restarted server never healthy");
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_id, sse) = run_job_to_done(&addr, "{}");
    assert!(
        sse.contains("\"from_cache\": false"),
        "the killed job must not have produced a cache entry: {sse}"
    );
    assert!(
        sse.contains("\"restored\": true"),
        "the resumed job must restore committed shards: {sse}"
    );

    // …and the interruption is invisible in the result bytes.
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let batch = std::fs::read(dir.join("batch").join("metrics.json")).expect("batch metrics");
    assert_eq!(metrics, batch, "resumed /metrics vs batch");
}

#[test]
fn served_job_is_byte_identical_to_batch_and_repeat_hits_the_cache() {
    let dir = tmpdir("serve-e2e");

    // Batch reference run: same world parameters the server will use,
    // but a *different* shard/thread plan — byte-identity must hold
    // across plans, not just across processes.
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args([
            "--users",
            "300",
            "--days",
            "1",
            "--fcc",
            "20",
            "--quiet",
            "--threads",
            "2",
            "--shards",
            "8",
            "--out",
            "batch",
            "--metrics",
            "batch/metrics.json",
            "--ledger",
            "batch/ledger.jsonl",
        ])
        .current_dir(&dir)
        .output()
        .expect("batch run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "batch: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let (_guard, addr) = start_server(
        &dir,
        &[
            "--port",
            "0",
            "--cache-dir",
            "cache",
            "--days",
            "1",
            "--fcc",
            "20",
            "--users",
            "300",
            "--threads",
            "1",
            "--shards",
            "5",
            // With the access log on, every byte-identity assertion
            // below doubles as the pin that telemetry stays strictly
            // out of the artifacts.
            "--access-log",
            "access.jsonl",
            "--quiet",
        ],
    );
    // The listener is up once the startup line is printed, but give the
    // health endpoint a moment on slow machines.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if get(&addr, "/healthz").0 == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "server never became healthy");
        std::thread::sleep(Duration::from_millis(50));
    }

    let (id, sse) = run_job_to_done(&addr, "{}");
    assert_eq!(id, 0);
    assert!(sse.contains("\"from_cache\": false"), "{sse}");
    assert!(sse.contains("event: shard"), "{sse}");
    assert!(sse.contains("event: ledger"), "{sse}");

    // Every result-bearing response matches the batch artifact bytes.
    let batch = |name: &str| std::fs::read(dir.join("batch").join(name)).expect(name);
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(metrics, batch("metrics.json"), "/metrics vs batch");
    let (status, ledger) = get(&addr, "/ledger");
    assert_eq!(status, 200);
    assert_eq!(ledger, batch("ledger.jsonl"), "/ledger vs batch");
    for id in [
        "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig2c", "fig2d", "fig7a", "fig7b",
    ] {
        let (status, body) = get(&addr, &format!("/exhibits/{id}?format=json"));
        assert_eq!(status, 200, "{id}");
        assert_eq!(
            body,
            batch(&format!("{id}.json")),
            "/exhibits/{id} vs batch"
        );
    }

    // Identical re-submission: served from the cache, not recomputed.
    let (id, sse) = run_job_to_done(&addr, "{}");
    assert_eq!(id, 1);
    assert!(sse.contains("\"from_cache\": true"), "{sse}");
    assert!(
        !sse.contains("event: shard"),
        "a cache hit must not re-run shards: {sse}"
    );
    let (_, health) = get(&addr, "/healthz");
    let health = String::from_utf8_lossy(&health).to_string();
    assert!(health.contains("\"hits\":1"), "{health}");
    assert!(health.contains("\"uptime_secs\""), "{health}");
    let (status, cached) = get(&addr, "/metrics?job=1");
    assert_eq!(status, 200);
    assert_eq!(cached, batch("metrics.json"), "cached /metrics vs batch");

    // Live telemetry rides alongside without perturbing the artifacts:
    // the Prometheus exposition covers the traffic this test generated…
    let (status, prom) = get(&addr, "/metrics.prom");
    assert_eq!(status, 200);
    let prom = String::from_utf8_lossy(&prom).to_string();
    for needle in [
        "serve_requests{method=\"POST\",route=\"/jobs\"} 2",
        "serve_jobs_completed 2",
        "serve_cache_hits 1",
        "serve_cache_misses 1",
        "serve_request_us_bucket",
        "serve_queue_depth 0",
    ] {
        assert!(prom.contains(needle), "{needle} missing in {prom}");
    }
    // …and the access log is valid JSONL, one line per request so far,
    // with the expected fields.
    let log = std::fs::read_to_string(dir.join("access.jsonl")).expect("access log");
    assert!(log.lines().count() >= 10, "{log}");
    for line in log.lines() {
        let parsed: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        for field in [
            "ts", "id", "method", "route", "path", "status", "bytes", "us",
        ] {
            assert!(parsed.get(field).is_some(), "missing {field} in {line}");
        }
    }
    assert!(log.contains("\"route\": \"/jobs/{id}/events\""), "{log}");

    // A re-read after the scrape still serves the identical bytes —
    // telemetry reads never mutate artifact state.
    let (_, again) = get(&addr, "/metrics?job=1");
    assert_eq!(again, batch("metrics.json"));
}
