//! Killed-worker crash battery for the federation path.
//!
//! The scenario under test is the production one: a coordinator farms a
//! streaming run out to three worker *processes*; one aborts the moment
//! it receives its second shard (a deterministic mid-run machine loss)
//! and another is SIGKILLed from outside while running. The survivors
//! absorb the reassignments, and every deterministic artifact —
//! `metrics.json`, the provenance ledger, the whole exhibit tree — must
//! be byte-for-byte identical to a single-process run under a different
//! thread plan. Only the `.runtime.json` sidecar may know the difference.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const USERS: &str = "400";
const SHARDS: &str = "6";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Compare two output trees byte-for-byte (same file set, same bytes).
fn assert_trees_identical(a: &Path, b: &Path) {
    let list = |root: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(root)
            .expect("read output dir")
            .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let (fa, fb) = (list(a), list(b));
    assert_eq!(fa, fb, "different file sets in {a:?} vs {b:?}");
    for name in fa {
        let ba = std::fs::read(a.join(&name)).expect("read a");
        let bb = std::fs::read(b.join(&name)).expect("read b");
        assert_eq!(ba, bb, "{name} differs between {a:?} and {b:?}");
    }
}

/// `wait` with a deadline: a wedged federation must fail the test, not
/// hang the suite.
fn wait_with_deadline(
    child: &mut Child,
    what: &str,
    deadline: Duration,
) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("{what} did not finish within {deadline:?}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Spawn a coordinator on `listen` and scrape its advertised address
/// from the banner; a spawn that never produces the banner (e.g. the
/// port is still draining from a killed predecessor) is reaped and
/// reported as `Err` so callers can retry.
fn try_spawn_coordinator(
    dir: &Path,
    listen: &str,
    extra: &[&str],
) -> Result<(Child, String, std::thread::JoinHandle<String>), String> {
    let mut args = vec![
        "coordinator",
        "--listen",
        listen,
        "--users",
        USERS,
        "--days",
        "1",
        "--fcc",
        "20",
        "--shards",
        SHARDS,
        "--lease-timeout",
        "5",
        "--out",
        "fed",
        "--metrics",
        "fed-metrics.json",
        "--ledger",
        "fed-ledger.jsonl",
        "--quiet",
    ];
    args.extend_from_slice(extra);
    let mut child = bin()
        .args(&args)
        .current_dir(dir)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn coordinator: {e}"))?;
    let mut lines = BufReader::new(child.stdout.take().expect("coordinator stdout"));
    let mut banner = String::new();
    let _ = lines.read_line(&mut banner);
    let Some(addr) = banner
        .trim()
        .strip_prefix("bb-federate coordinator listening on ")
        .map(str::to_string)
    else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(format!("unexpected banner: {banner:?}"));
    };
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = lines.read_to_string(&mut rest);
        rest
    });
    Ok((child, addr, drain))
}

/// Spawn the coordinator on an ephemeral port; the rest of stdout keeps
/// draining on a side thread so the pipe can never fill up and stall
/// the run.
fn spawn_coordinator(dir: &Path, extra: &[&str]) -> (Child, String, std::thread::JoinHandle<String>) {
    try_spawn_coordinator(dir, "127.0.0.1:0", extra).expect("spawn coordinator")
}

fn spawn_worker(dir: &Path, addr: &str, extra: &[&str]) -> Child {
    let mut args = vec!["worker", "--connect", addr, "--quiet"];
    args.extend_from_slice(extra);
    bin()
        .args(&args)
        .current_dir(dir)
        .spawn()
        .expect("spawn worker")
}

/// Pull an integer field out of the federation `.runtime.json` sidecar.
fn sidecar_field(sidecar: &str, name: &str) -> u64 {
    sidecar
        .split(&format!("\"{name}\":"))
        .nth(1)
        .and_then(|rest| {
            rest.trim_start()
                .split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("{name} missing from sidecar: {sidecar}"))
}

#[test]
fn killed_workers_leave_byte_identical_artifacts() {
    let dir = tmpdir("federate-crash-battery");

    // Single-process reference, deliberately under a different plan
    // (2 in-process threads; the federation runs 3 worker processes).
    let out = bin()
        .args([
            "--users",
            USERS,
            "--days",
            "1",
            "--fcc",
            "20",
            "--threads",
            "2",
            "--shards",
            SHARDS,
            "--out",
            "ref",
            "--metrics",
            "ref-metrics.json",
            "--ledger",
            "ref-ledger.jsonl",
            "--quiet",
        ])
        .current_dir(&dir)
        .output()
        .expect("reference run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "reference run: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let (mut coordinator, addr, drain) = spawn_coordinator(&dir, &[]);

    // Three workers: one healthy, one that aborts the moment it receives
    // its first assignment (a deterministic crash with the lease still
    // held), and one we SIGKILL from outside shortly after it starts.
    let mut survivor = spawn_worker(&dir, &addr, &[]);
    let mut aborter = spawn_worker(&dir, &addr, &["--die-on-assign", "1"]);
    let mut victim = spawn_worker(&dir, &addr, &[]);
    std::thread::sleep(Duration::from_millis(500));
    victim.kill().expect("kill worker");

    let status = wait_with_deadline(&mut coordinator, "coordinator", Duration::from_secs(180));
    assert_eq!(
        status.code(),
        Some(0),
        "coordinator must survive the losses"
    );
    let status = wait_with_deadline(&mut survivor, "surviving worker", Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "the surviving worker exits cleanly");
    let status = wait_with_deadline(&mut aborter, "aborting worker", Duration::from_secs(30));
    assert_ne!(
        status.code(),
        Some(0),
        "the crash-injected worker must actually die"
    );
    let _ = victim.wait();

    // Every deterministic artifact is byte-identical to the reference.
    let read = |rel: &str| std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
    assert_eq!(
        read("ref-metrics.json"),
        read("fed-metrics.json"),
        "metrics.json must not betray the crashes"
    );
    assert_eq!(
        read("ref-ledger.jsonl"),
        read("fed-ledger.jsonl"),
        "provenance ledger must not betray the crashes"
    );
    assert_trees_identical(&dir.join("ref"), &dir.join("fed"));

    // The stdout table after the banner matches the single-process one.
    let fed_stdout = drain.join().expect("stdout drain");
    assert_eq!(
        fed_stdout.as_bytes(),
        out.stdout.as_slice(),
        "the federated run reports the same exhibit table"
    );

    // The process-dependent story lives only in the sidecar: at least
    // one shard was reassigned away from a dead worker.
    let sidecar = String::from_utf8(read("fed-metrics.runtime.json")).expect("sidecar is UTF-8");
    assert!(
        sidecar_field(&sidecar, "reassignments") >= 1,
        "the crash battery must force a reassignment: {sidecar}"
    );
    assert!(
        sidecar_field(&sidecar, "workers") >= 3,
        "all three workers handshook: {sidecar}"
    );
}

/// The coordinator itself is SIGKILLed mid-run and restarted with
/// `--resume` on the same address: committed shards are restored from
/// the checkpoint instead of recomputed, the workers reconnect through
/// their backoff loops (one of them across a chaosnet proxy injecting
/// connection cuts), and every deterministic artifact is byte-identical
/// to a single-process run. The sidecar must prove both halves of the
/// story: at least one resumed shard and at least one reconnect.
#[test]
fn killed_coordinator_resumes_byte_identical() {
    let dir = tmpdir("federate-coordinator-resume");

    let out = bin()
        .args([
            "--users",
            USERS,
            "--days",
            "1",
            "--fcc",
            "20",
            "--threads",
            "2",
            "--shards",
            SHARDS,
            "--out",
            "ref",
            "--metrics",
            "ref-metrics.json",
            "--ledger",
            "ref-ledger.jsonl",
            "--quiet",
        ])
        .current_dir(&dir)
        .output()
        .expect("reference run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "reference run: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let (mut first, addr, first_drain) = spawn_coordinator(&dir, &["--checkpoint", "ckpt"]);

    // A deterministic flaky link in front of the coordinator: a quarter
    // of the proxied connections are severed after at most 4 KiB.
    let mut chaos = bin()
        .args([
            "chaosnet",
            "--upstream",
            &addr,
            "--seed",
            "11",
            "--cut",
            "250",
            "--cut-bytes",
            "4096",
            "--quiet",
        ])
        .current_dir(&dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn chaosnet");
    let mut chaos_lines = BufReader::new(chaos.stdout.take().expect("chaosnet stdout"));
    let mut chaos_banner = String::new();
    chaos_lines.read_line(&mut chaos_banner).expect("chaosnet banner");
    let proxy_addr = chaos_banner
        .trim()
        .strip_prefix("bb-chaosnet listening on ")
        .and_then(|rest| rest.split(" -> ").next())
        .unwrap_or_else(|| panic!("unexpected chaosnet banner: {chaos_banner:?}"))
        .to_string();

    // Two workers with generous reconnect budgets: one direct, one
    // through the flaky link.
    let reconnect = ["--max-reconnects", "40", "--backoff-cap", "1"];
    let mut direct = spawn_worker(
        &dir,
        &addr,
        &[&reconnect[..], &["--backoff-seed", "3"]].concat(),
    );
    let mut flaky = spawn_worker(
        &dir,
        &proxy_addr,
        &[&reconnect[..], &["--backoff-seed", "5"]].concat(),
    );

    // Wait until the manifest has committed at least one shard — only
    // then is there provably something for `--resume` to restore.
    let manifest = dir.join("ckpt").join("manifest");
    let poll_start = Instant::now();
    loop {
        let committed = std::fs::read_to_string(&manifest)
            .ok()
            .and_then(|text| {
                text.lines()
                    .find_map(|line| line.strip_prefix("done "))
                    .and_then(|n| n.trim().parse::<u64>().ok())
            })
            .unwrap_or(0);
        if committed >= 1 {
            break;
        }
        assert!(
            poll_start.elapsed() < Duration::from_secs(120),
            "no shard committed to the checkpoint within 120s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Machine loss: SIGKILL, no shutdown path runs.
    first.kill().expect("kill coordinator");
    let _ = first.wait();
    let _ = first_drain.join();

    // Restart on the *same* address with --resume; the port can take a
    // moment to come back after the kill, so retry the spawn.
    let mut restarted = None;
    for _ in 0..50 {
        match try_spawn_coordinator(&dir, &addr, &["--checkpoint", "ckpt", "--resume"]) {
            Ok(spawned) => {
                restarted = Some(spawned);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    let (mut second, addr2, drain) = restarted.expect("coordinator restart on the same address");
    assert_eq!(addr2, addr, "the restart must advertise the same address");

    let status = wait_with_deadline(&mut second, "resumed coordinator", Duration::from_secs(180));
    assert_eq!(status.code(), Some(0), "the resumed coordinator finishes");
    let status = wait_with_deadline(&mut direct, "direct worker", Duration::from_secs(60));
    assert_eq!(status.code(), Some(0), "the direct worker exits cleanly");
    let status = wait_with_deadline(&mut flaky, "flaky-link worker", Duration::from_secs(60));
    assert_eq!(status.code(), Some(0), "the flaky-link worker exits cleanly");
    let _ = chaos.kill();
    let _ = chaos.wait();

    // Crash, resume, reconnects, cut links — none of it may show in the
    // deterministic artifacts.
    let read = |rel: &str| std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
    assert_eq!(
        read("ref-metrics.json"),
        read("fed-metrics.json"),
        "metrics.json must not betray the coordinator crash"
    );
    assert_eq!(
        read("ref-ledger.jsonl"),
        read("fed-ledger.jsonl"),
        "provenance ledger must not betray the coordinator crash"
    );
    assert_trees_identical(&dir.join("ref"), &dir.join("fed"));
    let fed_stdout = drain.join().expect("stdout drain");
    assert_eq!(
        fed_stdout.as_bytes(),
        out.stdout.as_slice(),
        "the resumed run reports the same exhibit table"
    );

    // The sidecar tells the survivability story.
    let sidecar = String::from_utf8(read("fed-metrics.runtime.json")).expect("sidecar is UTF-8");
    assert!(
        sidecar_field(&sidecar, "resumed_shards") >= 1,
        "at least one shard must be restored from the checkpoint: {sidecar}"
    );
    assert!(
        sidecar_field(&sidecar, "reconnects") >= 1,
        "at least one worker must have reconnected: {sidecar}"
    );
}

#[test]
fn workers_outnumbering_shards_stay_healthy() {
    // Empty claims are normal: 2 shards, 3 workers — whoever arrives
    // late just polls, gets `Finished`, and exits 0.
    let dir = tmpdir("federate-empty-claims");
    let out = bin()
        .args([
            "--users",
            "200",
            "--days",
            "1",
            "--fcc",
            "10",
            "--threads",
            "1",
            "--shards",
            "2",
            "--out",
            "ref",
            "--metrics",
            "ref-metrics.json",
            "--quiet",
        ])
        .current_dir(&dir)
        .output()
        .expect("reference run");
    assert_eq!(out.status.code(), Some(0));

    let mut child = bin()
        .args([
            "coordinator",
            "--listen",
            "127.0.0.1:0",
            "--users",
            "200",
            "--days",
            "1",
            "--fcc",
            "10",
            "--shards",
            "2",
            "--out",
            "fed",
            "--metrics",
            "fed-metrics.json",
            "--quiet",
        ])
        .current_dir(&dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout"));
    let mut banner = String::new();
    lines.read_line(&mut banner).expect("banner");
    let addr = banner
        .trim()
        .strip_prefix("bb-federate coordinator listening on ")
        .expect("banner prefix")
        .to_string();
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = lines.read_to_string(&mut rest);
    });

    let mut workers: Vec<Child> = (0..3).map(|_| spawn_worker(&dir, &addr, &[])).collect();
    let status = wait_with_deadline(&mut child, "coordinator", Duration::from_secs(120));
    assert_eq!(status.code(), Some(0));
    for (i, worker) in workers.iter_mut().enumerate() {
        let status = wait_with_deadline(worker, "worker", Duration::from_secs(30));
        assert_eq!(status.code(), Some(0), "worker {i} must exit cleanly");
    }
    drain.join().expect("drain");

    let read = |rel: &str| std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("{rel}: {e}"));
    assert_eq!(read("ref-metrics.json"), read("fed-metrics.json"));
    assert_trees_identical(&dir.join("ref"), &dir.join("fed"));
}
