//! Integration tests of the chaos-campaign surface of the `reproduce`
//! binary: severity-0 chaos must be byte-identical to a fault-free run,
//! quarantine accounting must land in `metrics.json` and the `--ledger`
//! JSONL and be plan-invariant, the `--chaos-sweep` survival matrix
//! (`chaos.json`) must be byte-identical across shard plans, and a
//! crash-and-resume cycle must not perturb any quarantine counter.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Exit code of the injected crash (see `FAIL_AFTER_EXIT` in the binary).
const FAIL_AFTER_EXIT: i32 = 83;

fn reproduce(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn reproduce")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn read(dir: &Path, rel: &str) -> Vec<u8> {
    std::fs::read(dir.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// Compare two output trees byte-for-byte (same file set, same bytes).
/// Wall-clock timing files are excluded: they measure the run, not the data.
fn assert_trees_identical(a: &Path, b: &Path) {
    let list = |root: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(root)
            .expect("read output dir")
            .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
            .filter(|n| !n.contains("runtime"))
            .collect();
        names.sort();
        names
    };
    let (fa, fb) = (list(a), list(b));
    assert_eq!(fa, fb, "different file sets in {a:?} vs {b:?}");
    for name in fa {
        let ba = std::fs::read(a.join(&name)).expect("read a");
        let bb = std::fs::read(b.join(&name)).expect("read b");
        assert_eq!(ba, bb, "{name} differs between {a:?} and {b:?}");
    }
}

/// Extract a named counter from the stable registry JSON
/// (`"dataset.quality.quarantined": N,`).
fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.contains(&format!("\"{name}\"")))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().trim_end_matches(',').parse().expect("counter"))
        .unwrap_or_else(|| panic!("{name} missing from metrics: {metrics}"))
}

/// Acceptance criterion: a chaos campaign dialled down to severity 0 is
/// the fault-free pipeline, byte for byte — every exhibit, the metrics
/// registry and the provenance ledger.
#[test]
fn severity_zero_chaos_is_byte_identical_to_no_chaos() {
    let dir = tmpdir("chaos-sev0");
    let base = ["--scale", "2", "--days", "1", "--fcc", "20", "--quiet"];
    let run = |label: &str, chaos: &[&str]| {
        let out_dir = format!("out-{label}");
        let metrics = format!("{out_dir}/metrics.json");
        let ledger = format!("{out_dir}/ledger.jsonl");
        let mut args: Vec<&str> = base.to_vec();
        args.extend([
            "--out",
            &out_dir,
            "--metrics",
            &metrics,
            "--ledger",
            &ledger,
        ]);
        args.extend_from_slice(chaos);
        let out = reproduce(&args, &dir);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{label}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    run("clean", &[]);
    run("sev0", &["--chaos", "omnibus", "--severity", "0"]);
    assert_trees_identical(&dir.join("out-clean"), &dir.join("out-sev0"));
}

/// A genuinely chaotic run must quarantine users, count them in the
/// metrics registry and the ledger's `data_quality` event, and produce
/// byte-identical accounting under different shard plans.
#[test]
fn quarantine_counters_are_plan_invariant() {
    let dir = tmpdir("chaos-quarantine");
    let base = [
        "--scale",
        "2",
        "--days",
        "1",
        "--fcc",
        "20",
        "--quiet",
        "--chaos",
        "probe-blackout",
        "--severity",
        "1",
    ];
    let run = |label: &str, threads: &str, shards: &str| -> (String, String) {
        let out_dir = format!("out-{label}");
        let metrics = format!("{out_dir}/metrics.json");
        let ledger = format!("{out_dir}/ledger.jsonl");
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", threads, "--shards", shards]);
        args.extend([
            "--out",
            &out_dir,
            "--metrics",
            &metrics,
            "--ledger",
            &ledger,
        ]);
        let out = reproduce(&args, &dir);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{label}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8(read(&dir, &metrics)).expect("metrics is UTF-8"),
            String::from_utf8(read(&dir, &ledger)).expect("ledger is UTF-8"),
        )
    };
    let (metrics_a, ledger_a) = run("serial", "1", "1");
    let (metrics_b, ledger_b) = run("sharded", "2", "8");

    assert_eq!(metrics_a, metrics_b, "metrics must be plan-invariant");
    assert_eq!(ledger_a, ledger_b, "ledger must be plan-invariant");

    // A total probe blackout at severity 1 fails 85% of NDT runs, so a
    // visible share of users lose all four and get quarantined.
    assert!(
        counter(&metrics_a, "netsim.probe.blackouts") > 0,
        "{metrics_a}"
    );
    assert!(
        counter(&metrics_a, "dataset.quality.quarantined") > 0,
        "{metrics_a}"
    );
    let quality_line = ledger_a
        .lines()
        .find(|l| l.contains("\"data_quality\""))
        .unwrap_or_else(|| panic!("no data_quality event in ledger: {ledger_a}"));
    assert!(
        quality_line.contains("quarantined"),
        "quarantine verdicts missing from ledger event: {quality_line}"
    );
}

/// The survival matrix is the campaign's headline artifact; `chaos.json`
/// must be byte-identical across shard plans (acceptance criterion) and
/// the markdown report must gain the robustness section.
#[test]
fn chaos_sweep_json_is_plan_invariant() {
    let dir = tmpdir("chaos-sweep");
    let base = [
        "--scale",
        "2",
        "--days",
        "1",
        "--fcc",
        "16",
        "--quiet",
        "--chaos-sweep",
    ];
    let run = |label: &str, threads: &str, shards: &str| {
        let out_dir = format!("out-{label}");
        let mut args: Vec<&str> = base.to_vec();
        args.extend(["--threads", threads, "--shards", shards, "--out", &out_dir]);
        let out = reproduce(&args, &dir);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{label}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    run("a", "1", "1");
    run("b", "2", "8");

    let ja = read(&dir, "out-a/chaos.json");
    let jb = read(&dir, "out-b/chaos.json");
    assert_eq!(ja, jb, "chaos.json must be byte-identical across plans");

    let json = String::from_utf8(ja).expect("chaos.json is UTF-8");
    assert!(json.contains("\"scenario\": \"omnibus\""), "{json}");
    assert!(json.contains("table1 movers (peak)"), "{json}");
    let md = String::from_utf8(read(&dir, "out-a/experiments.md")).expect("UTF-8");
    assert!(
        md.contains("## Robustness under degraded collection"),
        "survival matrix missing from experiments.md"
    );
}

/// Quarantine accounting must survive a crash-and-resume cycle: the
/// resumed run's metrics and ledger match an uninterrupted chaotic run
/// byte for byte.
#[test]
fn crash_resume_preserves_quarantine_counters() {
    let dir = tmpdir("chaos-resume");
    let base = [
        "--users",
        "300",
        "--days",
        "1",
        "--fcc",
        "20",
        "--quiet",
        "--chaos",
        "probe-blackout",
        "--severity",
        "1",
        "--shards",
        "6",
    ];

    // Uninterrupted chaotic baseline.
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--threads", "2", "--out", "cold"]);
    args.extend([
        "--metrics",
        "cold/metrics.json",
        "--ledger",
        "cold/ledger.jsonl",
    ]);
    let out = reproduce(&args, &dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "cold: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Crash after two durable shard commits…
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--threads", "2", "--out", "warm"]);
    args.extend(["--checkpoint", "ck", "--fail-after-shard", "2"]);
    let out = reproduce(&args, &dir);
    assert_eq!(
        out.status.code(),
        Some(FAIL_AFTER_EXIT),
        "crash: expected the injected-failure exit, got {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );

    // …then resume under a different thread count.
    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--threads",
        "3",
        "--out",
        "warm",
        "--checkpoint",
        "ck",
        "--resume",
    ]);
    args.extend([
        "--metrics",
        "warm/metrics.json",
        "--ledger",
        "warm/ledger.jsonl",
    ]);
    let out = reproduce(&args, &dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "resume: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let cold_metrics = String::from_utf8(read(&dir, "cold/metrics.json")).expect("UTF-8");
    assert!(
        counter(&cold_metrics, "dataset.quality.quarantined") > 0,
        "baseline must actually quarantine users: {cold_metrics}"
    );
    assert_eq!(
        read(&dir, "cold/metrics.json"),
        read(&dir, "warm/metrics.json"),
        "quarantine counters must not betray the crash"
    );
    assert_eq!(
        read(&dir, "cold/ledger.jsonl"),
        read(&dir, "warm/ledger.jsonl"),
        "data_quality ledger event must not betray the crash"
    );
}
