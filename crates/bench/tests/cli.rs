//! Integration tests of the `reproduce` binary's command line: the former
//! panic paths must now fail with a message and exit code 2, `--help` must
//! succeed, and `--metrics` output must be byte-identical across shard
//! plans (the registry records data events only).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn reproduce(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn reproduce")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[test]
fn bad_arguments_exit_2_with_usage_not_a_panic() {
    let dir = tmpdir("cli-bad-args");
    let cases: &[&[&str]] = &[
        &["--frobnicate"],                                  // unknown flag
        &["--threads"],                                     // missing value
        &["--threads", "zero"],                             // unparseable value
        &["--threads", "0"],                                // zero workers
        &["--shards", "0"],                                 // zero shards
        &["--users", "0"],                                  // empty stream
        &["--days", "0"],                                   // empty window
        &["--scale", "nan"],                                // non-finite scale
        &["--scale", "inf"],                                // non-finite scale
        &["--scale", "-2"],                                 // negative scale
        &["--scale", "0"],                                  // zero scale
        &["--seed", "1.5"],                                 // non-integer seed
        &["--resume"],                                      // --resume without --checkpoint
        &["--fail-after-shard", "2"],                       // crash hook without --checkpoint
        &["--checkpoint", "ck", "--fail-after-shard", "0"], // zero commits
        &["--checkpoint"],                                  // missing value
        &["--chaos"],                                       // missing scenario
        &["--chaos", "bogus"],                              // unknown scenario
        &["--severity", "0.5"],                             // --severity without --chaos
        &["--chaos", "omnibus", "--severity", "1.5"],       // severity out of range
        &["--chaos", "omnibus", "--severity", "-0.5"],      // negative severity
        &["--chaos", "omnibus", "--severity", "nan"],       // non-finite severity
        &["--chaos", "omnibus", "--severity", "inf"],       // non-finite severity
        &["--chaos", "omnibus", "--severity", "-inf"],      // non-finite severity
        &["--chaos", "omnibus", "--severity", "1e999"],     // f64-overflowing severity
        &["--chaos-sweep", "--users", "100"],               // sweep needs full battery
    ];
    for args in cases {
        let out = reproduce(args, &dir);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: expected exit 2, got {:?}\nstderr: {stderr}",
            out.status
        );
        assert!(
            stderr.starts_with("reproduce: "),
            "{args:?}: diagnostic missing, stderr: {stderr}"
        );
        assert!(
            stderr.contains("usage: reproduce"),
            "{args:?}: usage text missing, stderr: {stderr}"
        );
        // A panic would print a backtrace pointer; a clean error must not.
        assert!(
            !stderr.contains("panicked"),
            "{args:?}: still panicking, stderr: {stderr}"
        );
    }
}

#[test]
fn serve_bad_arguments_exit_2_with_usage_not_a_panic() {
    let dir = tmpdir("cli-serve-bad-args");
    let cases: &[&[&str]] = &[
        &["serve", "--port"],           // missing value
        &["serve", "--port", "abc"],    // unparseable port
        &["serve", "--port", "70000"],  // not a u16
        &["serve", "--cache-dir"],      // missing value
        &["serve", "--cache-dir", ""],  // empty cache root
        &["serve", "--threads", "0"],   // zero workers
        &["serve", "--shards", "0"],    // zero shards
        &["serve", "--days", "0"],      // empty window
        &["serve", "--users", "0"],     // empty default stream
        &["serve", "--seed", "1.5"],    // non-integer seed
        &["serve", "--access-log"],     // missing value
        &["serve", "--access-log", ""], // empty log path
        &["serve", "--frobnicate"],     // unknown serve flag
        &["serve", "--out", "x"],       // batch-only flag after serve
    ];
    for args in cases {
        let out = reproduce(args, &dir);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: expected exit 2, got {:?}\nstderr: {stderr}",
            out.status
        );
        assert!(
            stderr.starts_with("reproduce: "),
            "{args:?}: diagnostic missing, stderr: {stderr}"
        );
        assert!(
            stderr.contains("usage: reproduce"),
            "{args:?}: usage text missing, stderr: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{args:?}: still panicking, stderr: {stderr}"
        );
    }
}

#[test]
fn serve_help_exits_0_and_documents_the_subcommand() {
    let dir = tmpdir("cli-serve-help");
    for args in [&["serve", "--help"][..], &["serve", "-h"][..]] {
        let out = reproduce(args, &dir);
        assert_eq!(out.status.code(), Some(0), "{args:?}: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: reproduce"), "{args:?}: {stdout}");
        assert!(
            stdout.contains("reproduce serve"),
            "{args:?}: serve form documented"
        );
        assert!(
            stdout.contains("--access-log"),
            "{args:?}: access log flag documented"
        );
        assert!(
            stdout.contains("/metrics.prom"),
            "{args:?}: telemetry endpoint documented"
        );
    }
}

#[test]
fn help_prints_usage_on_stdout_and_exits_0() {
    let dir = tmpdir("cli-help");
    for flag in ["--help", "-h"] {
        let out = reproduce(&[flag], &dir);
        assert_eq!(out.status.code(), Some(0), "{flag}: {:?}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage: reproduce"), "{flag}: {stdout}");
        assert!(stdout.contains("--metrics"), "{flag}: new flags documented");
        assert!(stdout.contains("--quiet"), "{flag}: new flags documented");
        assert!(stdout.contains("--ledger"), "{flag}: new flags documented");
        assert!(
            stdout.contains("--chrome-trace"),
            "{flag}: new flags documented"
        );
        assert!(
            stdout.contains("--checkpoint"),
            "{flag}: new flags documented"
        );
        assert!(stdout.contains("--resume"), "{flag}: new flags documented");
        assert!(
            stdout.contains("--fail-after-shard"),
            "{flag}: new flags documented"
        );
        assert!(stdout.contains("--chaos"), "{flag}: new flags documented");
        assert!(
            stdout.contains("--severity"),
            "{flag}: new flags documented"
        );
        assert!(
            stdout.contains("--chaos-sweep"),
            "{flag}: new flags documented"
        );
        assert!(
            stdout.contains("reproduce serve"),
            "{flag}: serve subcommand documented"
        );
        assert!(stdout.contains("--port"), "{flag}: serve flags documented");
        assert!(
            stdout.contains("--cache-dir"),
            "{flag}: serve flags documented"
        );
    }
}

#[test]
fn ledger_is_byte_identical_across_plans() {
    let dir = tmpdir("cli-ledger");
    let run = |label: &str, threads: &str, shards: &str| -> String {
        let ledger = format!("out-{label}/ledger.jsonl");
        let out = reproduce(
            &[
                "--users",
                "300",
                "--days",
                "1",
                "--fcc",
                "20",
                "--quiet",
                "--threads",
                threads,
                "--shards",
                shards,
                "--out",
                &format!("out-{label}"),
                "--ledger",
                &ledger,
            ],
            &dir,
        );
        assert_eq!(
            out.status.code(),
            Some(0),
            "{label}: {:?}\nstderr: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(dir.join(&ledger)).expect("ledger file")
    };
    let serial = run("serial", "1", "1");
    let parallel = run("parallel", "2", "8");
    assert_eq!(
        serial, parallel,
        "provenance ledger must not depend on the shard plan"
    );
    // Shape: one JSON object per line, study header first, then exhibits.
    let first = serial.lines().next().expect("non-empty ledger");
    assert!(first.starts_with("{\"event\": \"stream_study\""), "{first}");
    assert!(serial.contains("\"event\": \"exhibit\""), "{serial}");
    for line in serial.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not JSONL: {line}"
        );
    }
}

#[test]
fn chrome_trace_is_a_valid_trace_event_array() {
    let dir = tmpdir("cli-chrome-trace");
    let out = reproduce(
        &[
            "--users",
            "200",
            "--days",
            "1",
            "--fcc",
            "10",
            "--quiet",
            "--out",
            "out-trace",
            "--chrome-trace",
            "out-trace/trace.json",
        ],
        &dir,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let raw = std::fs::read_to_string(dir.join("out-trace/trace.json")).expect("trace file");
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("trace must be valid JSON");
    let events = parsed.as_array().expect("trace must be a JSON array");
    assert!(!events.is_empty(), "trace must record at least one span");
    let names: Vec<&str> = events
        .iter()
        .map(|e| e["name"].as_str().expect("name"))
        .collect();
    assert!(names.contains(&"reproduce"), "{names:?}");
    assert!(names.contains(&"stream"), "{names:?}");
    for e in events {
        // Complete ("X") events with microsecond ts/dur, as Perfetto and
        // chrome://tracing expect.
        assert_eq!(e["ph"].as_str(), Some("X"), "{e:?}");
        assert!(e["ts"].as_f64().is_some(), "{e:?}");
        assert!(e["dur"].as_f64().is_some(), "{e:?}");
        assert!(e["pid"].as_f64().is_some(), "{e:?}");
        assert!(e["tid"].as_f64().is_some(), "{e:?}");
    }
}

#[test]
fn materialised_path_writes_chrome_trace_metrics_and_quiet_is_quiet() {
    // The materialised (non `--users`) path shares the observability
    // flags with the streaming path; cover it explicitly.
    let dir = tmpdir("cli-materialised-trace");
    let out = reproduce(
        &[
            "--scale",
            "2",
            "--days",
            "1",
            "--fcc",
            "30",
            "--quiet",
            "--out",
            "out-mat",
            "--chrome-trace",
            "out-mat/trace.json",
            "--metrics",
            "out-mat/metrics.json",
        ],
        &dir,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        out.stderr.is_empty(),
        "--quiet must silence progress, got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let raw = std::fs::read_to_string(dir.join("out-mat/trace.json")).expect("trace file");
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("trace must be valid JSON");
    let events = parsed.as_array().expect("trace must be a JSON array");
    let names: Vec<&str> = events
        .iter()
        .map(|e| e["name"].as_str().expect("name"))
        .collect();
    // The materialised path's phases, not the streaming path's.
    assert!(names.contains(&"generate"), "{names:?}");
    assert!(names.contains(&"analysis"), "{names:?}");
    assert!(names.contains(&"render"), "{names:?}");
    assert!(
        dir.join("out-mat/metrics.json").exists() && dir.join("out-mat/experiments.md").exists(),
        "metrics and experiments.md must both be written"
    );
}

#[test]
fn streaming_metrics_are_byte_identical_across_plans_and_quiet_is_quiet() {
    let dir = tmpdir("cli-metrics");
    let run = |label: &str, threads: &str, shards: &str| -> Vec<u8> {
        let metrics = format!("out-{label}/metrics.json");
        let out = reproduce(
            &[
                "--users",
                "300",
                "--days",
                "1",
                "--fcc",
                "20",
                "--quiet",
                "--threads",
                threads,
                "--shards",
                shards,
                "--out",
                &format!("out-{label}"),
                "--metrics",
                &metrics,
            ],
            &dir,
        );
        assert_eq!(
            out.status.code(),
            Some(0),
            "{label}: {:?}\nstderr: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            out.stderr.is_empty(),
            "{label}: --quiet must silence progress, got: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The plan-dependent observables land in the sidecar, not the
        // plan-invariant metrics file.
        let sidecar = dir.join(format!("out-{label}/metrics.runtime.json"));
        let runtime = std::fs::read_to_string(&sidecar).expect("runtime sidecar");
        assert!(runtime.contains("\"steals\""), "{label}: {runtime}");
        std::fs::read(dir.join(&metrics)).expect("metrics file")
    };

    let serial = run("serial", "1", "1");
    let parallel = run("parallel", "2", "8");
    let text = String::from_utf8(serial.clone()).expect("metrics are UTF-8");
    assert_eq!(
        text,
        String::from_utf8(parallel).unwrap(),
        "metrics JSON must not depend on the shard plan"
    );
    // Streaming runs surface the study-level counters too.
    assert!(text.contains("\"study.users\""), "{text}");
    assert!(text.contains("\"study.sketch_negatives\""), "{text}");
    assert!(text.contains("\"netsim.collect.polls\""), "{text}");
}
