//! One benchmark group per paper exhibit: each group times the computation
//! that regenerates that table or figure from the shared dataset (dataset
//! generation happens once, outside the timing loops).
//!
//! Mapping to the paper (see DESIGN.md §4 for the full index):
//! `fig1` → Fig. 1a–c, `fig2` → Fig. 2a–d, … `table8` → Table 8.

use bb_bench::{bench_dataset, bench_world};
use bb_study::{sec2, sec3, sec4, sec5, sec6, sec7};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig1_network_characteristics", |b| {
        b.iter(|| black_box(sec2::figure1(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_fig2(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig2_capacity_vs_usage", |b| {
        b.iter(|| black_box(sec3::figure2(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig3_fcc_vs_dasu", |b| {
        b.iter(|| black_box(sec3::figure3(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_table1(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("table1_upgrade_experiment", |b| {
        b.iter(|| black_box(sec3::table1(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig4_mover_cdfs", |b| {
        b.iter(|| black_box(sec3::figure4(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig5_upgrade_matrix", |b| {
        b.iter(|| black_box(sec3::figure5(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_table2(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("table2_matched_capacity_bins", |b| {
        b.iter(|| black_box(sec3::table2(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig6_longitudinal", |b| {
        b.iter(|| black_box(sec4::figure6(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_table3(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("table3_price_experiment", |b| {
        b.iter(|| black_box(sec5::table3(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_table4(c: &mut Criterion) {
    let ds = bench_dataset();
    let world = bench_world();
    c.bench_function("table4_case_study", |b| {
        b.iter(|| {
            black_box(sec5::table4(
                ds,
                &world.profiles,
                &mut bb_trace::EventLog::new(),
            ))
        })
    });
}

fn bench_fig7_fig8_fig9(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig7_market_cdfs", |b| {
        b.iter(|| black_box(sec5::figure7(ds, &mut bb_trace::EventLog::new())))
    });
    c.bench_function("fig8_utilization_by_tier", |b| {
        b.iter(|| black_box(sec5::figure8(ds, 30, &mut bb_trace::EventLog::new())))
    });
    c.bench_function("fig9_demand_bars", |b| {
        b.iter(|| black_box(sec5::figure9(ds, 30, &mut bb_trace::EventLog::new())))
    });
}

fn bench_fig10_table5(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("fig10_upgrade_cost_cdf", |b| {
        b.iter(|| black_box(sec6::figure10(ds, &mut bb_trace::EventLog::new())))
    });
    c.bench_function("table5_regional_costs", |b| {
        b.iter(|| black_box(sec6::table5(ds)))
    });
    c.bench_function("sec6_correlation_census", |b| {
        b.iter(|| black_box(sec6::census(ds)))
    });
}

fn bench_table6(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("table6_upgrade_cost_experiment", |b| {
        b.iter(|| black_box(sec6::table6(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_table7_fig11(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("table7_latency_experiment", |b| {
        b.iter(|| black_box(sec7::table7(ds, &mut bb_trace::EventLog::new())))
    });
    c.bench_function("fig11_india_latency_cdfs", |b| {
        b.iter(|| black_box(sec7::figure11(ds, &mut bb_trace::EventLog::new())))
    });
}

fn bench_table8_fig12(c: &mut Criterion) {
    let ds = bench_dataset();
    c.bench_function("table8_loss_experiment", |b| {
        b.iter(|| black_box(sec7::table8(ds, &mut bb_trace::EventLog::new())))
    });
    c.bench_function("fig12_india_loss_cdfs", |b| {
        b.iter(|| black_box(sec7::figure12(ds, &mut bb_trace::EventLog::new())))
    });
    c.bench_function("sec7_india_vs_us", |b| {
        b.iter(|| black_box(sec7::india_vs_us(ds, &mut bb_trace::EventLog::new())))
    });
}

criterion_group!(
    name = exhibits;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1,
        bench_fig2,
        bench_fig3,
        bench_table1,
        bench_fig4,
        bench_fig5,
        bench_table2,
        bench_fig6,
        bench_table3,
        bench_table4,
        bench_fig7_fig8_fig9,
        bench_fig10_table5,
        bench_table6,
        bench_table7_fig11,
        bench_table8_fig12
);
criterion_main!(exhibits);
