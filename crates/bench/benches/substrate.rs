//! Micro-benchmarks of the substrates: the statistics kernel, the TCP
//! model, the probe, the session simulator, the matching engine, and full
//! world generation. These quantify the building blocks the exhibit
//! benches compose.

use bb_causal::{match_pairs, Caliper, Unit};
use bb_dataset::{World, WorldConfig};
use bb_netsim::link::AccessLink;
use bb_netsim::probe::NdtProbe;
use bb_netsim::tcp::mathis_throughput;
use bb_netsim::workload::{simulate_user, UserWorkload};
use bb_stats::hypothesis::{binomial_test, Tail};
use bb_stats::special::{inc_beta, ln_gamma};
use bb_stats::{quantile, Ecdf};
use bb_types::{Bandwidth, Latency, LossRate, TimeAxis, Year};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_special_functions(c: &mut Criterion) {
    c.bench_function("stats_ln_gamma", |b| {
        b.iter(|| black_box(ln_gamma(black_box(123.456))))
    });
    c.bench_function("stats_inc_beta", |b| {
        b.iter(|| black_box(inc_beta(black_box(450.0), black_box(191.0), black_box(0.5))))
    });
    c.bench_function("stats_binomial_test", |b| {
        b.iter(|| {
            black_box(binomial_test(
                black_box(450),
                black_box(640),
                0.5,
                Tail::Greater,
            ))
        })
    });
}

fn bench_descriptive(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let data: Vec<f64> = (0..20_000)
        .map(|_| rand::Rng::gen::<f64>(&mut rng))
        .collect();
    c.bench_function("stats_p95_quantile_20k", |b| {
        b.iter(|| black_box(quantile(black_box(&data), 0.95)))
    });
    c.bench_function("stats_ecdf_build_20k", |b| {
        b.iter(|| black_box(Ecdf::new(data.iter().copied())))
    });
}

fn bench_tcp_model(c: &mut Criterion) {
    c.bench_function("netsim_mathis", |b| {
        b.iter(|| {
            black_box(mathis_throughput(
                black_box(Latency::from_ms(100.0)),
                black_box(LossRate::from_percent(0.1)),
            ))
        })
    });
}

fn bench_probe(c: &mut Criterion) {
    let link = AccessLink::new(
        Bandwidth::from_mbps(20.0),
        Latency::from_ms(60.0),
        LossRate::from_percent(0.2),
    );
    c.bench_function("netsim_ndt_probe_x4", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| black_box(NdtProbe::default().run_averaged(&link, 4, &mut rng)))
    });
}

fn bench_simulate_user(c: &mut Criterion) {
    let link = AccessLink::new(
        Bandwidth::from_mbps(10.0),
        Latency::from_ms(50.0),
        LossRate::from_percent(0.1),
    );
    let wl = UserWorkload::with_bt(Bandwidth::from_kbps(600.0), 0.45);
    c.bench_function("netsim_simulate_user_7d", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            black_box(simulate_user(
                &link,
                &wl,
                TimeAxis::new(Year(2012), 7),
                &mut rng,
            ))
        })
    });
}

fn bench_matching(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let unit = |id: u64, rng: &mut ChaCha8Rng| {
        let lat = 40.0 + rand::Rng::gen::<f64>(rng) * 60.0;
        let loss = 0.05 + rand::Rng::gen::<f64>(rng) * 0.4;
        let price = 18.0 + rand::Rng::gen::<f64>(rng) * 12.0;
        let upgrade = 0.4 + rand::Rng::gen::<f64>(rng) * 0.8;
        Unit::new(
            id,
            vec![lat, loss, price, upgrade],
            rand::Rng::gen::<f64>(rng),
        )
    };
    let control: Vec<Unit> = (0..500).map(|i| unit(i, &mut rng)).collect();
    let treatment: Vec<Unit> = (0..500).map(|i| unit(1000 + i, &mut rng)).collect();
    let calipers = vec![Caliper::PAPER; 4];
    c.bench_function("causal_match_500x500", |b| {
        b.iter(|| black_box(match_pairs(&control, &treatment, &calipers)))
    });
}

fn bench_world_generation(c: &mut Criterion) {
    c.bench_function("dataset_generate_small_world", |b| {
        b.iter(|| {
            let mut cfg = WorldConfig::small(7);
            cfg.user_scale = 0.3;
            cfg.days = 1;
            cfg.fcc_users = 10;
            black_box(World::new(cfg).generate())
        })
    });
}

criterion_group!(
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = bench_special_functions,
        bench_descriptive,
        bench_tcp_model,
        bench_probe,
        bench_simulate_user,
        bench_matching,
        bench_world_generation
);
criterion_main!(substrate);
