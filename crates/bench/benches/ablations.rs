//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation measures both the runtime and (via printed side-channel
//! at setup) the *outcome* consequence of a design decision:
//!
//! * `ablate_caliper` — the §3.2 trade-off: tighter calipers mean cleaner
//!   but fewer pairs;
//! * `ablate_binomial` — exact incomplete-beta tail vs the normal
//!   approximation;
//! * `ablate_matching` — greedy input-order matching vs reversed order;
//! * `ablate_mathis` — the quality→demand arrow: realized demand with the
//!   TCP bound active vs a clean path.

use bb_bench::bench_dataset;
use bb_causal::{match_pairs, Caliper, NaturalExperiment, StratifiedQed};
use bb_netsim::link::AccessLink;
use bb_netsim::workload::{simulate_user, UserWorkload};
use bb_stats::hypothesis::{binomial_test, binomial_test_normal_approx, Tail};
use bb_study::confounders::{to_units, ConfounderSet, OutcomeSpec};
use bb_types::{Bandwidth, CapacityBin, Latency, LossRate, TimeAxis, Year};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Control/treatment unit sets for a representative Table 2 bin pair.
fn capacity_units() -> (Vec<bb_causal::Unit>, Vec<bb_causal::Unit>) {
    let ds = bench_dataset();
    let bin = CapacityBin::of(Bandwidth::from_mbps(5.0));
    let c = to_units(
        ds.dasu().filter(|r| CapacityBin::of(r.capacity) == bin),
        ConfounderSet::ForCapacityExperiment,
        OutcomeSpec::PEAK_NO_BT,
    );
    let t = to_units(
        ds.dasu()
            .filter(|r| CapacityBin::of(r.capacity) == bin.next()),
        ConfounderSet::ForCapacityExperiment,
        OutcomeSpec::PEAK_NO_BT,
    );
    (c, t)
}

fn ablate_caliper(c: &mut Criterion) {
    let (control, treatment) = capacity_units();
    let mut group = c.benchmark_group("ablate_caliper");
    for frac in [0.10f64, 0.25, 0.50] {
        let calipers = vec![
            Caliper {
                relative: frac,
                absolute_floor: 20.0,
            },
            Caliper {
                relative: frac,
                absolute_floor: 0.05,
            },
            Caliper {
                relative: frac,
                absolute_floor: 2.0,
            },
            Caliper {
                relative: frac,
                absolute_floor: 0.3,
            },
        ];
        let pairs = match_pairs(&control, &treatment, &calipers);
        // Outcome side-channel: pair yield per caliper width.
        eprintln!(
            "[ablate_caliper] {:.0}% caliper -> {} pairs from {}x{} units",
            frac * 100.0,
            pairs.len(),
            control.len(),
            treatment.len()
        );
        group.bench_function(format!("caliper_{:02.0}pct", frac * 100.0), |b| {
            b.iter(|| black_box(match_pairs(&control, &treatment, &calipers)))
        });
    }
    group.finish();
}

fn ablate_binomial(c: &mut Criterion) {
    // Outcome side-channel: worst relative error of the approximation over
    // the regimes the study actually hits.
    let mut worst: f64 = 0.0;
    for &(k, n) in &[(60u64, 100u64), (450, 640), (703, 1000), (5300, 10000)] {
        let exact = binomial_test(k, n, 0.5, Tail::Greater).p_value;
        let approx = binomial_test_normal_approx(k, n, 0.5, Tail::Greater).p_value;
        worst = worst.max(((approx - exact) / exact).abs());
    }
    eprintln!("[ablate_binomial] worst relative error of normal approx: {worst:.3}");
    c.bench_function("binomial_exact", |b| {
        b.iter(|| black_box(binomial_test(black_box(450), 640, 0.5, Tail::Greater)))
    });
    c.bench_function("binomial_normal_approx", |b| {
        b.iter(|| {
            black_box(binomial_test_normal_approx(
                black_box(450),
                640,
                0.5,
                Tail::Greater,
            ))
        })
    });
}

fn ablate_matching_order(c: &mut Criterion) {
    let (control, treatment) = capacity_units();
    let mut reversed = treatment.clone();
    reversed.reverse();
    let calipers = ConfounderSet::ForCapacityExperiment.calipers();
    let forward = match_pairs(&control, &treatment, &calipers);
    let backward = match_pairs(&control, &reversed, &calipers);
    eprintln!(
        "[ablate_matching] greedy order sensitivity: forward {} pairs, reversed {} pairs",
        forward.len(),
        backward.len()
    );
    c.bench_function("matching_forward_order", |b| {
        b.iter(|| black_box(match_pairs(&control, &treatment, &calipers)))
    });
    c.bench_function("matching_reversed_order", |b| {
        b.iter(|| black_box(match_pairs(&control, &reversed, &calipers)))
    });
}

fn ablate_mathis(c: &mut Criterion) {
    // The §7 mechanism: the same workload on a clean vs an impaired path.
    let clean = AccessLink::new(
        Bandwidth::from_mbps(8.0),
        Latency::from_ms(40.0),
        LossRate::from_percent(0.02),
    );
    let impaired = AccessLink::new(
        Bandwidth::from_mbps(8.0),
        Latency::from_ms(700.0),
        LossRate::from_percent(2.0),
    );
    let wl = UserWorkload::without_bt(Bandwidth::from_kbps(600.0));
    let axis = TimeAxis::new(Year(2012), 3);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let clean_bytes = simulate_user(&clean, &wl, axis, &mut rng).total_bytes();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let impaired_bytes = simulate_user(&impaired, &wl, axis, &mut rng).total_bytes();
    eprintln!(
        "[ablate_mathis] demand suppression on impaired path: {:.1}% of clean-path bytes",
        100.0 * impaired_bytes / clean_bytes
    );
    c.bench_function("simulate_clean_path", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        b.iter(|| black_box(simulate_user(&clean, &wl, axis, &mut rng)))
    });
    c.bench_function("simulate_impaired_path", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        b.iter(|| black_box(simulate_user(&impaired, &wl, axis, &mut rng)))
    });
}

fn ablate_qed(c: &mut Criterion) {
    // The §8 design choice: nearest-neighbour natural experiment vs
    // stratified QED, same units, same question.
    let (control, treatment) = capacity_units();
    let ne = NaturalExperiment::new("ne", ConfounderSet::ForCapacityExperiment.calipers());
    let qed = StratifiedQed::new("qed").with_buckets(4);
    if let (Some(a), Some(b)) = (ne.run(&control, &treatment), qed.run(&control, &treatment)) {
        eprintln!(
            "[ablate_qed] NE: {} pairs, {:.1}% | QED: {} pairs over {} strata, {:.1}%",
            a.test.trials,
            a.percent_holds(),
            b.test.trials,
            b.n_strata,
            b.percent_holds()
        );
    }
    c.bench_function("design_natural_experiment", |bch| {
        bch.iter(|| black_box(ne.run(&control, &treatment)))
    });
    c.bench_function("design_stratified_qed", |bch| {
        bch.iter(|| black_box(qed.run(&control, &treatment)))
    });
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(15);
    targets = ablate_caliper, ablate_binomial, ablate_matching_order, ablate_mathis, ablate_qed
);
criterion_main!(ablations);
