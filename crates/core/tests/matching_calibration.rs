//! Calibration of the natural-experiment machinery against a known null:
//! when control and treatment are draws from the *same* population, the
//! matched sign test must hover around 50% — any systematic deviation
//! would mean the matching itself manufactures effects.

use bb_causal::match_pairs;
use bb_dataset::{World, WorldConfig};
use bb_study::confounders::{to_units, ConfounderSet, OutcomeSpec};

#[test]
fn matched_null_experiment_is_unbiased() {
    // Null experiment: split the SAME population in two; %H must be ~50.
    let mut cfg = WorldConfig::small(5150);
    cfg.user_scale = 16.0;
    cfg.days = 2;
    cfg.fcc_users = 0;
    let ds = World::with_countries(cfg, &["US", "DE"]).generate();
    let units = to_units(
        ds.dasu(),
        ConfounderSet::ForPriceExperiment,
        OutcomeSpec::PEAK_NO_BT,
    );
    let (a, b): (Vec<_>, Vec<_>) = units.into_iter().enumerate().partition(|(i, _)| i % 2 == 0);
    let a: Vec<_> = a.into_iter().map(|(_, u)| u).collect();
    let b: Vec<_> = b.into_iter().map(|(_, u)| u).collect();
    let pairs = match_pairs(&a, &b, &ConfounderSet::ForPriceExperiment.calipers());
    let holds = pairs
        .iter()
        .filter(|p| p.treatment_outcome > p.control_outcome)
        .count();
    let ties = pairs
        .iter()
        .filter(|p| p.treatment_outcome == p.control_outcome)
        .count();
    let share = holds as f64 / (pairs.len() - ties).max(1) as f64;
    assert!(
        pairs.len() > 200,
        "want a well-powered null, got {}",
        pairs.len()
    );
    assert!(
        (share - 0.5).abs() < 0.06,
        "null experiment should sit near 50%, got {:.1}% over {} pairs",
        share * 100.0,
        pairs.len()
    );
    // Asymmetric pools (small treated group vs a large control pool) must
    // also stay unbiased *on average*; individual 50-pair slices swing by
    // +-15 points from binomial noise, so pool several slices.
    let big: Vec<_> = a.to_vec();
    let mut holds = 0usize;
    let mut informative = 0usize;
    for skip in [0usize, 75, 150, 225, 300, 370] {
        let small: Vec<_> = b.iter().skip(skip).take(60).cloned().collect();
        let pairs = match_pairs(&big, &small, &ConfounderSet::ForPriceExperiment.calipers());
        holds += pairs
            .iter()
            .filter(|p| p.treatment_outcome > p.control_outcome)
            .count();
        informative += pairs
            .iter()
            .filter(|p| p.treatment_outcome != p.control_outcome)
            .count();
    }
    let share = holds as f64 / informative.max(1) as f64;
    assert!(
        (share - 0.5).abs() < 0.08,
        "pooled asymmetric null should sit near 50%, got {:.1}% over {informative} pairs",
        share * 100.0
    );
}
