//! Extensions beyond the paper's own exhibits.
//!
//! These implement the follow-on analyses the paper points at:
//!
//! * [`caps_experiment`] — the effect of monthly usage caps on demand
//!   (Chetty et al., cited in §8, modelled end-to-end in `bb-netsim`);
//! * [`persona_breakdown`] and [`persona_experiment`] — "how different
//!   categories of users (e.g., gamers, shoppers or movie-watchers) …
//!   are impacted" (§10);
//! * [`cdf_separations`] — Kolmogorov–Smirnov quantification of the CDF
//!   gaps Figs. 11–12 show visually;
//! * [`qed_cross_check`] — the §8 design comparison: the same price
//!   question answered by a natural experiment and by a stratified QED.

use crate::confounders::{to_units, ConfounderSet, OutcomeSpec};
use crate::exhibit::{ExperimentRow, ExperimentTable};
use bb_causal::experiment::Direction;
use bb_causal::{NaturalExperiment, StratifiedQed};
use bb_dataset::{Dataset, Persona};
use bb_stats::ks::{ks_two_sample, KsTest};
use bb_stats::mean_ci;
use bb_types::{Country, PriceBin};

/// The caps experiment: among otherwise similar users (capacity, quality,
/// market), do subscribers of *capped* plans impose less demand?
///
/// Chetty et al. found capped users curb their usage; our world models
/// both the self-pacing and the ISP throttle, so the matched comparison
/// should come out in the same direction.
pub fn caps_experiment(dataset: &Dataset) -> Option<ExperimentRow> {
    let uncapped = to_units(
        dataset.dasu().filter(|r| !r.plan_capped),
        ConfounderSet::ForUpgradeCostExperiment,
        OutcomeSpec::MEAN_WITH_BT,
    );
    let capped = to_units(
        dataset.dasu().filter(|r| r.plan_capped),
        ConfounderSet::ForUpgradeCostExperiment,
        OutcomeSpec::MEAN_WITH_BT,
    );
    let exp = NaturalExperiment::new(
        "capped plans reduce demand",
        ConfounderSet::ForUpgradeCostExperiment.calipers(),
    )
    .with_direction(Direction::TreatmentLower);
    let outcome = exp.run(&uncapped, &capped)?;
    if outcome.test.trials < crate::sec3::MIN_PAIRS as u64 {
        return None;
    }
    Some(ExperimentRow {
        control: "uncapped plan".into(),
        treatment: "capped plan".into(),
        n_pairs: outcome.test.trials as usize,
        percent_holds: outcome.percent_holds(),
        p_value: outcome.p_value(),
        significant: outcome.significant(),
    })
}

/// Mean demand (Mbps, incl. BitTorrent) per persona with 95% CIs.
#[derive(Clone, Debug)]
pub struct PersonaRow {
    /// The persona.
    pub persona: Persona,
    /// Users of that persona.
    pub n_users: usize,
    /// Mean of per-user mean demand (Mbps).
    pub mean_demand_mbps: f64,
    /// 95% CI of the mean.
    pub ci: (f64, f64),
    /// Share of the persona's users that run BitTorrent.
    pub bt_share: f64,
}

/// The §10 breakdown: demand by user category.
pub fn persona_breakdown(dataset: &Dataset) -> Vec<PersonaRow> {
    Persona::ALL
        .iter()
        .filter_map(|&persona| {
            let demands: Vec<f64> = dataset
                .dasu()
                .filter(|r| r.persona == persona)
                .filter_map(|r| r.demand_with_bt.map(|d| d.mean.mbps()))
                .collect();
            if demands.len() < 5 {
                return None;
            }
            let n_bt = dataset
                .dasu()
                .filter(|r| r.persona == persona && r.is_bt_user)
                .count();
            let n_all = dataset.dasu().filter(|r| r.persona == persona).count();
            let ci = mean_ci(&demands, 0.95);
            Some(PersonaRow {
                persona,
                n_users: demands.len(),
                mean_demand_mbps: ci.mean,
                ci: (ci.lo, ci.hi),
                bt_share: n_bt as f64 / n_all.max(1) as f64,
            })
        })
        .collect()
}

/// Matched experiment: do streamers impose more demand than browsers at
/// equal capacity, quality and market? (They should — that's what the
/// persona means — but the matched design verifies the label survives the
/// confounders.)
pub fn persona_experiment(dataset: &Dataset) -> Option<ExperimentRow> {
    let browsers = to_units(
        dataset.dasu().filter(|r| r.persona == Persona::Browser),
        ConfounderSet::ForUpgradeCostExperiment,
        OutcomeSpec::MEAN_NO_BT,
    );
    let streamers = to_units(
        dataset.dasu().filter(|r| r.persona == Persona::Streamer),
        ConfounderSet::ForUpgradeCostExperiment,
        OutcomeSpec::MEAN_NO_BT,
    );
    let exp = NaturalExperiment::new(
        "streamers out-consume browsers",
        ConfounderSet::ForUpgradeCostExperiment.calipers(),
    );
    let outcome = exp.run(&browsers, &streamers)?;
    if outcome.test.trials < crate::sec3::MIN_PAIRS as u64 {
        return None;
    }
    Some(ExperimentRow {
        control: "browsers".into(),
        treatment: "streamers".into(),
        n_pairs: outcome.test.trials as usize,
        percent_holds: outcome.percent_holds(),
        p_value: outcome.p_value(),
        significant: outcome.significant(),
    })
}

/// Upload/download asymmetry by group: mean uplink and downlink rates and
/// their ratio.
#[derive(Clone, Debug)]
pub struct UploadRow {
    /// Group label.
    pub group: String,
    /// Users in the group with both directions observed.
    pub n_users: usize,
    /// Mean downlink rate (Mbps, incl. BitTorrent intervals).
    pub down_mbps: f64,
    /// Mean uplink rate (Mbps).
    pub up_mbps: f64,
    /// Up/down ratio.
    pub ratio: f64,
}

/// Upload/download breakdown for BitTorrent vs non-BitTorrent users —
/// Dasu recorded both directions, and its BitTorrent-recruited population
/// is famously upload-heavy.
pub fn upload_breakdown(dataset: &Dataset) -> Vec<UploadRow> {
    let mut rows = Vec::new();
    for (label, want_bt) in [("BitTorrent users", true), ("other users", false)] {
        let mut down = Vec::new();
        let mut up = Vec::new();
        for r in dataset.dasu().filter(|r| r.is_bt_user == want_bt) {
            if let (Some(d), Some(u)) = (r.demand_with_bt, r.upload_mean) {
                down.push(d.mean.mbps());
                up.push(u.mbps());
            }
        }
        if down.is_empty() {
            continue;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (d, u) = (mean(&down), mean(&up));
        rows.push(UploadRow {
            group: label.into(),
            n_users: down.len(),
            down_mbps: d,
            up_mbps: u,
            ratio: u / d.max(1e-12),
        });
    }
    rows
}

/// KS quantification of the Figs. 11–12 separations: India vs the rest of
/// the population, for NDT latency and loss.
#[derive(Clone, Copy, Debug)]
pub struct CdfSeparations {
    /// KS test on NDT latencies (India vs rest).
    pub latency: KsTest,
    /// KS test on loss rates (India vs rest).
    pub loss: KsTest,
}

/// Compute the KS separations, if India is present in the dataset.
pub fn cdf_separations(dataset: &Dataset) -> Option<CdfSeparations> {
    let india = Country::new("IN");
    let split = |f: &dyn Fn(&bb_dataset::UserRecord) -> f64| -> (Vec<f64>, Vec<f64>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for r in dataset.dasu() {
            if r.country == india {
                a.push(f(r));
            } else {
                b.push(f(r));
            }
        }
        (a, b)
    };
    let (lat_in, lat_rest) = split(&|r| r.latency.ms());
    let (loss_in, loss_rest) = split(&|r| r.loss.percent());
    if lat_in.len() < 10 || lat_rest.len() < 10 {
        return None;
    }
    Some(CdfSeparations {
        latency: ks_two_sample(&lat_in, &lat_rest),
        loss: ks_two_sample(&loss_in, &loss_rest),
    })
}

/// The §8 design comparison: answer "does a dearer market raise demand?"
/// (the Table 3 bin-1 vs bin-2 question) with both study designs.
#[derive(Clone, Debug)]
pub struct DesignComparison {
    /// Natural-experiment result (nearest-neighbour matching).
    pub natural: Option<ExperimentRow>,
    /// Stratified-QED result on the same units.
    pub qed: Option<ExperimentRow>,
}

/// Run both designs over identical unit sets.
pub fn qed_cross_check(dataset: &Dataset) -> DesignComparison {
    let units_for = |bin: PriceBin| {
        to_units(
            dataset
                .dasu()
                .filter(|r| PriceBin::of(r.access_price) == bin),
            ConfounderSet::ForPriceExperiment,
            OutcomeSpec::PEAK_NO_BT,
        )
    };
    let control = units_for(PriceBin::UpTo25);
    let treatment = units_for(PriceBin::From25To60);

    let natural = NaturalExperiment::new(
        "price (natural experiment)",
        ConfounderSet::ForPriceExperiment.calipers(),
    )
    .run(&control, &treatment)
    .filter(|o| o.test.trials >= crate::sec3::MIN_PAIRS as u64)
    .map(|o| ExperimentRow {
        control: "($0, $25] (NE)".into(),
        treatment: "($25, $60]".into(),
        n_pairs: o.test.trials as usize,
        percent_holds: o.percent_holds(),
        p_value: o.p_value(),
        significant: o.significant(),
    });

    let qed = StratifiedQed::new("price (stratified QED)")
        .with_buckets(4)
        .run(&control, &treatment)
        .filter(|o| o.test.trials >= crate::sec3::MIN_PAIRS as u64)
        .map(|o| ExperimentRow {
            control: "($0, $25] (QED)".into(),
            treatment: "($25, $60]".into(),
            n_pairs: o.test.trials as usize,
            percent_holds: o.percent_holds(),
            p_value: o.test.p_value,
            significant: o.test.significant(),
        });

    DesignComparison { natural, qed }
}

/// Render the extension findings as one experiment table for the harness.
pub fn extension_table(dataset: &Dataset) -> ExperimentTable {
    let mut rows = Vec::new();
    if let Some(r) = caps_experiment(dataset) {
        rows.push(r);
    }
    if let Some(r) = persona_experiment(dataset) {
        rows.push(r);
    }
    let cmp = qed_cross_check(dataset);
    rows.extend(cmp.natural);
    rows.extend(cmp.qed);
    ExperimentTable {
        id: "ext".into(),
        title: "Extensions: caps, personas, and the NE-vs-QED design comparison".into(),
        control_label: "Control group".into(),
        treatment_label: "Treatment group".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            let mut cfg = WorldConfig::small(888);
            cfg.user_scale = 30.0;
            cfg.days = 2;
            cfg.fcc_users = 0;
            let mut world = World::with_countries(cfg, &["US", "DE", "RU", "CN", "BR", "IN", "MX"]);
            for p in &mut world.profiles {
                p.user_weight = 4.0;
                // Caps off so persona/market signals are undiluted; the
                // caps experiment gets its own world below.
                p.market.capped_share = 0.0;
            }
            world.generate()
        })
    }

    /// Single-market world with a large capped share: the caps experiment
    /// needs within-market pairs and real statistical power.
    fn caps_dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            let mut cfg = WorldConfig::small(889);
            cfg.user_scale = 14.0;
            cfg.days = 2;
            cfg.fcc_users = 0;
            let mut world = World::with_countries(cfg, &["US"]);
            // Binding caps: a tight market convention makes the effect
            // detectable at test scale (the paper-scale run uses the
            // default generous caps and still detects it with ~10x the
            // pairs).
            world.profiles[0].market.capped_share = 0.55;
            world.profiles[0].market.cap_gb_per_mbps = 12.0;
            world.generate()
        })
    }

    #[test]
    fn caps_lower_demand() {
        let row = caps_experiment(caps_dataset()).expect("caps experiment runs");
        assert!(row.n_pairs > 40, "{} pairs", row.n_pairs);
        assert!(
            row.percent_holds > 50.0,
            "capped users should use less: {}%",
            row.percent_holds
        );
    }

    #[test]
    fn personas_order_as_designed() {
        let rows = persona_breakdown(dataset());
        assert!(rows.len() >= 3, "{} personas", rows.len());
        let get = |p: Persona| rows.iter().find(|r| r.persona == p);
        if let (Some(streamer), Some(browser)) = (get(Persona::Streamer), get(Persona::Browser)) {
            assert!(
                streamer.mean_demand_mbps > browser.mean_demand_mbps,
                "streamers {} vs browsers {}",
                streamer.mean_demand_mbps,
                browser.mean_demand_mbps
            );
        }
        if let Some(downloader) = get(Persona::Downloader) {
            // Downloaders torrent the most.
            for other in &rows {
                if other.persona != Persona::Downloader {
                    assert!(downloader.bt_share >= other.bt_share - 0.05);
                }
            }
        }
    }

    #[test]
    fn persona_experiment_confirms_the_label() {
        if let Some(row) = persona_experiment(dataset()) {
            assert!(
                row.percent_holds > 52.0,
                "streamers should out-consume browsers: {}%",
                row.percent_holds
            );
        }
    }

    #[test]
    fn ks_separations_flag_india() {
        let sep = cdf_separations(dataset()).expect("India present");
        assert!(
            sep.latency.significant(),
            "latency D = {}",
            sep.latency.statistic
        );
        assert!(sep.latency.statistic > 0.5);
        assert!(sep.loss.statistic > 0.2, "loss D = {}", sep.loss.statistic);
    }

    #[test]
    fn both_designs_run_and_agree_in_direction() {
        let cmp = qed_cross_check(dataset());
        // Both designs should produce an answer at this scale; when they
        // do, the *direction* should agree (both above or both below 50
        // within noise).
        if let (Some(ne), Some(qed)) = (&cmp.natural, &cmp.qed) {
            assert!(ne.n_pairs >= 8);
            assert!(qed.n_pairs >= 8);
            let agree = (ne.percent_holds - 50.0) * (qed.percent_holds - 50.0) >= -100.0;
            assert!(
                agree,
                "designs disagree wildly: NE {}%, QED {}%",
                ne.percent_holds, qed.percent_holds
            );
        }
    }

    #[test]
    fn extension_table_collects_rows() {
        let t = extension_table(dataset());
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn bt_users_are_upload_heavy() {
        let rows = upload_breakdown(dataset());
        assert_eq!(rows.len(), 2);
        let bt = rows
            .iter()
            .find(|r| r.group.contains("BitTorrent"))
            .unwrap();
        let other = rows.iter().find(|r| r.group.contains("other")).unwrap();
        assert!(bt.n_users > 50 && other.n_users > 50);
        assert!(
            bt.ratio > 2.0 * other.ratio,
            "BT up/down {} vs other {}",
            bt.ratio,
            other.ratio
        );
        // Consumption-dominated traffic is download-heavy for everyone.
        assert!(other.ratio < 0.4, "{}", other.ratio);
    }
}
