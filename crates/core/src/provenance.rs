//! Shared provenance assembly for the streaming study.
//!
//! The `reproduce --users` batch path and the `bb-serve` job runner must
//! produce **byte-identical** metrics and ledgers for the same
//! `(seed, users, chaos)` request — that guarantee is only cheap to keep
//! if both call the same code. This module owns the two pieces that used
//! to live inline in the CLI: registering the study-level counters in
//! the plan-invariant [`Registry`], and emitting the streaming run's
//! ledger events in their pinned order (`stream_study`, `data_quality`,
//! then one `exhibit` event per Fig. 1/Fig. 7 panel).

use crate::stream::StreamStudy;
use bb_trace::{EventLog, Registry};

/// Add the study-level counters to the plan-invariant metrics registry.
/// The streaming sketches merge exactly, so these ride along with the
/// generation counters and stay byte-identical under any shard plan.
pub fn register_stream_metrics(registry: &mut Registry, study: &StreamStudy) {
    registry.add("study.users", study.users);
    registry.add("study.dasu_users", study.dasu_users);
    registry.add("study.fcc_users", study.fcc_users);
    registry.add("study.movers", study.movers);
    registry.add("study.sketch_negatives", study.sketch_negatives());
}

/// Surface the ingest screen's verdict counters (accept / repair /
/// quarantine, with per-reason breakdowns) as one plan-invariant
/// `data_quality` ledger event.
pub fn log_data_quality(ledger: &mut EventLog, registry: &Registry) {
    let verdicts: Vec<(String, u64)> = registry
        .counters()
        .filter(|(name, _)| name.starts_with("dataset.quality."))
        .map(|(name, v)| (name.trim_start_matches("dataset.quality.").to_string(), v))
        .collect();
    ledger.emit("data_quality").counts("verdicts", verdicts);
}

/// Emit the streaming run's full ledger: the `stream_study` header, the
/// `data_quality` verdicts, then one `exhibit` accounting event per
/// Fig. 1 and Fig. 7 panel — in exactly this order, so the JSONL is
/// byte-identical wherever it is assembled.
pub fn stream_provenance(
    ledger: &mut EventLog,
    seed: u64,
    study: &StreamStudy,
    registry: &Registry,
) {
    ledger
        .emit("stream_study")
        .u64("seed", seed)
        .u64("users", study.users)
        .u64("dasu_users", study.dasu_users)
        .u64("fcc_users", study.fcc_users)
        .u64("movers", study.movers)
        .u64("sketch_negatives", study.sketch_negatives());
    log_data_quality(ledger, registry);
    for f in study.figure1().iter().chain(study.figure7().iter()) {
        ledger
            .emit("exhibit")
            .str("id", f.id.clone())
            .u64("n", f.series.iter().map(|s| s.n as u64).sum())
            .u64("series", f.series.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_provenance_event_order_is_pinned() {
        let study = StreamStudy::new();
        let mut registry = Registry::new();
        registry.add("dataset.quality.accept", 3);
        registry.add("other.counter", 9);
        let mut ledger = EventLog::new();
        stream_provenance(&mut ledger, 7, &study, &registry);
        let kinds: Vec<&str> = ledger.events().map(|e| e.kind()).collect();
        // An empty study still has the fig1a-c and fig7a-b panels.
        assert_eq!(
            kinds,
            [
                "stream_study",
                "data_quality",
                "exhibit",
                "exhibit",
                "exhibit",
                "exhibit",
                "exhibit"
            ]
        );
        let jsonl = ledger.to_jsonl();
        assert!(jsonl.contains("\"verdicts\": {\"accept\": 3}"), "{jsonl}");
        assert!(!jsonl.contains("other.counter"), "{jsonl}");
    }

    #[test]
    fn register_stream_metrics_adds_the_study_counters() {
        let study = StreamStudy::new();
        let mut registry = Registry::new();
        register_stream_metrics(&mut registry, &study);
        assert_eq!(registry.counter("study.users"), 0);
        assert!(registry.to_json().contains("\"study.sketch_negatives\""));
    }
}
