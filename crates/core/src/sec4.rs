//! §4 — Longitudinal trends in usage (Figure 6).
//!
//! "Despite the fourfold increase in global IP traffic, we find that
//! subscribers' demand on the network remained constant at each speed
//! tier" — the panel figures overlay usage-vs-capacity curves for 2011,
//! 2012 and 2013, and a natural experiment checks for per-tier change
//! between the first and last year.

use crate::confounders::{to_units, ConfounderSet, OutcomeSpec};
use crate::exhibit::{BinnedFigure, BinnedPoint, BinnedSeries, ExperimentRow, ExperimentTable};
use bb_causal::NaturalExperiment;
use bb_dataset::Dataset;
use bb_stats::binning::BinnedSeries as StatsBins;
use bb_stats::corr::pearson;
use bb_trace::EventLog;
use bb_types::{CapacityBin, Year};

/// Minimum users per (year, bin) cell.
const MIN_CELL_USERS: usize = 5;

/// Figure 6: usage vs capacity, one series per panel year. Panels:
/// (a) mean w/ BT, (b) p95 w/ BT, (c) mean no BT, (d) p95 no BT.
pub fn figure6(dataset: &Dataset, ledger: &mut EventLog) -> [BinnedFigure; 4] {
    let spec = [
        ("fig6a", "Mean (w/ BT)", OutcomeSpec::MEAN_WITH_BT),
        ("fig6b", "95th %ile (w/ BT)", OutcomeSpec::PEAK_WITH_BT),
        ("fig6c", "Mean (no BT)", OutcomeSpec::MEAN_NO_BT),
        ("fig6d", "95th %ile (no BT)", OutcomeSpec::PEAK_NO_BT),
    ];
    spec.map(|(id, title, outcome)| {
        let mut series = Vec::new();
        for year in Year::PANEL {
            let mut bins: StatsBins<CapacityBin> = StatsBins::new();
            let mut n_input = 0u64;
            let mut dropped_no_outcome = 0u64;
            for r in dataset.dasu().filter(|r| r.year == year) {
                n_input += 1;
                if let Some(v) = outcome.of(r) {
                    bins.push(CapacityBin::of(r.capacity), v / 1e6);
                } else {
                    dropped_no_outcome += 1;
                }
            }
            let before_filter = bins.n_total();
            let bins = bins.filter_min_count(MIN_CELL_USERS);
            ledger
                .emit("exhibit")
                .str("id", id)
                .str("series", year.to_string())
                .u64("n", n_input)
                .u64("dropped_no_outcome", dropped_no_outcome)
                .u64(
                    "dropped_thin_bins",
                    before_filter as u64 - bins.n_total() as u64,
                )
                .u64("min_bin_users", MIN_CELL_USERS as u64)
                .u64("n_used", bins.n_total() as u64);
            let points: Vec<BinnedPoint> = bins
                .mean_cis(0.95)
                .into_iter()
                .map(|(bin, ci)| BinnedPoint {
                    x: bin.midpoint().mbps(),
                    mean: ci.mean,
                    ci_lo: ci.lo,
                    ci_hi: ci.hi,
                    n: ci.n,
                })
                .collect();
            if points.is_empty() {
                continue;
            }
            let xs: Vec<f64> = points.iter().map(|p| p.x.log10()).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.mean.max(1e-9).log10()).collect();
            series.push(BinnedSeries {
                label: year.to_string(),
                r_log: pearson(&xs, &ys),
                points,
            });
        }
        BinnedFigure {
            id: id.into(),
            title: format!("Usage vs capacity by year — {title}"),
            x_label: "Capacity (Mbps)".into(),
            y_label: "Usage (Mbps)".into(),
            series,
        }
    })
}

/// The §4 natural experiment: per capacity bin, is 2013 demand higher than
/// 2011 demand among matched users? The paper is "unable to find any
/// significant change in demand at any given speed tier".
pub fn year_experiment(dataset: &Dataset, ledger: &mut EventLog) -> ExperimentTable {
    let set = ConfounderSet::ForCapacityExperiment;
    let calipers = set.calipers();
    let names = set.covariate_names();
    let mut rows = Vec::new();
    let mut dropped_empty_bins = 0u64;
    let mut dropped_no_experiment = 0u64;
    let mut dropped_min_pairs = 0u64;
    for k in 1..=10u8 {
        let bin = CapacityBin(k);
        let of_year = |year: Year| {
            to_units(
                dataset
                    .dasu()
                    .filter(|r| r.year == year && CapacityBin::of(r.capacity) == bin),
                ConfounderSet::ForCapacityExperiment,
                OutcomeSpec::PEAK_NO_BT,
            )
        };
        let control = of_year(Year(2011));
        let treatment = of_year(Year(2013));
        if control.is_empty() || treatment.is_empty() {
            dropped_empty_bins += 1;
            continue;
        }
        let exp = NaturalExperiment::new(format!("year shift in {bin}"), calipers.clone());
        let (outcome, audit) = exp.run_audited(&control, &treatment);
        let kept = matches!(&outcome, Some(o) if o.test.trials >= crate::sec3::MIN_PAIRS as u64);
        exp.log_provenance(ledger, "table_sec4", &names, &audit, outcome.as_ref(), kept);
        let Some(outcome) = outcome else {
            dropped_no_experiment += 1;
            continue;
        };
        if !kept {
            dropped_min_pairs += 1;
            continue;
        }
        rows.push(ExperimentRow {
            control: format!("{bin} in 2011"),
            treatment: format!("{bin} in 2013"),
            n_pairs: outcome.test.trials as usize,
            percent_holds: outcome.percent_holds(),
            p_value: outcome.p_value(),
            significant: outcome.significant(),
        });
    }
    ledger
        .emit("exhibit")
        .str("id", "table_sec4")
        .u64("rows", rows.len() as u64)
        .u64("dropped_empty_bins", dropped_empty_bins)
        .u64("dropped_no_experiment", dropped_no_experiment)
        .u64("dropped_min_pairs", dropped_min_pairs)
        .u64("min_pairs", crate::sec3::MIN_PAIRS as u64);
    ExperimentTable {
        id: "table_sec4".into(),
        title: "Per-tier demand change between 2011 and 2013 (matched users)".into(),
        control_label: "Control group (2011)".into(),
        treatment_label: "Treatment group (2013)".into(),
        rows,
    }
}

/// Summary statistic for EXPERIMENTS.md: the share of per-tier year
/// experiments that came out *conclusive* (significant + practically
/// important). The paper found none.
pub fn share_of_tiers_with_significant_change(table: &ExperimentTable) -> f64 {
    if table.rows.is_empty() {
        return 0.0;
    }
    let conclusive = table
        .rows
        .iter()
        .filter(|r| r.significant && (r.percent_holds - 50.0).abs() > 2.0)
        .count();
    conclusive as f64 / table.rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};

    fn dataset() -> Dataset {
        let mut cfg = WorldConfig::small(1717);
        cfg.user_scale = 3.0;
        cfg.days = 2;
        cfg.fcc_users = 0;
        World::with_countries(cfg, &["US", "DE", "GB", "JP", "BR"]).generate()
    }

    #[test]
    fn figure6_has_overlapping_yearly_series() {
        let ds = dataset();
        let figs = figure6(&ds, &mut bb_trace::EventLog::new());
        for fig in &figs {
            assert!(
                fig.series.len() >= 2,
                "{}: {} series",
                fig.id,
                fig.series.len()
            );
        }
        // Per-tier demand is roughly constant across years: compare 2011
        // and 2013 means in shared bins of the no-BT p95 panel; the bulk of
        // shared bins should differ by less than 3x (they differ by 10-50x
        // across the capacity axis).
        let fig = &figs[3];
        let find = |label: &str| fig.series.iter().find(|s| s.label == label);
        if let (Some(a), Some(b)) = (find("2011"), find("2013")) {
            let mut ratios = Vec::new();
            for pa in &a.points {
                if let Some(pb) = b.points.iter().find(|p| p.x == pa.x) {
                    ratios.push((pb.mean / pa.mean).max(pa.mean / pb.mean));
                }
            }
            assert!(!ratios.is_empty(), "no shared bins");
            let close = ratios.iter().filter(|r| **r < 3.0).count();
            assert!(
                close * 2 >= ratios.len(),
                "per-tier demand drifted: ratios {ratios:?}"
            );
        }
    }

    #[test]
    fn year_experiment_finds_little_change() {
        let ds = dataset();
        let table = year_experiment(&ds, &mut bb_trace::EventLog::new());
        // With a faithful world the paper's null result should mostly hold:
        // fewer than half the tiers show a conclusive change.
        let share = share_of_tiers_with_significant_change(&table);
        assert!(share <= 0.5, "share of changed tiers {share}");
    }
}
