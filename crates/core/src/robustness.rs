//! Robustness of the findings across seeds.
//!
//! Paxson's *Strategies for Sound Internet Measurement* — which the paper
//! leans on for its statistical hygiene — asks whether a result survives
//! re-drawing the data. With a generative world that question is directly
//! answerable: regenerate the dataset under several seeds and look at the
//! distribution of each experiment's "% H holds".
//!
//! [`seed_sweep`] runs the headline experiments over `n_seeds` worlds and
//! reports, per experiment, the min / mean / max share and how many runs
//! came out significant — the reproduction's error bars on itself.

use crate::exhibit::ExperimentRow;
use crate::{sec3, sec5, sec6, sec7};
use bb_dataset::{World, WorldConfig};

/// Summary of one experiment across seeds.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Which experiment.
    pub experiment: String,
    /// Runs in which the experiment produced a result at all.
    pub n_runs: usize,
    /// Minimum "% H holds" across runs.
    pub min: f64,
    /// Mean "% H holds" across runs.
    pub mean: f64,
    /// Maximum "% H holds" across runs.
    pub max: f64,
    /// Runs that were statistically significant.
    pub n_significant: usize,
    /// Total matched pairs across runs.
    pub total_pairs: usize,
}

impl SweepRow {
    /// The finding is *stable* when every run points the same way and most
    /// are significant.
    pub fn stable(&self) -> bool {
        self.n_runs > 0 && self.min > 50.0 && self.n_significant * 2 >= self.n_runs
    }
}

/// Pooled rows of one experiment table as a single direction observation.
fn pooled(rows: &[ExperimentRow]) -> Option<(f64, bool, usize)> {
    if rows.is_empty() {
        return None;
    }
    let pairs: usize = rows.iter().map(|r| r.n_pairs).sum();
    let share = rows
        .iter()
        .map(|r| r.percent_holds * r.n_pairs as f64)
        .sum::<f64>()
        / pairs as f64;
    let significant = rows.iter().any(|r| r.significant);
    Some((share, significant, pairs))
}

/// Run the headline experiments across `n_seeds` regenerated worlds.
///
/// `base` supplies everything except the seed; pass a reduced
/// configuration (small scale, short windows) unless you have minutes to
/// spend.
pub fn seed_sweep(base: &WorldConfig, n_seeds: u64) -> Vec<SweepRow> {
    assert!(n_seeds >= 1, "need at least one seed");
    let experiments: [&str; 6] = [
        "table1 movers (peak)",
        "table2 capacity (pooled)",
        "table3 price (pooled)",
        "table6 upgrade cost (pooled)",
        "table7 latency (pooled)",
        "table8 loss (pooled)",
    ];
    /// Per run: (pooled share, any-significant, total pairs).
    type Observation = (f64, bool, usize);
    let mut acc: Vec<(usize, Vec<Observation>)> =
        (0..experiments.len()).map(|i| (i, Vec::new())).collect();

    for i in 0..n_seeds {
        let mut cfg = base.clone();
        cfg.seed = base
            .seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let ds = World::new(cfg).generate();

        let t1 = sec3::table1(&ds, &mut bb_trace::EventLog::new());
        let peak_row: Vec<ExperimentRow> = t1.rows.into_iter().skip(1).take(1).collect();
        let (dasu2, _) = sec3::table2(&ds, &mut bb_trace::EventLog::new());
        let t3 = sec5::table3(&ds, &mut bb_trace::EventLog::new());
        let [t6a, _] = sec6::table6(&ds, &mut bb_trace::EventLog::new());
        let t7 = sec7::table7(&ds, &mut bb_trace::EventLog::new());
        let t8 = sec7::table8(&ds, &mut bb_trace::EventLog::new());

        for (idx, rows) in [
            (0, &peak_row[..]),
            (1, &dasu2.rows[..]),
            (2, &t3.rows[..]),
            (3, &t6a.rows[..]),
            (4, &t7.rows[..]),
            (5, &t8.rows[..]),
        ] {
            if let Some(obs) = pooled(rows) {
                acc[idx].1.push(obs);
            }
        }
    }

    acc.into_iter()
        .map(|(idx, obs)| {
            let n_runs = obs.len();
            let shares: Vec<f64> = obs.iter().map(|o| o.0).collect();
            let (min, max) = shares.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
            SweepRow {
                experiment: experiments[idx].to_string(),
                n_runs,
                min: if n_runs == 0 { 0.0 } else { min },
                mean: if n_runs == 0 {
                    0.0
                } else {
                    shares.iter().sum::<f64>() / n_runs as f64
                },
                max,
                n_significant: obs.iter().filter(|o| o.1).count(),
                total_pairs: obs.iter().map(|o| o.2).sum(),
            }
        })
        .collect()
}

/// Render a sweep as a text table.
pub fn render_sweep(rows: &[SweepRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<30} {:>5}  {:>6}  {:>6}  {:>6}  {:>11}  {:>11}",
        "experiment", "runs", "min%", "mean%", "max%", "significant", "total pairs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<30} {:>5}  {:>6.1}  {:>6.1}  {:>6.1}  {:>8}/{:<2}  {:>11}",
            r.experiment, r.n_runs, r.min, r.mean, r.max, r.n_significant, r.n_runs, r.total_pairs
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately small sweep: three seeds of a reduced world. The
    /// headline findings should point the right way in aggregate.
    #[test]
    fn small_sweep_is_directionally_stable() {
        let mut base = WorldConfig::small(71);
        base.user_scale = 2.0;
        base.days = 2;
        base.fcc_users = 60;
        let rows = seed_sweep(&base, 3);
        assert_eq!(rows.len(), 6);
        // Movers (Table 1) are the strongest effect in the model: every
        // run should point up and be significant.
        let movers = &rows[0];
        assert_eq!(movers.n_runs, 3);
        assert!(movers.min > 55.0, "{movers:?}");
        assert_eq!(movers.n_significant, 3);
        // Pooled capacity experiments point up on average.
        let capacity = &rows[1];
        assert!(capacity.mean > 52.0, "{capacity:?}");
        // The render is a complete table.
        let text = render_sweep(&rows);
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains("table8 loss"));
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let base = WorldConfig::small(1);
        let _ = seed_sweep(&base, 0);
    }
}
