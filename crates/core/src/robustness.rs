//! Robustness of the findings across seeds and under degraded collection.
//!
//! Paxson's *Strategies for Sound Internet Measurement* — which the paper
//! leans on for its statistical hygiene — asks two questions of every
//! finding: does it survive re-drawing the data, and does it survive
//! plausible measurement failure?
//!
//! * [`seed_sweep`] answers the first: regenerate the dataset under
//!   several seeds and report, per experiment, the min / mean / max
//!   "% H holds" and how many runs came out significant — the
//!   reproduction's error bars on itself. [`seed_sweep_with`] runs the
//!   seeds through [`bb_engine::run_sharded`], so a multi-threaded sweep
//!   is bit-identical to the serial one.
//! * [`chaos_sweep`] answers the second: re-run the whole experiment
//!   battery across a fault-severity grid of one [`ChaosScenario`] and
//!   emit a [`SurvivalMatrix`] — per experiment, the severity at which
//!   the direction flips, significance is lost, or the matched pairs
//!   collapse. Severity 0 is the fault-free baseline and is guaranteed
//!   bit-identical to a run with no chaos configured at all.

use crate::exhibit::ExperimentRow;
use crate::{sec3, sec4, sec5, sec6, sec7};
use bb_dataset::{Dataset, World, WorldConfig};
use bb_engine::{run_sharded, ShardPlan};
use bb_netsim::chaos::{ChaosScenario, ChaosSpec};
use bb_stats::Ecdf;

/// The experiments the sweeps track, in report order. The first six are
/// the headline tables; the last two extend coverage to §4 (the year
/// experiment) and the §7 India/US comparison so the chaos campaigns
/// exercise every sectioned finding.
pub const SWEEP_EXPERIMENTS: [&str; 8] = [
    "table1 movers (peak)",
    "table2 capacity (pooled)",
    "table3 price (pooled)",
    "table6 upgrade cost (pooled)",
    "table7 latency (pooled)",
    "table8 loss (pooled)",
    "sec4 year shift (pooled)",
    "india vs US (peak)",
];

/// Summary of one experiment across seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Which experiment.
    pub experiment: String,
    /// Runs in which the experiment produced a result at all.
    pub n_runs: usize,
    /// Minimum "% H holds" across runs.
    pub min: f64,
    /// Mean "% H holds" across runs.
    pub mean: f64,
    /// Maximum "% H holds" across runs.
    pub max: f64,
    /// Runs that were statistically significant.
    pub n_significant: usize,
    /// Total matched pairs across runs.
    pub total_pairs: usize,
}

impl SweepRow {
    /// The finding is *stable* when every run points the same way and most
    /// are significant.
    pub fn stable(&self) -> bool {
        self.n_runs > 0 && self.min > 50.0 && self.n_significant * 2 >= self.n_runs
    }
}

/// One experiment's pooled result in one generated world:
/// (pooled "% H holds", any row significant, total matched pairs).
type Observation = (f64, bool, usize);

/// Pooled rows of one experiment table as a single direction observation.
fn pooled(rows: &[ExperimentRow]) -> Option<Observation> {
    if rows.is_empty() {
        return None;
    }
    let pairs: usize = rows.iter().map(|r| r.n_pairs).sum();
    let share = rows
        .iter()
        .map(|r| r.percent_holds * r.n_pairs as f64)
        .sum::<f64>()
        / pairs as f64;
    let significant = rows.iter().any(|r| r.significant);
    Some((share, significant, pairs))
}

/// Run the full experiment battery over one dataset, one slot per
/// [`SWEEP_EXPERIMENTS`] entry (`None` = the experiment produced no
/// reportable rows in this world).
fn battery(ds: &Dataset) -> [Option<Observation>; 8] {
    let mut sink = bb_trace::EventLog::new();
    let t1 = sec3::table1(ds, &mut sink);
    let peak_row: Vec<ExperimentRow> = t1
        .rows
        .into_iter()
        .filter(|r| r.control.starts_with("Peak"))
        .collect();
    let (dasu2, _) = sec3::table2(ds, &mut sink);
    let t3 = sec5::table3(ds, &mut sink);
    let [t6a, _] = sec6::table6(ds, &mut sink);
    let t7 = sec7::table7(ds, &mut sink);
    let t8 = sec7::table8(ds, &mut sink);
    let t4 = sec4::year_experiment(ds, &mut sink);
    let ivu: Vec<ExperimentRow> = sec7::india_vs_us(ds, &mut sink).into_iter().collect();
    [
        pooled(&peak_row),
        pooled(&dasu2.rows),
        pooled(&t3.rows),
        pooled(&t6a.rows),
        pooled(&t7.rows),
        pooled(&t8.rows),
        pooled(&t4.rows),
        pooled(&ivu),
    ]
}

/// Run the headline experiments across `n_seeds` regenerated worlds
/// (serially — see [`seed_sweep_with`] to spread seeds over threads).
///
/// `base` supplies everything except the seed; pass a reduced
/// configuration (small scale, short windows) unless you have minutes to
/// spend.
pub fn seed_sweep(base: &WorldConfig, n_seeds: u64) -> Vec<SweepRow> {
    seed_sweep_with(base, n_seeds, ShardPlan::serial())
}

/// [`seed_sweep`] with the seeds spread across `plan`'s shards via
/// [`run_sharded`]. Each seed's world is generated and analysed inside
/// its shard; per-seed observation vectors merge by ordered append, so
/// the result is bit-identical for every plan.
pub fn seed_sweep_with(base: &WorldConfig, n_seeds: u64, plan: ShardPlan) -> Vec<SweepRow> {
    assert!(n_seeds >= 1, "need at least one seed");
    let per_seed: Vec<[Option<Observation>; 8]> = run_sharded(n_seeds, plan, |_, range| {
        range
            .map(|i| {
                let mut cfg = base.clone();
                cfg.seed = base
                    .seed
                    .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let ds = World::new(cfg).generate();
                battery(&ds)
            })
            .collect::<Vec<_>>()
    });

    SWEEP_EXPERIMENTS
        .iter()
        .enumerate()
        .map(|(idx, name)| {
            let obs: Vec<Observation> = per_seed.iter().filter_map(|seed| seed[idx]).collect();
            let n_runs = obs.len();
            let shares: Vec<f64> = obs.iter().map(|o| o.0).collect();
            let (min, max) = shares.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
            SweepRow {
                experiment: (*name).to_string(),
                n_runs,
                min: if n_runs == 0 { 0.0 } else { min },
                mean: if n_runs == 0 {
                    0.0
                } else {
                    shares.iter().sum::<f64>() / n_runs as f64
                },
                max,
                n_significant: obs.iter().filter(|o| o.1).count(),
                total_pairs: obs.iter().map(|o| o.2).sum(),
            }
        })
        .collect()
}

/// Render a sweep as a text table.
pub fn render_sweep(rows: &[SweepRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<30} {:>5}  {:>6}  {:>6}  {:>6}  {:>11}  {:>11}",
        "experiment", "runs", "min%", "mean%", "max%", "significant", "total pairs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<30} {:>5}  {:>6.1}  {:>6.1}  {:>6.1}  {:>8}/{:<2}  {:>11}",
            r.experiment, r.n_runs, r.min, r.mean, r.max, r.n_significant, r.n_runs, r.total_pairs
        );
    }
    out
}

/// One experiment at one severity of a chaos campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct SurvivalCell {
    /// The severity this cell was measured at.
    pub severity: f64,
    /// "% H holds" (for the capacity row: % of the baseline median
    /// capacity retained). `None` when the experiment produced no
    /// reportable result at this severity.
    pub value: Option<f64>,
    /// Did the result clear the (guarded) significance bar?
    pub significant: bool,
    /// Matched pairs backing the cell (panel size for the capacity row).
    pub pairs: usize,
}

/// One experiment's trajectory across the severity grid, with the three
/// survival thresholds derived against the severity-0 baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct SurvivalRow {
    /// Which experiment.
    pub experiment: String,
    /// One cell per severity, in grid order (cell 0 is the baseline).
    pub cells: Vec<SurvivalCell>,
    /// Lowest severity at which the finding's direction crossed 50%
    /// against the baseline's side. `None` = the direction survived.
    pub direction_flip_at: Option<f64>,
    /// Lowest severity at which a baseline-significant finding stopped
    /// being significant. `None` = significance survived (or the
    /// baseline was never significant).
    pub significance_lost_at: Option<f64>,
    /// Lowest severity at which the matched pairs collapsed to zero.
    pub pairs_collapse_at: Option<f64>,
}

/// The full survival matrix of one chaos campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct SurvivalMatrix {
    /// Scenario name (kebab-case, as accepted by `--chaos`).
    pub scenario: String,
    /// The severity grid, ascending from the mandatory 0 baseline.
    pub severities: Vec<f64>,
    /// One row per tracked exhibit: the §2 capacity panel first, then
    /// every [`SWEEP_EXPERIMENTS`] entry.
    pub rows: Vec<SurvivalRow>,
}

/// Derive the survival thresholds of one experiment's cell trajectory.
fn survival_row(experiment: &str, cells: Vec<SurvivalCell>) -> SurvivalRow {
    let base = cells[0].clone();
    // Which side of 50% the baseline is on; 0 ⇒ no direction to flip.
    let base_side = base.value.map_or(0.0, |v| (v - 50.0).signum());
    let mut flip = None;
    let mut sig_lost = None;
    let mut collapse = None;
    for c in &cells[1..] {
        if flip.is_none() && base_side != 0.0 {
            if let Some(v) = c.value {
                if (v - 50.0) * base_side <= 0.0 {
                    flip = Some(c.severity);
                }
            }
        }
        if sig_lost.is_none() && base.significant && !c.significant {
            sig_lost = Some(c.severity);
        }
        if collapse.is_none() && base.pairs > 0 && c.pairs == 0 {
            collapse = Some(c.severity);
        }
    }
    SurvivalRow {
        experiment: experiment.to_string(),
        cells,
        direction_flip_at: flip,
        significance_lost_at: sig_lost,
        pairs_collapse_at: collapse,
    }
}

/// Run the experiment battery across a fault-severity grid of one
/// scenario and assemble the survival matrix.
///
/// `severities` must be strictly increasing, within `[0, 1]`, and start
/// at `0.0` — the fault-free baseline every threshold is derived
/// against. Each severity's world is generated under `plan` through the
/// engine's sharded runner, so the matrix is bit-identical for every
/// `--threads` / `--shards` choice.
pub fn chaos_sweep(
    base: &WorldConfig,
    scenario: ChaosScenario,
    severities: &[f64],
    plan: ShardPlan,
) -> SurvivalMatrix {
    assert!(!severities.is_empty(), "need at least one severity");
    assert!(
        severities[0] == 0.0,
        "severity grid must start at 0 (the fault-free baseline)"
    );
    assert!(
        severities.windows(2).all(|w| w[0] < w[1]),
        "severities must be strictly increasing"
    );

    struct Column {
        median_capacity: f64,
        n_dasu: usize,
        battery: [Option<Observation>; 8],
    }
    let columns: Vec<Column> = severities
        .iter()
        .map(|&s| {
            let mut cfg = base.clone();
            cfg.chaos = Some(ChaosSpec::new(scenario, s));
            let ds = World::new(cfg).generate_with(plan);
            let caps: Vec<f64> = ds.dasu().map(|r| r.capacity.mbps()).collect();
            Column {
                median_capacity: if caps.is_empty() {
                    0.0
                } else {
                    Ecdf::new(caps.clone()).median()
                },
                n_dasu: caps.len(),
                battery: battery(&ds),
            }
        })
        .collect();

    let mut rows = Vec::with_capacity(1 + SWEEP_EXPERIMENTS.len());
    // §2 panel health: median measured capacity as % of the baseline
    // median. "Direction flip" (retention < 50%) means degraded
    // collection halved the headline capacity picture.
    let base_median = columns[0].median_capacity;
    let cells = columns
        .iter()
        .zip(severities)
        .map(|(c, &s)| SurvivalCell {
            severity: s,
            value: (base_median > 0.0 && c.n_dasu > 0)
                .then(|| 100.0 * c.median_capacity / base_median),
            significant: c.n_dasu > 0,
            pairs: c.n_dasu,
        })
        .collect();
    rows.push(survival_row("sec2 median capacity (retention %)", cells));

    for (idx, name) in SWEEP_EXPERIMENTS.iter().enumerate() {
        let cells = columns
            .iter()
            .zip(severities)
            .map(|(c, &s)| match c.battery[idx] {
                Some((share, significant, pairs)) => SurvivalCell {
                    severity: s,
                    value: Some(share),
                    significant,
                    pairs,
                },
                None => SurvivalCell {
                    severity: s,
                    value: None,
                    significant: false,
                    pairs: 0,
                },
            })
            .collect();
        rows.push(survival_row(name, cells));
    }

    SurvivalMatrix {
        scenario: scenario.name().to_string(),
        severities: severities.to_vec(),
        rows,
    }
}

/// Format a float for `chaos.json`: rounded to 4 decimals, rendered via
/// the default `Display` so the bytes are identical on every platform.
fn json_f64(x: f64) -> String {
    let r = (x * 10_000.0).round() / 10_000.0;
    format!("{r}")
}

fn json_opt(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_string(), json_f64)
}

impl SurvivalMatrix {
    /// Serialise the matrix as deterministic JSON: fixed key order,
    /// floats rounded to 4 decimals — byte-identical across shard plans
    /// and platforms, so CI can `cmp` two runs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"scenario\": \"{}\",\n", self.scenario);
        let sevs: Vec<String> = self.severities.iter().map(|&s| json_f64(s)).collect();
        let _ = write!(
            out,
            "  \"severities\": [{}],\n  \"rows\": [",
            sevs.join(", ")
        );
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"experiment\": \"{}\", \"cells\": [",
                if i == 0 { "" } else { "," },
                row.experiment
            );
            for (j, c) in row.cells.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"severity\": {}, \"value\": {}, \"significant\": {}, \"pairs\": {}}}",
                    if j == 0 { "" } else { ", " },
                    json_f64(c.severity),
                    json_opt(c.value),
                    c.significant,
                    c.pairs
                );
            }
            let _ = write!(
                out,
                "], \"direction_flip_at\": {}, \"significance_lost_at\": {}, \"pairs_collapse_at\": {}}}",
                json_opt(row.direction_flip_at),
                json_opt(row.significance_lost_at),
                json_opt(row.pairs_collapse_at)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately small sweep: three seeds of a reduced world. The
    /// headline findings should point the right way in aggregate.
    #[test]
    fn small_sweep_is_directionally_stable() {
        let mut base = WorldConfig::small(71);
        base.user_scale = 2.0;
        base.days = 2;
        base.fcc_users = 60;
        let rows = seed_sweep(&base, 3);
        assert_eq!(rows.len(), 8);
        // Movers (Table 1) are the strongest effect in the model: every
        // run should point up and be significant.
        let movers = &rows[0];
        assert_eq!(movers.n_runs, 3);
        assert!(movers.min > 55.0, "{movers:?}");
        assert_eq!(movers.n_significant, 3);
        // Pooled capacity experiments point up on average.
        let capacity = &rows[1];
        assert!(capacity.mean > 52.0, "{capacity:?}");
        // The render is a complete table.
        let text = render_sweep(&rows);
        assert_eq!(text.lines().count(), 9);
        assert!(text.contains("table8 loss"));
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_serial() {
        let mut base = WorldConfig::small(71);
        base.user_scale = 1.0;
        base.days = 1;
        base.fcc_users = 30;
        let serial = seed_sweep(&base, 3);
        for plan in [ShardPlan::new(3, 3), ShardPlan::new(2, 2)] {
            let sharded = seed_sweep_with(&base, 3, plan);
            assert_eq!(serial, sharded, "seed sweep must not depend on {plan:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        let base = WorldConfig::small(1);
        let _ = seed_sweep(&base, 0);
    }

    fn chaos_base() -> WorldConfig {
        let mut base = WorldConfig::small(71);
        base.user_scale = 1.0;
        base.days = 1;
        base.fcc_users = 30;
        base
    }

    #[test]
    fn chaos_sweep_has_full_coverage_and_healthy_baseline() {
        let base = chaos_base();
        let m = chaos_sweep(
            &base,
            ChaosScenario::Omnibus,
            &[0.0, 0.5, 1.0],
            ShardPlan::new(8, 4),
        );
        assert_eq!(m.scenario, "omnibus");
        assert_eq!(m.rows.len(), 1 + SWEEP_EXPERIMENTS.len());
        assert_eq!(m.rows[0].experiment, "sec2 median capacity (retention %)");
        for row in &m.rows {
            assert_eq!(row.cells.len(), 3, "{}", row.experiment);
        }
        // The baseline capacity row is exactly 100% by construction.
        assert_eq!(m.rows[0].cells[0].value, Some(100.0));
        // The movers experiment exists at baseline.
        assert!(m.rows[1].cells[0].pairs > 0, "{:?}", m.rows[1]);
    }

    #[test]
    fn severity_zero_column_matches_chaos_free_run() {
        // The single-point "sweep" at severity 0 must reproduce the
        // clean battery bit for bit.
        let base = chaos_base();
        let m = chaos_sweep(
            &base,
            ChaosScenario::ProbeBlackout,
            &[0.0],
            ShardPlan::serial(),
        );
        let clean = battery(&World::new(base).generate());
        for (row, obs) in m.rows[1..].iter().zip(clean) {
            match obs {
                Some((share, sig, pairs)) => {
                    assert_eq!(row.cells[0].value, Some(share), "{}", row.experiment);
                    assert_eq!(row.cells[0].significant, sig);
                    assert_eq!(row.cells[0].pairs, pairs);
                }
                None => assert_eq!(row.cells[0].value, None, "{}", row.experiment),
            }
        }
    }

    #[test]
    fn chaos_json_is_plan_invariant() {
        let base = chaos_base();
        let severities = [0.0, 1.0];
        let a = chaos_sweep(
            &base,
            ChaosScenario::PollChurn,
            &severities,
            ShardPlan::serial(),
        );
        let b = chaos_sweep(
            &base,
            ChaosScenario::PollChurn,
            &severities,
            ShardPlan::new(8, 4),
        );
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"scenario\": \"poll-churn\""));
    }

    #[test]
    #[should_panic(expected = "must start at 0")]
    fn chaos_sweep_requires_baseline() {
        let _ = chaos_sweep(
            &chaos_base(),
            ChaosScenario::Omnibus,
            &[0.5, 1.0],
            ShardPlan::serial(),
        );
    }

    #[test]
    fn survival_thresholds_are_derived_correctly() {
        let cell = |s: f64, v: Option<f64>, sig: bool, pairs: usize| SurvivalCell {
            severity: s,
            value: v,
            significant: sig,
            pairs,
        };
        // Direction flips at 0.5, significance lost at 0.25, pairs
        // collapse at 0.75.
        let row = survival_row(
            "t",
            vec![
                cell(0.0, Some(70.0), true, 40),
                cell(0.25, Some(60.0), false, 20),
                cell(0.5, Some(45.0), false, 10),
                cell(0.75, None, false, 0),
            ],
        );
        assert_eq!(row.direction_flip_at, Some(0.5));
        assert_eq!(row.significance_lost_at, Some(0.25));
        assert_eq!(row.pairs_collapse_at, Some(0.75));
        // A never-significant baseline cannot "lose" significance.
        let row = survival_row(
            "t",
            vec![cell(0.0, Some(55.0), false, 40), cell(1.0, None, false, 0)],
        );
        assert_eq!(row.significance_lost_at, None);
        assert_eq!(row.pairs_collapse_at, Some(1.0));
    }

    #[test]
    fn survival_json_shape() {
        let m = SurvivalMatrix {
            scenario: "omnibus".into(),
            severities: vec![0.0, 0.5],
            rows: vec![survival_row(
                "t",
                vec![
                    SurvivalCell {
                        severity: 0.0,
                        value: Some(70.123456),
                        significant: true,
                        pairs: 12,
                    },
                    SurvivalCell {
                        severity: 0.5,
                        value: None,
                        significant: false,
                        pairs: 0,
                    },
                ],
            )],
        };
        let json = m.to_json();
        assert!(json.contains("\"value\": 70.1235"), "{json}");
        assert!(json.contains("\"value\": null"), "{json}");
        assert!(json.contains("\"pairs_collapse_at\": 0.5"), "{json}");
        assert!(json.ends_with("\n  ]\n}\n"), "{json}");
    }
}
