//! §3 — Impact of capacity.
//!
//! * [`figure2`] — usage vs capacity for the global population, mean and
//!   95th percentile, with and without BitTorrent;
//! * [`figure3`] — FCC gateways vs Dasu US end hosts;
//! * [`table1`] — the §3.2 natural experiment on users switching networks;
//! * [`figure4`] — demand CDFs of movers on their slow vs fast network;
//! * [`figure5`] — change in demand by initial × target service tier;
//! * [`table2`] — matched adjacent-capacity-bin experiments (Dasu & FCC).

use crate::confounders::{to_units, ConfounderSet, OutcomeSpec};
use crate::exhibit::{
    Bar, BarFigure, BarGroup, BinnedFigure, BinnedPoint, BinnedSeries, CdfFigure, CdfSeries,
    ExperimentRow, ExperimentTable,
};
use bb_causal::{Caliper, NaturalExperiment, Unit};
use bb_dataset::record::UserRecord;
use bb_dataset::{Dataset, UpgradeObservation};
use bb_stats::binning::BinnedSeries as StatsBins;
use bb_stats::corr::pearson;
use bb_stats::hypothesis::{binomial_test, Tail};
use bb_stats::Ecdf;
use bb_trace::EventLog;
use bb_types::{CapacityBin, Country, DemandMetric, UpgradeTier};

/// Minimum users per capacity bin for the binned figures.
const MIN_BIN_USERS: usize = 5;

/// Minimum matched pairs for an experiment row to be reported. Kept in
/// lock-step with the causal layer's own significance guard so a row
/// can never be *reported* at a size where `significant()` would lie.
pub const MIN_PAIRS: usize = bb_causal::MIN_TRIALS as usize;

/// Build one usage-vs-capacity series over `records`, logging input n and
/// drop counts (missing outcome, thin bins) under `exhibit`'s id.
fn binned_usage<'a>(
    records: impl IntoIterator<Item = &'a UserRecord>,
    outcome: OutcomeSpec,
    label: &str,
    exhibit: &str,
    ledger: &mut EventLog,
) -> BinnedSeries {
    let mut bins: StatsBins<CapacityBin> = StatsBins::new();
    let mut n_input = 0u64;
    let mut dropped_no_outcome = 0u64;
    for r in records {
        n_input += 1;
        if let Some(value) = outcome.of(r) {
            bins.push(CapacityBin::of(r.capacity), value / 1e6); // Mbps
        } else {
            dropped_no_outcome += 1;
        }
    }
    let before_filter = bins.n_total();
    let bins = bins.filter_min_count(MIN_BIN_USERS);
    ledger
        .emit("exhibit")
        .str("id", exhibit)
        .str("series", label)
        .u64("n", n_input)
        .u64("dropped_no_outcome", dropped_no_outcome)
        .u64(
            "dropped_thin_bins",
            before_filter as u64 - bins.n_total() as u64,
        )
        .u64("min_bin_users", MIN_BIN_USERS as u64)
        .u64("n_used", bins.n_total() as u64);
    let points: Vec<BinnedPoint> = bins
        .mean_cis(0.95)
        .into_iter()
        .map(|(bin, ci)| BinnedPoint {
            x: bin.midpoint().mbps(),
            mean: ci.mean,
            ci_lo: ci.lo,
            ci_hi: ci.hi,
            n: ci.n,
        })
        .collect();
    // The paper's per-panel r: correlation between log capacity and log
    // mean usage across bins.
    let xs: Vec<f64> = points.iter().map(|p| p.x.max(1e-9).log10()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.mean.max(1e-9).log10()).collect();
    BinnedSeries {
        label: label.into(),
        r_log: pearson(&xs, &ys),
        points,
    }
}

fn usage_figure(id: &str, title: &str, series: Vec<BinnedSeries>) -> BinnedFigure {
    BinnedFigure {
        id: id.into(),
        title: title.into(),
        x_label: "Download capacity (Mbps)".into(),
        y_label: "Usage (Mbps)".into(),
        series,
    }
}

/// Figure 2: four panels of usage vs capacity over the global Dasu
/// population — (a) mean w/ BT, (b) p95 w/ BT, (c) mean w/o BT, (d) p95
/// w/o BT.
pub fn figure2(dataset: &Dataset, ledger: &mut EventLog) -> [BinnedFigure; 4] {
    let dasu: Vec<&UserRecord> = dataset.dasu().collect();
    let spec = [
        ("fig2a", "Mean w/ BT", OutcomeSpec::MEAN_WITH_BT),
        ("fig2b", "95th %ile w/ BT", OutcomeSpec::PEAK_WITH_BT),
        ("fig2c", "Mean no BT", OutcomeSpec::MEAN_NO_BT),
        ("fig2d", "95th %ile no BT", OutcomeSpec::PEAK_NO_BT),
    ];
    spec.map(|(id, title, outcome)| {
        usage_figure(
            id,
            title,
            vec![binned_usage(
                dasu.iter().copied(),
                outcome,
                "all users",
                id,
                ledger,
            )],
        )
    })
}

/// Figure 3: mean and peak usage vs capacity for FCC gateways and Dasu US
/// users (the latter when not using BitTorrent).
pub fn figure3(dataset: &Dataset, ledger: &mut EventLog) -> [BinnedFigure; 2] {
    let us = Country::new("US");
    let fcc: Vec<&UserRecord> = dataset.fcc().collect();
    let dasu_us: Vec<&UserRecord> = dataset.dasu().filter(|r| r.country == us).collect();
    let mut build = |id: &str, title: &str, fcc_outcome: OutcomeSpec, dasu_outcome: OutcomeSpec| {
        usage_figure(
            id,
            title,
            vec![
                binned_usage(fcc.iter().copied(), fcc_outcome, "FCC", id, ledger),
                binned_usage(dasu_us.iter().copied(), dasu_outcome, "Dasu US", id, ledger),
            ],
        )
    };
    [
        // Gateways cannot see inside flows, so the FCC series includes all
        // traffic; Dasu excludes BitTorrent intervals, as in the paper.
        build(
            "fig3a",
            "Mean",
            OutcomeSpec::MEAN_WITH_BT,
            OutcomeSpec::MEAN_NO_BT,
        ),
        build(
            "fig3b",
            "95th %ile",
            OutcomeSpec::PEAK_WITH_BT,
            OutcomeSpec::PEAK_NO_BT,
        ),
    ]
}

/// Outcome pair (before, after) for one mover under a metric/BT choice.
fn mover_outcomes(
    up: &UpgradeObservation,
    metric: DemandMetric,
    with_bt: bool,
) -> Option<(f64, f64)> {
    let (b, a) = if with_bt {
        (up.before.demand_with_bt?, up.after.demand_with_bt?)
    } else {
        (up.before.demand_no_bt?, up.after.demand_no_bt?)
    };
    Some((b.metric(metric).bps(), a.metric(metric).bps()))
}

/// Table 1: "percentage of the time that an individual user's average and
/// peak demand will increase when moving to a network with a higher
/// capacity" (no-BT demand, as in the paper).
pub fn table1(dataset: &Dataset, ledger: &mut EventLog) -> ExperimentTable {
    let mut rows = Vec::new();
    for (label, metric) in [
        ("Average usage", DemandMetric::Mean),
        ("Peak usage", DemandMetric::Peak),
    ] {
        let mut holds = 0u64;
        let mut trials = 0u64;
        let mut ties = 0u64;
        let mut dropped_no_outcome = 0u64;
        for up in &dataset.upgrades {
            if let Some((before, after)) = mover_outcomes(up, metric, false) {
                if after == before {
                    ties += 1;
                    continue;
                }
                trials += 1;
                if after > before {
                    holds += 1;
                }
            } else {
                dropped_no_outcome += 1;
            }
        }
        ledger
            .emit("exhibit")
            .str("id", "table1")
            .str("series", label)
            .u64("n", dataset.upgrades.len() as u64)
            .u64("dropped_no_outcome", dropped_no_outcome)
            .u64("ties", ties);
        if trials == 0 {
            continue;
        }
        let test = binomial_test(holds, trials, 0.5, Tail::Greater);
        // The same starvation guard the matched experiments get from
        // bb-causal: a handful of movers cannot carry a significance star.
        let starved = trials < MIN_PAIRS as u64;
        ledger
            .emit("sign_test")
            .str("exhibit", "table1")
            .str("experiment", label)
            .u64("n_pairs", trials + ties)
            .u64("ties", ties)
            .u64("n", trials)
            .u64("positives", holds)
            .f64("p_value", test.p_value)
            .str("direction", "treatment_higher")
            .bool("significant", !starved && test.significant())
            .bool("starved", starved)
            .bool("kept", !starved);
        if starved {
            continue;
        }
        rows.push(ExperimentRow {
            control: format!("{label} (slower network)"),
            treatment: format!("{label} (faster network)"),
            n_pairs: trials as usize,
            percent_holds: test.share_percent(),
            p_value: test.p_value,
            significant: test.significant(),
        });
    }
    ExperimentTable {
        id: "table1".into(),
        title: "Demand increase when an individual user moves to a higher-capacity network".into(),
        control_label: "Metric (control: slower network)".into(),
        treatment_label: "Treatment: faster network".into(),
        rows,
    }
}

/// Figure 4: CDFs of mean and peak usage for movers on their slow and fast
/// networks (no BitTorrent).
pub fn figure4(dataset: &Dataset, ledger: &mut EventLog) -> [CdfFigure; 2] {
    let mut build = |id: &str, title: &str, metric: DemandMetric| {
        let mut slow = Vec::new();
        let mut fast = Vec::new();
        for up in &dataset.upgrades {
            if let Some((b, a)) = mover_outcomes(up, metric, false) {
                slow.push(b / 1e6);
                fast.push(a / 1e6);
            }
        }
        ledger
            .emit("exhibit")
            .str("id", id)
            .u64("n", dataset.upgrades.len() as u64)
            .u64(
                "dropped_no_outcome",
                dataset.upgrades.len() as u64 - slow.len() as u64,
            )
            .u64("n_used", slow.len() as u64);
        let series = [("Slow network", slow), ("Fast network", fast)]
            .into_iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(label, v)| {
                let e = Ecdf::new(v);
                CdfSeries {
                    label: label.into(),
                    n: e.len(),
                    median: e.median(),
                    points: e.plot_points_downsampled(200),
                }
            })
            .collect();
        CdfFigure {
            id: id.into(),
            title: title.into(),
            x_label: "Usage (Mbps)".into(),
            log_x: true,
            series,
        }
    };
    [
        build("fig4a", "Mean", DemandMetric::Mean),
        build("fig4b", "95th %ile", DemandMetric::Peak),
    ]
}

/// Figure 5: average change in demand when switching to a faster service,
/// grouped by initial tier (x-axis) and target tier (bars). Four panels:
/// (a) mean w/ BT, (b) p95 w/ BT, (c) mean no BT, (d) p95 no BT.
pub fn figure5(dataset: &Dataset, ledger: &mut EventLog) -> [BarFigure; 4] {
    let spec = [
        ("fig5a", "Mean (w/ BT)", DemandMetric::Mean, true),
        ("fig5b", "95th %ile (w/ BT)", DemandMetric::Peak, true),
        ("fig5c", "Mean (no BT)", DemandMetric::Mean, false),
        ("fig5d", "95th %ile (no BT)", DemandMetric::Peak, false),
    ];
    spec.map(|(id, title, metric, with_bt)| {
        // (initial tier, target tier) -> deltas (Mbps).
        let mut cells: StatsBins<(UpgradeTier, UpgradeTier)> = StatsBins::new();
        let mut dropped_no_tier = 0u64;
        let mut dropped_no_outcome = 0u64;
        for up in &dataset.upgrades {
            let (Some(from), Some(to)) = (
                UpgradeTier::of(up.before.capacity),
                UpgradeTier::of(up.after.capacity),
            ) else {
                dropped_no_tier += 1;
                continue;
            };
            if let Some((b, a)) = mover_outcomes(up, metric, with_bt) {
                cells.push((from, to), (a - b) / 1e6);
            } else {
                dropped_no_outcome += 1;
            }
        }
        ledger
            .emit("exhibit")
            .str("id", id)
            .u64("n", dataset.upgrades.len() as u64)
            .u64("dropped_no_tier", dropped_no_tier)
            .u64("dropped_no_outcome", dropped_no_outcome)
            .u64("n_used", cells.n_total() as u64);
        let cis = cells.mean_cis(0.95);
        let mut groups: Vec<BarGroup> = UpgradeTier::ALL
            .iter()
            .map(|from| BarGroup {
                label: from.label(),
                bars: Vec::new(),
            })
            .collect();
        for ((from, to), ci) in cis {
            groups[from.0 as usize].bars.push(Bar {
                label: format!("{} to {} Mbps", to.lower_mbps(), to.upper_mbps()),
                value: ci.mean,
                ci: Some((ci.lo, ci.hi)),
                n: ci.n,
            });
        }
        groups.retain(|g| !g.bars.is_empty());
        BarFigure {
            id: id.into(),
            title: format!("Change in demand when switching to a faster connection — {title}"),
            y_label: "Average change in demand (Mbps)".into(),
            groups,
        }
    })
}

/// Table 2: matched natural experiments between adjacent capacity bins, for
/// the Dasu (global) and FCC (US) populations.
///
/// The Dasu outcome excludes BitTorrent intervals; the FCC gateway counters
/// cannot distinguish BitTorrent, so its outcome includes all traffic.
pub fn table2(dataset: &Dataset, ledger: &mut EventLog) -> (ExperimentTable, ExperimentTable) {
    let dasu_units = |bin: CapacityBin| -> Vec<Unit> {
        to_units(
            dataset
                .dasu()
                .filter(|r| CapacityBin::of(r.capacity) == bin),
            ConfounderSet::ForCapacityExperiment,
            OutcomeSpec::PEAK_NO_BT,
        )
    };
    let fcc_units = |bin: CapacityBin| -> Vec<Unit> {
        to_units(
            dataset.fcc().filter(|r| CapacityBin::of(r.capacity) == bin),
            ConfounderSet::ForCapacityExperiment,
            OutcomeSpec::PEAK_WITH_BT,
        )
    };
    let dasu = adjacent_bin_table(
        "table2_dasu",
        "Dasu data: matched users, adjacent capacity bins",
        1..=10,
        dasu_units,
        ledger,
    );
    let fcc = adjacent_bin_table(
        "table2_fcc",
        "FCC data: matched users, adjacent capacity bins",
        3..=10,
        fcc_units,
        ledger,
    );
    (dasu, fcc)
}

/// Shared engine for Table 2: one experiment per adjacent bin pair, each
/// leaving its match audit and sign-test provenance in the ledger.
fn adjacent_bin_table(
    id: &str,
    title: &str,
    bins: std::ops::RangeInclusive<u8>,
    units_for: impl Fn(CapacityBin) -> Vec<Unit>,
    ledger: &mut EventLog,
) -> ExperimentTable {
    let set = ConfounderSet::ForCapacityExperiment;
    let calipers: Vec<Caliper> = set.calipers();
    let names = set.covariate_names();
    let mut rows = Vec::new();
    let mut dropped_empty_bins = 0u64;
    let mut dropped_no_experiment = 0u64;
    let mut dropped_min_pairs = 0u64;
    for k in bins {
        let control_bin = CapacityBin(k);
        let treatment_bin = control_bin.next();
        let control = units_for(control_bin);
        let treatment = units_for(treatment_bin);
        if control.is_empty() || treatment.is_empty() {
            dropped_empty_bins += 1;
            continue;
        }
        let exp = NaturalExperiment::new(
            format!("capacity {control_bin} vs {treatment_bin}"),
            calipers.clone(),
        );
        let (outcome, audit) = exp.run_audited(&control, &treatment);
        let kept = matches!(&outcome, Some(o) if o.test.trials >= MIN_PAIRS as u64);
        exp.log_provenance(ledger, id, &names, &audit, outcome.as_ref(), kept);
        let Some(outcome) = outcome else {
            dropped_no_experiment += 1;
            continue;
        };
        if !kept {
            dropped_min_pairs += 1;
            continue;
        }
        rows.push(ExperimentRow {
            control: control_bin.to_string(),
            treatment: treatment_bin.to_string(),
            n_pairs: outcome.test.trials as usize,
            percent_holds: outcome.percent_holds(),
            p_value: outcome.p_value(),
            significant: outcome.significant(),
        });
    }
    ledger
        .emit("exhibit")
        .str("id", id)
        .u64("rows", rows.len() as u64)
        .u64("dropped_empty_bins", dropped_empty_bins)
        .u64("dropped_no_experiment", dropped_no_experiment)
        .u64("dropped_min_pairs", dropped_min_pairs)
        .u64("min_pairs", MIN_PAIRS as u64);
    ExperimentTable {
        id: id.into(),
        title: title.into(),
        control_label: "Control group (in Mbps)".into(),
        treatment_label: "Treatment group (in Mbps)".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};
    use std::sync::OnceLock;

    /// One shared dataset for the whole module: balanced country weights so
    /// every capacity bin is populated, 2-day windows, generated once.
    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            let mut cfg = WorldConfig::small(42);
            cfg.user_scale = 10.0;
            cfg.days = 2;
            cfg.fcc_users = 150;
            let mut world = World::with_countries(cfg, &["US", "JP", "DE", "GB", "BR", "IN"]);
            for p in &mut world.profiles {
                p.user_weight = match p.country.as_str() {
                    "US" => 10.0,
                    "JP" => 3.0,
                    _ => 5.0,
                };
            }
            world.generate()
        })
    }

    #[test]
    fn figure2_usage_grows_with_capacity() {
        let ds = dataset();
        let figs = figure2(ds, &mut bb_trace::EventLog::new());
        for fig in &figs {
            let pts = &fig.series[0].points;
            assert!(pts.len() >= 4, "{}: {} bins", fig.id, pts.len());
            // Strong positive log-log correlation, as in the paper
            // (r >= 0.87 there; we ask for clearly-positive).
            let r = fig.series[0].r_log.expect("r defined");
            assert!(r > 0.6, "{}: r = {r}", fig.id);
            // Demand at the top bin exceeds demand at the bottom bin.
            assert!(
                pts.last().unwrap().mean > pts.first().unwrap().mean,
                "{}",
                fig.id
            );
        }
    }

    #[test]
    fn figure2_shows_diminishing_returns() {
        // Usage grows far more slowly than capacity: the mean-usage ratio
        // between top and bottom bins is much smaller than the capacity
        // ratio between those bins.
        let ds = dataset();
        let fig = &figure2(ds, &mut bb_trace::EventLog::new())[3]; // p95 no BT
        let pts = &fig.series[0].points;
        let cap_ratio = pts.last().unwrap().x / pts.first().unwrap().x;
        let use_ratio = pts.last().unwrap().mean / pts.first().unwrap().mean;
        assert!(
            use_ratio < cap_ratio * 0.5,
            "usage ratio {use_ratio} vs capacity ratio {cap_ratio}"
        );
    }

    #[test]
    fn figure3_has_both_series() {
        let ds = dataset();
        let [mean_fig, peak_fig] = figure3(ds, &mut bb_trace::EventLog::new());
        for fig in [&mean_fig, &peak_fig] {
            assert_eq!(fig.series.len(), 2);
            assert_eq!(fig.series[0].label, "FCC");
            assert_eq!(fig.series[1].label, "Dasu US");
            assert!(fig.series[0].points.len() >= 3);
            assert!(fig.series[1].points.len() >= 3);
        }
    }

    #[test]
    fn table1_movers_increase_demand() {
        let ds = dataset();
        let t = table1(ds, &mut bb_trace::EventLog::new());
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert!(row.n_pairs > 30, "{} pairs", row.n_pairs);
            assert!(
                row.percent_holds > 55.0,
                "{}: {}%",
                row.control,
                row.percent_holds
            );
            assert!(row.significant, "{}: p = {}", row.control, row.p_value);
        }
    }

    #[test]
    fn figure4_fast_network_cdf_sits_right_of_slow() {
        let ds = dataset();
        let [mean_fig, peak_fig] = figure4(ds, &mut bb_trace::EventLog::new());
        for fig in [&mean_fig, &peak_fig] {
            assert_eq!(fig.series.len(), 2);
            let slow = &fig.series[0];
            let fast = &fig.series[1];
            assert!(
                fast.median > slow.median,
                "{}: fast median {} vs slow {}",
                fig.id,
                fast.median,
                slow.median
            );
        }
    }

    #[test]
    fn figure5_panels_have_groups() {
        let ds = dataset();
        let figs = figure5(ds, &mut bb_trace::EventLog::new());
        for fig in &figs {
            assert!(!fig.groups.is_empty(), "{}", fig.id);
            let n_bars: usize = fig.groups.iter().map(|g| g.bars.len()).sum();
            assert!(n_bars >= 2, "{}: {} bars", fig.id, n_bars);
        }
        // Pooled across tiers, upgrades raise demand (the Table 1 effect
        // viewed through the Fig. 5 lens). Individual low-tier cells are
        // small and can sit at zero when quality-suppressed markets (e.g.
        // India) dominate them.
        let no_bt_peak = &figs[3];
        let mut weighted = 0.0;
        let mut n = 0usize;
        for g in &no_bt_peak.groups {
            for b in &g.bars {
                weighted += b.value * b.n as f64;
                n += b.n;
            }
        }
        assert!(n > 50, "{n} movers");
        assert!(
            weighted / n as f64 > 0.0,
            "upgrades should raise peak demand overall: {}",
            weighted / n as f64
        );
    }

    #[test]
    fn table2_pooled_effect_is_positive() {
        let ds = dataset();
        let (dasu, _fcc) = table2(ds, &mut bb_trace::EventLog::new());
        assert!(dasu.rows.len() >= 3, "{} rows", dasu.rows.len());
        // This moderate world cannot populate every bin the way the
        // paper-scale run does (see EXPERIMENTS.md); assert the pooled
        // direction, which is the claim that carries §3.2.
        let weighted: f64 = dasu
            .rows
            .iter()
            .map(|r| r.percent_holds * r.n_pairs as f64)
            .sum::<f64>()
            / dasu.rows.iter().map(|r| r.n_pairs as f64).sum::<f64>();
        assert!(
            weighted > 53.0,
            "pooled %H = {weighted} (rows: {:?})",
            dasu.rows
                .iter()
                .map(|r| (r.control.clone(), r.percent_holds, r.n_pairs))
                .collect::<Vec<_>>()
        );
    }
}
