//! Streaming exhibits: the scale path of the pipeline.
//!
//! [`crate::full::StudyReport`] materialises the whole panel and is the
//! reference implementation of every exhibit. At millions of users that
//! costs O(n) memory, so this module provides [`StreamStudy`] — a
//! [`Mergeable`] accumulator built from the `bb-engine` sketches that
//! absorbs one [`UserRecord`] at a time and renders the headline exhibits
//! (Fig. 1, Fig. 2, Fig. 7) in O(sketch) memory. Because every sketch
//! merges with exact integer arithmetic, the accumulated study — and the
//! JSON exhibits rendered from it — is **bit-identical for any shard and
//! thread count** of the generating [`bb_dataset::World`].

use crate::confounders::OutcomeSpec;
use crate::exhibit::{BinnedFigure, BinnedPoint, BinnedSeries, CdfFigure, CdfSeries};
use crate::sec2::PopulationStats;
use crate::sec5::CASE_STUDY;
use bb_dataset::record::VantageKind;
use bb_dataset::{UpgradeObservation, UserRecord};
use bb_engine::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use bb_engine::{BottomK, EcdfSketch, ExactMoments, Mergeable};
use bb_stats::corr::pearson;
use bb_types::{CapacityBin, Country};
use std::collections::BTreeMap;

/// Relative x-axis accuracy of the streamed CDFs (0.5%: invisible at plot
/// resolution, a few hundred buckets per sketch).
pub const CDF_ACCURACY: f64 = 0.005;

/// Size of the deterministic spot-check sample of users.
const SAMPLE_K: usize = 64;

/// Seed of the spot-check sample (fixed: merging requires equal seeds).
const SAMPLE_SEED: u64 = 20141105;

/// Minimum users per capacity bin, as in `sec3`.
const MIN_BIN_USERS: u64 = 5;

/// Per-country streamed state (the Fig. 7 inputs).
#[derive(Clone, Debug)]
pub struct CountrySketch {
    /// Measured download capacities, Mbps.
    pub capacity: EcdfSketch,
    /// Peak link utilisation (95th-percentile demand over capacity).
    pub utilization: EcdfSketch,
}

impl CountrySketch {
    fn new() -> Self {
        CountrySketch {
            capacity: EcdfSketch::with_accuracy(CDF_ACCURACY),
            utilization: EcdfSketch::with_accuracy(CDF_ACCURACY),
        }
    }
}

impl Mergeable for CountrySketch {
    fn merge(&mut self, other: Self) {
        self.capacity.merge(other.capacity);
        self.utilization.merge(other.utilization);
    }
}

/// The four Fig. 2 outcome panels, in exhibit order.
const FIG2_PANELS: [(&str, &str, OutcomeSpec); 4] = [
    ("fig2a", "Mean w/ BT", OutcomeSpec::MEAN_WITH_BT),
    ("fig2b", "95th %ile w/ BT", OutcomeSpec::PEAK_WITH_BT),
    ("fig2c", "Mean no BT", OutcomeSpec::MEAN_NO_BT),
    ("fig2d", "95th %ile no BT", OutcomeSpec::PEAK_NO_BT),
];

/// A mergeable, bounded-memory study over a stream of user records.
#[derive(Clone, Debug)]
pub struct StreamStudy {
    /// Users absorbed (all vantages).
    pub users: u64,
    /// Dasu end-host users.
    pub dasu_users: u64,
    /// FCC gateway users.
    pub fcc_users: u64,
    /// Users observed across a service upgrade.
    pub movers: u64,
    /// Fig. 1a input: Dasu download capacities, Mbps.
    pub capacity: EcdfSketch,
    /// Fig. 1b input: Dasu latencies, ms.
    pub latency: EcdfSketch,
    /// Fig. 1c input: Dasu loss rates, percent.
    pub loss: EcdfSketch,
    /// Fig. 2 inputs: per-capacity-bin demand moments (Mbps), one map per
    /// panel of the module-private `FIG2_PANELS` table.
    pub fig2_bins: [BTreeMap<CapacityBin, ExactMoments>; 4],
    /// Fig. 7 inputs: per-country capacity and utilisation sketches.
    pub by_country: BTreeMap<Country, CountrySketch>,
    /// Deterministic spot-check sample of `(user id, capacity Mbps)`.
    pub sample: BottomK,
}

impl Default for StreamStudy {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamStudy {
    /// An empty study.
    pub fn new() -> Self {
        StreamStudy {
            users: 0,
            dasu_users: 0,
            fcc_users: 0,
            movers: 0,
            capacity: EcdfSketch::with_accuracy(CDF_ACCURACY),
            latency: EcdfSketch::with_accuracy(CDF_ACCURACY),
            loss: EcdfSketch::with_accuracy(CDF_ACCURACY),
            fig2_bins: [
                BTreeMap::new(),
                BTreeMap::new(),
                BTreeMap::new(),
                BTreeMap::new(),
            ],
            by_country: BTreeMap::new(),
            sample: BottomK::new(SAMPLE_SEED, SAMPLE_K),
        }
    }

    /// Absorb one user.
    pub fn absorb(&mut self, record: &UserRecord, upgrade: Option<&UpgradeObservation>) {
        self.users += 1;
        self.movers += u64::from(upgrade.is_some());
        match record.vantage {
            VantageKind::Fcc => {
                self.fcc_users += 1;
                return; // Fig. 1/2/7 are Dasu-population exhibits.
            }
            VantageKind::Dasu => self.dasu_users += 1,
        }
        let cap_mbps = record.capacity.mbps();
        self.capacity.push(cap_mbps);
        self.latency.push(record.latency.ms());
        self.loss.push(record.loss.percent());
        let bin = CapacityBin::of(record.capacity);
        for (panel, (_, _, outcome)) in self.fig2_bins.iter_mut().zip(FIG2_PANELS) {
            if let Some(bps) = outcome.of(record) {
                panel
                    .entry(bin)
                    .or_insert_with(ExactMoments::new)
                    .push(bps / 1e6);
            }
        }
        let country = self
            .by_country
            .entry(record.country)
            .or_insert_with(CountrySketch::new);
        country.capacity.push(cap_mbps);
        if let Some(util) = record.peak_utilization() {
            country.utilization.push(util);
        }
        self.sample.offer(record.user.0, cap_mbps);
    }

    /// Total strictly-negative observations swallowed by the study's CDF
    /// sketches (capacity/latency/loss plus every per-country sketch).
    /// Physical quantities can never be negative, so anything nonzero
    /// here is an upstream sign bug; the `reproduce` CLI surfaces it as
    /// the `study.sketch_negatives` metric instead of letting it vanish
    /// into the `q=0` mass.
    pub fn sketch_negatives(&self) -> u64 {
        self.capacity.negatives()
            + self.latency.negatives()
            + self.loss.negatives()
            + self
                .by_country
                .values()
                .map(|c| c.capacity.negatives() + c.utilization.negatives())
                .sum::<u64>()
    }

    /// The §2.2 prose statistics, when any Dasu user has been absorbed.
    pub fn population_stats(&self) -> Option<PopulationStats> {
        if self.capacity.count() == 0 {
            return None;
        }
        Some(PopulationStats {
            median_capacity_mbps: self.capacity.median()?,
            capacity_iqr_mbps: self.capacity.quantile(0.75)? - self.capacity.quantile(0.25)?,
            frac_below_1mbps: self.capacity.fraction_below(1.0),
            frac_above_30mbps: 1.0 - self.capacity.fraction_below(30.0),
            median_latency_ms: self.latency.median()?,
            frac_latency_above_500ms: 1.0 - self.latency.fraction_below(500.0),
            frac_loss_above_1pct: 1.0 - self.loss.fraction_below(1.0),
        })
    }

    /// Fig. 1a–c from the streamed sketches.
    pub fn figure1(&self) -> [CdfFigure; 3] {
        let fig = |id: &str, title: &str, x: &str, sketch: &EcdfSketch| CdfFigure {
            id: id.into(),
            title: title.into(),
            x_label: x.into(),
            log_x: true,
            series: vec![cdf_series("all users", sketch)],
        };
        [
            fig(
                "fig1a",
                "Download capacity",
                "Capacity (Mbps)",
                &self.capacity,
            ),
            fig("fig1b", "Latency", "Latency (ms)", &self.latency),
            fig("fig1c", "Packet loss", "Packet loss rate (%)", &self.loss),
        ]
    }

    /// Fig. 2a–d from the streamed per-bin moments.
    pub fn figure2(&self) -> [BinnedFigure; 4] {
        let mut figs = Vec::with_capacity(4);
        for (panel, (id, title, _)) in self.fig2_bins.iter().zip(FIG2_PANELS) {
            let points: Vec<BinnedPoint> = panel
                .iter()
                .filter(|(_, m)| m.count() >= MIN_BIN_USERS)
                .map(|(bin, m)| {
                    let half = 1.96 * m.std_error();
                    BinnedPoint {
                        x: bin.midpoint().mbps(),
                        mean: m.mean(),
                        ci_lo: m.mean() - half,
                        ci_hi: m.mean() + half,
                        n: m.count() as usize,
                    }
                })
                .collect();
            let xs: Vec<f64> = points.iter().map(|p| p.x.max(1e-9).log10()).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.mean.max(1e-9).log10()).collect();
            figs.push(BinnedFigure {
                id: id.into(),
                title: title.into(),
                x_label: "Download capacity (Mbps)".into(),
                y_label: "Usage (Mbps)".into(),
                series: vec![BinnedSeries {
                    label: "all users".into(),
                    r_log: pearson(&xs, &ys),
                    points,
                }],
            });
        }
        figs.try_into().expect("four panels")
    }

    /// Fig. 7a–b (case-study capacity and utilisation CDFs) from the
    /// streamed per-country sketches.
    pub fn figure7(&self) -> [CdfFigure; 2] {
        let mut cap_series = Vec::new();
        let mut util_series = Vec::new();
        for code in CASE_STUDY {
            let Some(sketch) = self.by_country.get(&Country::new(code)) else {
                continue;
            };
            if sketch.capacity.count() == 0 || sketch.utilization.count() == 0 {
                continue;
            }
            cap_series.push(cdf_series(code, &sketch.capacity));
            util_series.push(cdf_series(code, &sketch.utilization));
        }
        [
            CdfFigure {
                id: "fig7a".into(),
                title: "Download capacities (case-study markets)".into(),
                x_label: "Capacity (Mbps)".into(),
                log_x: true,
                series: cap_series,
            },
            CdfFigure {
                id: "fig7b".into(),
                title: "95th %ile link utilization (case-study markets)".into(),
                x_label: "95th %ile link utilization (fraction)".into(),
                log_x: false,
                series: util_series,
            },
        ]
    }
}

/// Restore one CDF sketch and reject it unless its accuracy matches this
/// build's [`CDF_ACCURACY`]. Sketch `merge` *asserts* on an α mismatch, so
/// a checkpoint written under a different accuracy (an older build, or a
/// doctored file with consistent checksums) must fail here as a
/// [`SnapshotError`] — counted as a rejection and recomputed — instead of
/// panicking a worker mid-merge. Equality uses the same ε tolerance the
/// merge assert does.
fn read_cdf_sketch(r: &mut SnapshotReader<'_>, field: &str) -> Result<EcdfSketch, SnapshotError> {
    let sketch = EcdfSketch::read_snapshot(r)?;
    let alpha = sketch.inner().accuracy();
    if (alpha - CDF_ACCURACY).abs() < f64::EPSILON {
        Ok(sketch)
    } else {
        Err(r.invalid(format!(
            "{field} sketch accuracy {alpha} does not match this build's {CDF_ACCURACY}"
        )))
    }
}

impl Snapshot for CountrySketch {
    const KIND: &'static str = "CountrySketch";

    fn write_body(&self, w: &mut SnapshotWriter) {
        self.capacity.write_snapshot(w);
        self.utilization.write_snapshot(w);
    }

    fn read_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CountrySketch {
            capacity: read_cdf_sketch(r, "country capacity")?,
            utilization: read_cdf_sketch(r, "country utilization")?,
        })
    }
}

impl Snapshot for StreamStudy {
    const KIND: &'static str = "StreamStudy";

    fn write_body(&self, w: &mut SnapshotWriter) {
        w.u64("users", self.users);
        w.u64("dasu_users", self.dasu_users);
        w.u64("fcc_users", self.fcc_users);
        w.u64("movers", self.movers);
        self.capacity.write_snapshot(w);
        self.latency.write_snapshot(w);
        self.loss.write_snapshot(w);
        for panel in &self.fig2_bins {
            w.u64("bins", panel.len() as u64);
            for (bin, moments) in panel {
                w.u64("-", u64::from(bin.0));
                moments.write_snapshot(w);
            }
        }
        w.u64("countries", self.by_country.len() as u64);
        for (country, sketch) in &self.by_country {
            w.line("-", country.as_str());
            sketch.write_snapshot(w);
        }
        self.sample.write_snapshot(w);
    }

    fn read_body(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let users = r.take_u64("users")?;
        let dasu_users = r.take_u64("dasu_users")?;
        let fcc_users = r.take_u64("fcc_users")?;
        let movers = r.take_u64("movers")?;
        let capacity = read_cdf_sketch(r, "capacity")?;
        let latency = read_cdf_sketch(r, "latency")?;
        let loss = read_cdf_sketch(r, "loss")?;
        let mut fig2_bins: [BTreeMap<CapacityBin, ExactMoments>; 4] = Default::default();
        for panel in &mut fig2_bins {
            let len = r.take_u64("bins")?;
            for _ in 0..len {
                let bin = r.take_u64("-")?;
                let bin = u8::try_from(bin)
                    .map(CapacityBin)
                    .map_err(|_| r.invalid(format!("capacity bin {bin} out of range")))?;
                let moments = ExactMoments::read_snapshot(r)?;
                if panel.insert(bin, moments).is_some() {
                    return Err(r.invalid(format!("duplicate capacity bin {}", bin.0)));
                }
            }
        }
        let n_countries = r.take_u64("countries")?;
        let mut by_country = BTreeMap::new();
        for _ in 0..n_countries {
            let code = r.take("-")?;
            let country = code
                .trim()
                .parse::<Country>()
                .map_err(|_| r.invalid(format!("invalid country code {code:?}")))?;
            let sketch = CountrySketch::read_snapshot(r)?;
            if by_country.insert(country, sketch).is_some() {
                return Err(r.invalid(format!("duplicate country {}", country.as_str())));
            }
        }
        let sample = BottomK::read_snapshot(r)?;
        Ok(StreamStudy {
            users,
            dasu_users,
            fcc_users,
            movers,
            capacity,
            latency,
            loss,
            fig2_bins,
            by_country,
            sample,
        })
    }
}

impl Mergeable for StreamStudy {
    fn merge(&mut self, other: Self) {
        self.users += other.users;
        self.dasu_users += other.dasu_users;
        self.fcc_users += other.fcc_users;
        self.movers += other.movers;
        self.capacity.merge(other.capacity);
        self.latency.merge(other.latency);
        self.loss.merge(other.loss);
        for (mine, theirs) in self.fig2_bins.iter_mut().zip(other.fig2_bins) {
            Mergeable::merge(mine, theirs);
        }
        Mergeable::merge(&mut self.by_country, other.by_country);
        self.sample.merge(other.sample);
    }
}

/// Render one sketch as a downsampled [`CdfSeries`] (≤ ~200 points, like
/// `Ecdf::plot_points_downsampled`).
fn cdf_series(label: &str, sketch: &EcdfSketch) -> CdfSeries {
    let points = sketch.points();
    let stride = points.len().div_ceil(200).max(1);
    let last = points.len().saturating_sub(1);
    let points: Vec<(f64, f64)> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i == last)
        .map(|(_, &p)| p)
        .collect();
    CdfSeries {
        label: label.into(),
        n: sketch.count() as usize,
        median: sketch.median().unwrap_or(0.0),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};
    use bb_engine::ShardPlan;

    fn small_world() -> World {
        let mut cfg = WorldConfig::small(7);
        cfg.user_scale = 1.0;
        cfg.fcc_users = 30;
        cfg.days = 2;
        World::with_countries(cfg, &["US", "JP", "BW", "SA", "IN"])
    }

    #[test]
    fn streamed_study_is_shard_invariant() {
        let world = small_world();
        let (_, serial) = world.fold_users(ShardPlan::serial(), StreamStudy::new, |s, r, u| {
            s.absorb(r, u)
        });
        let (_, sharded) = world.fold_users(ShardPlan::new(8, 4), StreamStudy::new, |s, r, u| {
            s.absorb(r, u)
        });
        assert_eq!(serial.users, sharded.users);
        assert_eq!(serial.movers, sharded.movers);
        assert_eq!(serial.figure1(), sharded.figure1());
        assert_eq!(serial.figure2(), sharded.figure2());
        assert_eq!(serial.figure7(), sharded.figure7());
        assert_eq!(
            serial.sample.items().collect::<Vec<_>>(),
            sharded.sample.items().collect::<Vec<_>>()
        );
        // Physical quantities are non-negative, so a healthy pipeline
        // reports zero swallowed negatives.
        assert_eq!(serial.sketch_negatives(), 0);
    }

    /// The order statistic at the sketch's rank convention.
    fn exact_median(mut values: Vec<f64>) -> f64 {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        values[(0.5 * (values.len() - 1) as f64).floor() as usize]
    }

    #[test]
    fn streamed_stats_track_the_materialised_study() {
        let world = small_world();
        let dataset = world.generate();
        let (_, _, _, exact) = crate::sec2::figure1(&dataset, &mut bb_trace::EventLog::new());
        let (_, study) = world.fold_users(ShardPlan::serial(), StreamStudy::new, |s, r, u| {
            s.absorb(r, u)
        });
        let stats = study.population_stats().expect("non-empty study");
        assert_eq!(study.dasu_users as usize, dataset.dasu().count());
        assert_eq!(study.fcc_users as usize, dataset.fcc().count());
        // Medians: compare against the exact order statistic at the same
        // rank convention the sketch uses — that is the α guarantee.
        let cap_median = exact_median(dataset.dasu().map(|r| r.capacity.mbps()).collect());
        assert!(
            (stats.median_capacity_mbps - cap_median).abs() <= CDF_ACCURACY * cap_median * 1.000001,
            "sketch median {} vs exact {}",
            stats.median_capacity_mbps,
            cap_median
        );
        let lat_median = exact_median(dataset.dasu().map(|r| r.latency.ms()).collect());
        assert!(
            (stats.median_latency_ms - lat_median).abs() <= CDF_ACCURACY * lat_median * 1.000001,
            "sketch latency median {} vs exact {}",
            stats.median_latency_ms,
            lat_median
        );
        assert!((stats.frac_below_1mbps - exact.frac_below_1mbps).abs() < 0.02);
        assert!((stats.frac_loss_above_1pct - exact.frac_loss_above_1pct).abs() < 0.02);
    }

    #[test]
    fn foreign_accuracy_snapshot_is_a_read_error_not_a_merge_panic() {
        let world = small_world();
        let (_, study) = world.fold_users(ShardPlan::serial(), StreamStudy::new, |s, r, u| {
            s.absorb(r, u)
        });
        let mut w = SnapshotWriter::new();
        study.write_snapshot(&mut w);
        let text = w.finish();

        // Unmodified snapshot round-trips.
        let mut r = SnapshotReader::new(&text);
        let thawed = StreamStudy::read_snapshot(&mut r).expect("clean snapshot restores");
        assert_eq!(thawed.users, study.users);

        // Doctor every sketch α to a *valid but different* accuracy — the
        // shape that sails through the α ∈ (0,1) sanity check and then
        // kills a worker in `merge`'s α assert if restore accepts it.
        let ours = format!("alpha {:016x}", CDF_ACCURACY.to_bits());
        let foreign = format!("alpha {:016x}", 0.01f64.to_bits());
        let doctored = text.replace(&ours, &foreign);
        assert_ne!(doctored, text, "snapshot must contain the α field");
        let mut r = SnapshotReader::new(&doctored);
        let err = StreamStudy::read_snapshot(&mut r)
            .expect_err("foreign-accuracy sketch must be rejected at restore");
        assert!(err.message.contains("does not match this build's"), "{err}");

        // Same rejection when the mismatch is buried in a per-country
        // sketch rather than a top-level one.
        let countries = text.find("countries ").expect("countries section");
        let (head, tail) = text.split_at(countries);
        let one_country = format!("{head}{}", tail.replacen(&ours, &foreign, 1));
        assert_ne!(one_country, text, "study must observe at least one country");
        let mut r = SnapshotReader::new(&one_country);
        StreamStudy::read_snapshot(&mut r)
            .expect_err("per-country foreign-accuracy sketch must be rejected");
    }

    #[test]
    fn streamed_fig2_matches_the_materialised_bins() {
        let world = small_world();
        let dataset = world.generate();
        let exact = crate::sec3::figure2(&dataset, &mut bb_trace::EventLog::new());
        let (_, study) = world.fold_users(ShardPlan::serial(), StreamStudy::new, |s, r, u| {
            s.absorb(r, u)
        });
        let streamed = study.figure2();
        for (e, s) in exact.iter().zip(&streamed) {
            let ep = &e.series[0].points;
            let sp = &s.series[0].points;
            assert_eq!(ep.len(), sp.len(), "{}", e.id);
            for (a, b) in ep.iter().zip(sp) {
                assert_eq!(a.n, b.n);
                assert!((a.mean - b.mean).abs() < 1e-6, "{} vs {}", a.mean, b.mean);
            }
        }
    }
}
