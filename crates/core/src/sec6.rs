//! §6 — Cost of increasing capacity.
//!
//! * [`figure10`] — CDF across countries of the monthly cost of +1 Mbps;
//! * [`table5`] — regional shares of countries above $1/$5/$10 per Mbps
//!   (delegated to `bb-market`);
//! * [`census`] — the price~capacity correlation census;
//! * [`table6`] — the matched upgrade-cost experiments (average demand,
//!   with and without BitTorrent).

use crate::confounders::{to_units, ConfounderSet, OutcomeSpec};
use crate::exhibit::{CdfFigure, CdfSeries, ExperimentRow, ExperimentTable};
use bb_causal::NaturalExperiment;
use bb_dataset::Dataset;
use bb_market::survey::{CorrelationCensus, RegionCostRow};
use bb_stats::Ecdf;
use bb_trace::EventLog;
use bb_types::CostClass;

/// Figure 10: CDF of the monthly cost (USD PPP) of +1 Mbps across the
/// surveyed markets (markets failing the r > 0.4 bar are excluded, as in
/// the paper). Also returns the per-country costs for annotation.
pub fn figure10(dataset: &Dataset, ledger: &mut EventLog) -> (CdfFigure, Vec<(String, f64)>) {
    let costs = dataset.survey.upgrade_costs();
    let labelled: Vec<(String, f64)> = costs
        .iter()
        .map(|(c, m)| (c.to_string(), m.usd()))
        .collect();
    assert!(
        !labelled.is_empty(),
        "figure 10 needs at least one market with a usable upgrade cost"
    );
    ledger
        .emit("exhibit")
        .str("id", "fig10")
        .u64("n_markets", dataset.survey.len() as u64)
        .u64(
            "dropped_weak_correlation",
            dataset.survey.len() as u64 - labelled.len() as u64,
        )
        .u64("n_used", labelled.len() as u64);
    let e = Ecdf::new(labelled.iter().map(|(_, v)| *v));
    let fig = CdfFigure {
        id: "fig10".into(),
        title: "Monthly cost to increase capacity by 1 Mbps across markets".into(),
        x_label: "Monthly cost of +1 Mbps (USD PPP)".into(),
        log_x: true,
        series: vec![CdfSeries {
            label: "countries".into(),
            n: e.len(),
            median: e.median(),
            points: e.plot_points_downsampled(150),
        }],
    };
    (fig, labelled)
}

/// Table 5 rows, straight from the survey.
pub fn table5(dataset: &Dataset) -> Vec<RegionCostRow> {
    dataset.survey.table5()
}

/// The §6 correlation census ("66% of markets r > 0.8; 81% r > 0.4").
pub fn census(dataset: &Dataset) -> CorrelationCensus {
    dataset.survey.correlation_census()
}

/// Table 6: matched experiments between upgrade-cost classes, on average
/// demand (a) including and (b) excluding BitTorrent.
pub fn table6(dataset: &Dataset, ledger: &mut EventLog) -> [ExperimentTable; 2] {
    [
        cost_table(
            dataset,
            OutcomeSpec::MEAN_WITH_BT,
            "table6a",
            "w/ BitTorrent",
            ledger,
        ),
        cost_table(
            dataset,
            OutcomeSpec::MEAN_NO_BT,
            "table6b",
            "w/o BitTorrent",
            ledger,
        ),
    ]
}

fn cost_table(
    dataset: &Dataset,
    outcome: OutcomeSpec,
    id: &str,
    suffix: &str,
    ledger: &mut EventLog,
) -> ExperimentTable {
    let set = ConfounderSet::ForUpgradeCostExperiment;
    let calipers = set.calipers();
    let names = set.covariate_names();
    let units_for = |class: CostClass| {
        to_units(
            dataset.dasu().filter(|r| {
                r.upgrade_cost
                    .map(|u| CostClass::of(u) == class)
                    .unwrap_or(false)
            }),
            ConfounderSet::ForUpgradeCostExperiment,
            outcome,
        )
    };
    let mut rows = Vec::new();
    let mut dropped_empty_bins = 0u64;
    let mut dropped_no_experiment = 0u64;
    let mut dropped_min_pairs = 0u64;
    for (control_class, treatment_class) in [
        (CostClass::UpTo50c, CostClass::From50cTo1),
        (CostClass::From50cTo1, CostClass::Above1),
    ] {
        let control = units_for(control_class);
        let treatment = units_for(treatment_class);
        if control.is_empty() || treatment.is_empty() {
            dropped_empty_bins += 1;
            continue;
        }
        let exp = NaturalExperiment::new(
            format!("upgrade cost {control_class} vs {treatment_class}"),
            calipers.clone(),
        );
        let (out, audit) = exp.run_audited(&control, &treatment);
        let kept = matches!(&out, Some(o) if o.test.trials >= crate::sec3::MIN_PAIRS as u64);
        exp.log_provenance(ledger, id, &names, &audit, out.as_ref(), kept);
        let Some(out) = out else {
            dropped_no_experiment += 1;
            continue;
        };
        if !kept {
            dropped_min_pairs += 1;
            continue;
        }
        rows.push(ExperimentRow {
            control: control_class.label().into(),
            treatment: treatment_class.label().into(),
            n_pairs: out.test.trials as usize,
            percent_holds: out.percent_holds(),
            p_value: out.p_value(),
            significant: out.significant(),
        });
    }
    ledger
        .emit("exhibit")
        .str("id", id)
        .u64("rows", rows.len() as u64)
        .u64("dropped_empty_bins", dropped_empty_bins)
        .u64("dropped_no_experiment", dropped_no_experiment)
        .u64("dropped_min_pairs", dropped_min_pairs)
        .u64("min_pairs", crate::sec3::MIN_PAIRS as u64);
    ExperimentTable {
        id: id.into(),
        title: format!("Higher upgrade cost vs average demand ({suffix})"),
        control_label: "Control group".into(),
        treatment_label: "Treatment group".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};

    fn full_survey_dataset() -> Dataset {
        // Survey shape only needs catalogues, not many users.
        let mut cfg = WorldConfig::small(99);
        cfg.user_scale = 0.02;
        cfg.days = 1;
        cfg.fcc_users = 0;
        cfg.upgrade_fraction = 0.0;
        World::new(cfg).generate()
    }

    #[test]
    fn figure10_spans_orders_of_magnitude() {
        let ds = full_survey_dataset();
        let (fig, costs) = figure10(&ds, &mut bb_trace::EventLog::new());
        assert!(fig.series[0].n > 60, "{} markets", fig.series[0].n);
        let min = costs.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let max = costs.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        // Japan/Korea under $0.10; Paraguay/Ivory Coast above $100.
        assert!(min < 0.2, "min {min}");
        assert!(max > 50.0, "max {max}");
    }

    #[test]
    fn table5_regional_ordering() {
        let ds = full_survey_dataset();
        let rows = table5(&ds);
        let find = |name: &str| rows.iter().find(|r| r.region == name);
        let africa = find("Africa").expect("Africa present");
        let na = find("North America").expect("NA present");
        let europe = find("Europe").expect("Europe present");
        let asia_dev = find("Asia (developed)").expect("dev Asia present");
        // Table 5's striking pattern.
        assert!(
            africa.share_above_10 > 0.5,
            "Africa {}",
            africa.share_above_10
        );
        assert_eq!(na.share_above_1, 0.0, "North America all under $1");
        assert!(europe.share_above_5 < 0.25);
        assert_eq!(asia_dev.share_above_1, 0.0);
        // Asia (all) row exists between developed and developing.
        assert!(find("Asia (all)").is_some());
    }

    #[test]
    fn census_matches_paper_band() {
        let ds = full_survey_dataset();
        let c = census(&ds);
        assert!(c.n_markets > 80);
        // Paper: 66% strong, 81% moderate. Accept generous bands; the
        // ordering and "most markets correlated" claim are the substance.
        assert!(c.share_moderate > c.share_strong);
        assert!(c.share_strong > 0.4, "strong {}", c.share_strong);
        assert!(c.share_moderate > 0.6, "moderate {}", c.share_moderate);
    }

    #[test]
    fn table6_dearer_upgrades_raise_demand() {
        let mut cfg = WorldConfig::small(31);
        cfg.user_scale = 30.0;
        cfg.days = 2;
        cfg.fcc_users = 0;
        let mut world = World::with_countries(cfg, &["US", "JP", "KR", "DE", "MX", "BR", "SA"]);
        for p in &mut world.profiles {
            p.user_weight = 4.0; // balanced classes
        }
        let ds = world.generate();
        let [with_bt, without_bt] = table6(&ds, &mut bb_trace::EventLog::new());
        for t in [&with_bt, &without_bt] {
            assert!(!t.rows.is_empty(), "{} has no rows", t.id);
            // Pooled effect direction is what the paper reports.
            let pooled: f64 = t
                .rows
                .iter()
                .map(|r| r.percent_holds * r.n_pairs as f64)
                .sum::<f64>()
                / t.rows.iter().map(|r| r.n_pairs as f64).sum::<f64>();
            assert!(pooled > 50.0, "{}: pooled {pooled}%", t.id);
        }
    }
}
