//! §2.2 — Broadband network characteristics (Figure 1).
//!
//! "CDFs of the maximum download capacities, average latency to nearest
//! available measurement server, and average packet loss rates measured for
//! every network connection used throughout our analysis."

use crate::exhibit::{CdfFigure, CdfSeries};
use bb_dataset::Dataset;
use bb_stats::Ecdf;
use bb_trace::EventLog;

/// Population-level characteristics quoted in the §2.2 prose.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PopulationStats {
    /// Median download capacity (Mbps). Paper: 7.4 Mbps.
    pub median_capacity_mbps: f64,
    /// Interquartile range of capacity (Mbps). Paper: 14.3 Mbps.
    pub capacity_iqr_mbps: f64,
    /// Share of users below 1 Mbps. Paper: ~10%.
    pub frac_below_1mbps: f64,
    /// Share of users above 30 Mbps. Paper: ~10%.
    pub frac_above_30mbps: f64,
    /// Median latency (ms). Paper: ~100 ms "typical".
    pub median_latency_ms: f64,
    /// Share of users with average latency above 500 ms. Paper: ~5%.
    pub frac_latency_above_500ms: f64,
    /// Share of users with loss above 1%. Paper: ~14%.
    pub frac_loss_above_1pct: f64,
}

/// Build Fig. 1a (capacity CDF), 1b (latency CDF), 1c (loss CDF) and the
/// § 2.2 prose statistics from the global (Dasu) population.
pub fn figure1(
    dataset: &Dataset,
    ledger: &mut EventLog,
) -> (CdfFigure, CdfFigure, CdfFigure, PopulationStats) {
    let caps: Vec<f64> = dataset.dasu().map(|r| r.capacity.mbps()).collect();
    let lats: Vec<f64> = dataset.dasu().map(|r| r.latency.ms()).collect();
    let losses: Vec<f64> = dataset.dasu().map(|r| r.loss.percent()).collect();
    assert!(!caps.is_empty(), "figure 1 needs at least one Dasu record");
    for id in ["fig1a", "fig1b", "fig1c"] {
        ledger
            .emit("exhibit")
            .str("id", id)
            .str("population", "dasu")
            .u64("n", caps.len() as u64)
            .u64("dropped", 0);
    }

    let cap_ecdf = Ecdf::new(caps);
    let lat_ecdf = Ecdf::new(lats);
    let loss_ecdf = Ecdf::new(losses);

    let stats = PopulationStats {
        median_capacity_mbps: cap_ecdf.median(),
        capacity_iqr_mbps: cap_ecdf.quantile(0.75) - cap_ecdf.quantile(0.25),
        frac_below_1mbps: cap_ecdf.eval(1.0),
        frac_above_30mbps: cap_ecdf.frac_above(30.0),
        median_latency_ms: lat_ecdf.median(),
        frac_latency_above_500ms: lat_ecdf.frac_above(500.0),
        frac_loss_above_1pct: loss_ecdf.frac_above(1.0),
    };

    let fig = |id: &str, title: &str, x: &str, ecdf: &Ecdf| CdfFigure {
        id: id.into(),
        title: title.into(),
        x_label: x.into(),
        log_x: true,
        series: vec![CdfSeries {
            label: "all users".into(),
            n: ecdf.len(),
            median: ecdf.median(),
            points: ecdf.plot_points_downsampled(200),
        }],
    };

    (
        fig("fig1a", "Download capacity", "Capacity (Mbps)", &cap_ecdf),
        fig("fig1b", "Latency", "Latency (ms)", &lat_ecdf),
        fig("fig1c", "Packet loss", "Packet loss rate (%)", &loss_ecdf),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};

    #[test]
    fn figure1_has_sane_shape() {
        let mut cfg = WorldConfig::small(3);
        cfg.user_scale = 0.6;
        cfg.days = 1;
        cfg.fcc_users = 5;
        let ds = World::new(cfg).generate();
        let mut ledger = bb_trace::EventLog::new();
        let (a, b, c, stats) = figure1(&ds, &mut ledger);
        assert_eq!(ledger.len(), 3, "one exhibit event per sub-figure");
        for fig in [&a, &b, &c] {
            let pts = &fig.series[0].points;
            assert!(pts.len() > 10);
            // Monotone CDF.
            for w in pts.windows(2) {
                assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
            }
            assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
        // Loose global-shape checks against the paper's quoted values.
        assert!(
            stats.median_capacity_mbps > 1.0 && stats.median_capacity_mbps < 40.0,
            "median capacity {}",
            stats.median_capacity_mbps
        );
        assert!(
            stats.median_latency_ms > 30.0 && stats.median_latency_ms < 300.0,
            "median latency {}",
            stats.median_latency_ms
        );
        assert!(
            stats.frac_loss_above_1pct < 0.5,
            "loss tail {}",
            stats.frac_loss_above_1pct
        );
        assert!(stats.frac_below_1mbps < 0.6);
    }
}
