//! The full study: every exhibit in one pass.

use crate::exhibit::{BarFigure, BinnedFigure, CdfFigure, ExperimentRow, ExperimentTable};
use crate::sec5::CaseStudyRow;
use crate::{sec2, sec3, sec4, sec5, sec6, sec7};
use bb_dataset::{CountryProfile, Dataset};
use bb_market::survey::{CorrelationCensus, RegionCostRow};
use bb_trace::EventLog;

/// Every table and figure of the paper, computed from one dataset.
#[derive(Clone, Debug)]
pub struct StudyReport {
    /// Fig. 1a–c and the §2.2 prose statistics.
    pub fig1: (CdfFigure, CdfFigure, CdfFigure, sec2::PopulationStats),
    /// Fig. 2a–d.
    pub fig2: [BinnedFigure; 4],
    /// Fig. 3a–b.
    pub fig3: [BinnedFigure; 2],
    /// Table 1.
    pub table1: ExperimentTable,
    /// Fig. 4a–b.
    pub fig4: [CdfFigure; 2],
    /// Fig. 5a–d.
    pub fig5: [BarFigure; 4],
    /// Table 2 (Dasu, FCC).
    pub table2: (ExperimentTable, ExperimentTable),
    /// Fig. 6a–d.
    pub fig6: [BinnedFigure; 4],
    /// §4 per-tier year experiment.
    pub year_experiment: ExperimentTable,
    /// Table 3.
    pub table3: ExperimentTable,
    /// Table 4.
    pub table4: Vec<CaseStudyRow>,
    /// Fig. 7a–b.
    pub fig7: [CdfFigure; 2],
    /// Fig. 8 panels (one per case-study market with enough users).
    pub fig8: Vec<CdfFigure>,
    /// Fig. 9.
    pub fig9: BarFigure,
    /// Fig. 10 plus per-country upgrade costs.
    pub fig10: (CdfFigure, Vec<(String, f64)>),
    /// Table 5.
    pub table5: Vec<RegionCostRow>,
    /// §6 correlation census.
    pub census: CorrelationCensus,
    /// Table 6a–b.
    pub table6: [ExperimentTable; 2],
    /// Table 7.
    pub table7: ExperimentTable,
    /// Fig. 11.
    pub fig11: CdfFigure,
    /// Table 8.
    pub table8: ExperimentTable,
    /// Fig. 12.
    pub fig12: CdfFigure,
    /// §7.1 India-vs-US matched comparison.
    pub india_vs_us: Option<ExperimentRow>,
}

impl StudyReport {
    /// Run the entire pipeline.
    ///
    /// `profiles` supplies the per-country GDP data for Table 4 (the paper
    /// took it from the IMF); pass the same profiles used to generate the
    /// dataset. `min_tier_users` is the §5 per-tier filter (30 in the
    /// paper; smaller values are useful on reduced datasets).
    pub fn run(dataset: &Dataset, profiles: &[CountryProfile], min_tier_users: usize) -> Self {
        Self::run_with_ledger(dataset, profiles, min_tier_users, &mut EventLog::new())
    }

    /// Like [`StudyReport::run`], but records a provenance event for every
    /// exhibit into `ledger` (see the `bb-trace` event log). The ledger
    /// contents depend only on the dataset, never on the execution plan
    /// that generated it.
    pub fn run_with_ledger(
        dataset: &Dataset,
        profiles: &[CountryProfile],
        min_tier_users: usize,
        ledger: &mut EventLog,
    ) -> Self {
        StudyReport {
            fig1: sec2::figure1(dataset, ledger),
            fig2: sec3::figure2(dataset, ledger),
            fig3: sec3::figure3(dataset, ledger),
            table1: sec3::table1(dataset, ledger),
            fig4: sec3::figure4(dataset, ledger),
            fig5: sec3::figure5(dataset, ledger),
            table2: sec3::table2(dataset, ledger),
            fig6: sec4::figure6(dataset, ledger),
            year_experiment: sec4::year_experiment(dataset, ledger),
            table3: sec5::table3(dataset, ledger),
            table4: sec5::table4(dataset, profiles, ledger),
            fig7: sec5::figure7(dataset, ledger),
            fig8: sec5::figure8(dataset, min_tier_users, ledger),
            fig9: sec5::figure9(dataset, min_tier_users, ledger),
            fig10: sec6::figure10(dataset, ledger),
            table5: sec6::table5(dataset),
            census: sec6::census(dataset),
            table6: sec6::table6(dataset, ledger),
            table7: sec7::table7(dataset, ledger),
            fig11: sec7::figure11(dataset, ledger),
            table8: sec7::table8(dataset, ledger),
            fig12: sec7::figure12(dataset, ledger),
            india_vs_us: sec7::india_vs_us(dataset, ledger),
        }
    }

    /// All experiment tables, for bulk rendering.
    pub fn experiment_tables(&self) -> Vec<&ExperimentTable> {
        let mut v = vec![
            &self.table1,
            &self.table2.0,
            &self.table2.1,
            &self.year_experiment,
            &self.table3,
            &self.table6[0],
            &self.table6[1],
            &self.table7,
            &self.table8,
        ];
        v.retain(|t| !t.rows.is_empty());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};

    #[test]
    fn full_report_runs_on_a_small_world() {
        let mut cfg = WorldConfig::small(123);
        cfg.user_scale = 1.0;
        cfg.days = 1;
        cfg.fcc_users = 30;
        let world = World::new(cfg);
        let ds = world.generate();
        let mut ledger = EventLog::new();
        let report = StudyReport::run_with_ledger(&ds, &world.profiles, 10, &mut ledger);
        // Every section left provenance behind.
        assert!(
            ledger.events().any(|e| e.kind() == "match_audit"),
            "expected match_audit events in the ledger"
        );
        assert!(ledger.events().any(|e| e.kind() == "exhibit"));
        // Every exhibit produced something.
        assert!(report.fig1.3.median_capacity_mbps > 0.0);
        assert!(!report.fig2[0].series[0].points.is_empty());
        assert!(!report.table1.rows.is_empty());
        assert_eq!(report.table4.len(), 4);
        assert!(!report.table5.is_empty());
        assert!(report.census.n_markets > 80);
        assert!(!report.experiment_tables().is_empty());
    }
}
