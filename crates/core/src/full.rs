//! The full study: every exhibit in one pass.

use crate::exhibit::{BarFigure, BinnedFigure, CdfFigure, ExperimentRow, ExperimentTable};
use crate::sec5::CaseStudyRow;
use crate::{sec2, sec3, sec4, sec5, sec6, sec7};
use bb_dataset::{CountryProfile, Dataset};
use bb_market::survey::{CorrelationCensus, RegionCostRow};

/// Every table and figure of the paper, computed from one dataset.
#[derive(Clone, Debug)]
pub struct StudyReport {
    /// Fig. 1a–c and the §2.2 prose statistics.
    pub fig1: (CdfFigure, CdfFigure, CdfFigure, sec2::PopulationStats),
    /// Fig. 2a–d.
    pub fig2: [BinnedFigure; 4],
    /// Fig. 3a–b.
    pub fig3: [BinnedFigure; 2],
    /// Table 1.
    pub table1: ExperimentTable,
    /// Fig. 4a–b.
    pub fig4: [CdfFigure; 2],
    /// Fig. 5a–d.
    pub fig5: [BarFigure; 4],
    /// Table 2 (Dasu, FCC).
    pub table2: (ExperimentTable, ExperimentTable),
    /// Fig. 6a–d.
    pub fig6: [BinnedFigure; 4],
    /// §4 per-tier year experiment.
    pub year_experiment: ExperimentTable,
    /// Table 3.
    pub table3: ExperimentTable,
    /// Table 4.
    pub table4: Vec<CaseStudyRow>,
    /// Fig. 7a–b.
    pub fig7: [CdfFigure; 2],
    /// Fig. 8 panels (one per case-study market with enough users).
    pub fig8: Vec<CdfFigure>,
    /// Fig. 9.
    pub fig9: BarFigure,
    /// Fig. 10 plus per-country upgrade costs.
    pub fig10: (CdfFigure, Vec<(String, f64)>),
    /// Table 5.
    pub table5: Vec<RegionCostRow>,
    /// §6 correlation census.
    pub census: CorrelationCensus,
    /// Table 6a–b.
    pub table6: [ExperimentTable; 2],
    /// Table 7.
    pub table7: ExperimentTable,
    /// Fig. 11.
    pub fig11: CdfFigure,
    /// Table 8.
    pub table8: ExperimentTable,
    /// Fig. 12.
    pub fig12: CdfFigure,
    /// §7.1 India-vs-US matched comparison.
    pub india_vs_us: Option<ExperimentRow>,
}

impl StudyReport {
    /// Run the entire pipeline.
    ///
    /// `profiles` supplies the per-country GDP data for Table 4 (the paper
    /// took it from the IMF); pass the same profiles used to generate the
    /// dataset. `min_tier_users` is the §5 per-tier filter (30 in the
    /// paper; smaller values are useful on reduced datasets).
    pub fn run(dataset: &Dataset, profiles: &[CountryProfile], min_tier_users: usize) -> Self {
        StudyReport {
            fig1: sec2::figure1(dataset),
            fig2: sec3::figure2(dataset),
            fig3: sec3::figure3(dataset),
            table1: sec3::table1(dataset),
            fig4: sec3::figure4(dataset),
            fig5: sec3::figure5(dataset),
            table2: sec3::table2(dataset),
            fig6: sec4::figure6(dataset),
            year_experiment: sec4::year_experiment(dataset),
            table3: sec5::table3(dataset),
            table4: sec5::table4(dataset, profiles),
            fig7: sec5::figure7(dataset),
            fig8: sec5::figure8(dataset, min_tier_users),
            fig9: sec5::figure9(dataset, min_tier_users),
            fig10: sec6::figure10(dataset),
            table5: sec6::table5(dataset),
            census: sec6::census(dataset),
            table6: sec6::table6(dataset),
            table7: sec7::table7(dataset),
            fig11: sec7::figure11(dataset),
            table8: sec7::table8(dataset),
            fig12: sec7::figure12(dataset),
            india_vs_us: sec7::india_vs_us(dataset),
        }
    }

    /// All experiment tables, for bulk rendering.
    pub fn experiment_tables(&self) -> Vec<&ExperimentTable> {
        let mut v = vec![
            &self.table1,
            &self.table2.0,
            &self.table2.1,
            &self.year_experiment,
            &self.table3,
            &self.table6[0],
            &self.table6[1],
            &self.table7,
            &self.table8,
        ];
        v.retain(|t| !t.rows.is_empty());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};

    #[test]
    fn full_report_runs_on_a_small_world() {
        let mut cfg = WorldConfig::small(123);
        cfg.user_scale = 1.0;
        cfg.days = 1;
        cfg.fcc_users = 30;
        let world = World::new(cfg);
        let ds = world.generate();
        let report = StudyReport::run(&ds, &world.profiles, 10);
        // Every exhibit produced something.
        assert!(report.fig1.3.median_capacity_mbps > 0.0);
        assert!(!report.fig2[0].series[0].points.is_empty());
        assert!(!report.table1.rows.is_empty());
        assert_eq!(report.table4.len(), 4);
        assert!(!report.table5.is_empty());
        assert!(report.census.n_markets > 80);
        assert!(!report.experiment_tables().is_empty());
    }
}
