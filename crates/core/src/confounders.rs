//! The §3.2 matching configuration shared by all natural experiments.
//!
//! Every matched experiment in the paper balances on "connection quality
//! (packet loss and latency), price of broadband access, and cost to
//! upgrade capacity" — except that the variable under treatment is swapped
//! out of the confounder set and (where relevant) capacity is swapped in.
//! The caliper is the paper's 25% relative rule, with small absolute floors
//! so near-zero covariates (clean links) remain matchable.

use bb_causal::{Caliper, Unit};
use bb_dataset::record::UserRecord;
use bb_types::{Bandwidth, DemandMetric};

/// Which covariates an experiment balances on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfounderSet {
    /// Capacity is the treatment (Table 2): match on latency, loss, access
    /// price and upgrade cost.
    ForCapacityExperiment,
    /// Price of access is the treatment (Table 3): match on capacity,
    /// latency and loss. Upgrade cost is deliberately *not* a covariate
    /// here: the two price variables are strongly collinear across markets
    /// (Fig. 10 spans four orders of magnitude), so requiring both within
    /// 25% would empty the expensive bins' common support — §5 only asks
    /// for "otherwise similar pairs of users".
    ForPriceExperiment,
    /// Upgrade cost is the treatment (Table 6): match on capacity, latency,
    /// loss and access price.
    ForUpgradeCostExperiment,
    /// Latency is the treatment (Table 7). §7 matches on "link capacity
    /// and location", requiring similar loss: capacity, loss, access price.
    ForLatencyExperiment,
    /// Loss is the treatment (Table 8): capacity, latency, access price.
    ForLossExperiment,
    /// Country-to-country comparison (§7.1 India vs US): match on capacity
    /// only ("comparing users in India to users with similar capacities in
    /// the US") — quality and the market covariates *are* the difference
    /// under study.
    ForCountryComparison,
}

impl ConfounderSet {
    /// Calipers, one per covariate, in the order produced by
    /// [`ConfounderSet::covariates`].
    pub fn calipers(self) -> Vec<Caliper> {
        // Floors sized to each covariate's measurement noise: ~20 ms of
        // latency (repeated NDT runs jitter by that much), 0.05 loss
        // percentage points, $2 of access price, $0.30 of upgrade cost
        // (the OLS slope's typical standard error), 100 kbps of capacity.
        let latency = Caliper::paper_with_floor(20.0);
        let loss = Caliper::paper_with_floor(0.05);
        let access = Caliper::paper_with_floor(2.0);
        let upgrade = Caliper::paper_with_floor(0.3);
        let capacity = Caliper::paper_with_floor(0.1);
        match self {
            ConfounderSet::ForCapacityExperiment => vec![latency, loss, access, upgrade],
            ConfounderSet::ForPriceExperiment => vec![capacity, latency, loss],
            ConfounderSet::ForUpgradeCostExperiment => vec![capacity, latency, loss, access],
            ConfounderSet::ForLatencyExperiment => vec![capacity, loss, access],
            ConfounderSet::ForLossExperiment => vec![capacity, latency, access],
            ConfounderSet::ForCountryComparison => vec![capacity],
        }
    }

    /// Covariate names, in the order produced by
    /// [`ConfounderSet::covariates`] and [`ConfounderSet::calipers`] —
    /// used to label per-covariate caliper rejections in the provenance
    /// ledger.
    pub fn covariate_names(self) -> Vec<&'static str> {
        match self {
            ConfounderSet::ForCapacityExperiment => {
                vec!["latency", "loss", "access_price", "upgrade_cost"]
            }
            ConfounderSet::ForPriceExperiment => vec!["capacity", "latency", "loss"],
            ConfounderSet::ForUpgradeCostExperiment => {
                vec!["capacity", "latency", "loss", "access_price"]
            }
            ConfounderSet::ForLatencyExperiment => vec!["capacity", "loss", "access_price"],
            ConfounderSet::ForLossExperiment => vec!["capacity", "latency", "access_price"],
            ConfounderSet::ForCountryComparison => vec!["capacity"],
        }
    }

    /// Covariate vector for `record`, or `None` when the record lacks a
    /// needed covariate (market without an upgrade-cost estimate, say).
    pub fn covariates(self, record: &UserRecord) -> Option<Vec<f64>> {
        let latency = record.latency.ms();
        let loss = record.loss.percent();
        let access = record.access_price.usd();
        let capacity = record.capacity.mbps();
        match self {
            ConfounderSet::ForCapacityExperiment => {
                let upgrade = record.upgrade_cost?.usd();
                Some(vec![latency, loss, access, upgrade])
            }
            ConfounderSet::ForPriceExperiment => Some(vec![capacity, latency, loss]),
            ConfounderSet::ForUpgradeCostExperiment => Some(vec![capacity, latency, loss, access]),
            ConfounderSet::ForLatencyExperiment => Some(vec![capacity, loss, access]),
            ConfounderSet::ForLossExperiment => Some(vec![capacity, latency, access]),
            ConfounderSet::ForCountryComparison => Some(vec![capacity]),
        }
    }
}

/// Demand variants the experiments compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutcomeSpec {
    /// Mean or 95th-percentile usage.
    pub metric: DemandMetric,
    /// Whether BitTorrent-active intervals are included.
    pub with_bt: bool,
}

impl OutcomeSpec {
    /// Peak usage excluding BitTorrent — the workhorse outcome of §5–§7.
    pub const PEAK_NO_BT: OutcomeSpec = OutcomeSpec {
        metric: DemandMetric::Peak,
        with_bt: false,
    };
    /// Mean usage excluding BitTorrent.
    pub const MEAN_NO_BT: OutcomeSpec = OutcomeSpec {
        metric: DemandMetric::Mean,
        with_bt: false,
    };
    /// Mean usage including BitTorrent.
    pub const MEAN_WITH_BT: OutcomeSpec = OutcomeSpec {
        metric: DemandMetric::Mean,
        with_bt: true,
    };
    /// Peak usage including BitTorrent.
    pub const PEAK_WITH_BT: OutcomeSpec = OutcomeSpec {
        metric: DemandMetric::Peak,
        with_bt: true,
    };

    /// Extract the outcome (bps) from a record, if observed.
    pub fn of(&self, record: &UserRecord) -> Option<f64> {
        let demand = if self.with_bt {
            record.demand_with_bt?
        } else {
            record.demand_no_bt?
        };
        Some(demand.metric(self.metric).bps())
    }
}

/// Convert records to matching units under a confounder set and outcome.
/// Records missing a covariate or the outcome are skipped.
pub fn to_units<'a>(
    records: impl IntoIterator<Item = &'a UserRecord>,
    set: ConfounderSet,
    outcome: OutcomeSpec,
) -> Vec<Unit> {
    records
        .into_iter()
        .filter_map(|r| {
            let covariates = set.covariates(r)?;
            let out = outcome.of(r)?;
            Some(Unit::new(r.user.0, covariates, out))
        })
        .collect()
}

/// Capacity helper used by several sections: measured capacity in Mbps.
pub fn capacity_mbps(record: &UserRecord) -> f64 {
    record.capacity.mbps()
}

/// Convenience: a `Bandwidth` from an f64 bps outcome.
pub fn bps(value: f64) -> Bandwidth {
    Bandwidth::from_bps(value.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::record::VantageKind;
    use bb_types::{Country, DemandSummary, Latency, LossRate, MoneyPpp, NetworkId, UserId, Year};

    fn record(upgrade: Option<f64>) -> UserRecord {
        UserRecord {
            user: UserId(9),
            country: Country::new("US"),
            network: NetworkId::new(Country::new("US"), 0, 0, 0),
            year: Year(2012),
            vantage: VantageKind::Dasu,
            capacity: Bandwidth::from_mbps(10.0),
            latency: Latency::from_ms(50.0),
            loss: LossRate::from_percent(0.1),
            web_latency: None,
            demand_with_bt: Some(DemandSummary::new(
                Bandwidth::from_kbps(300.0),
                Bandwidth::from_mbps(3.0),
            )),
            demand_no_bt: Some(DemandSummary::new(
                Bandwidth::from_kbps(100.0),
                Bandwidth::from_mbps(1.0),
            )),
            plan_capacity: Bandwidth::from_mbps(10.0),
            plan_price: MoneyPpp::from_usd(50.0),
            access_price: MoneyPpp::from_usd(20.0),
            upgrade_cost: upgrade.map(MoneyPpp::from_usd),
            is_bt_user: true,
            upload_mean: None,
            plan_capped: false,
            counter_source: Some(bb_netsim::collect::CounterSource::Netstat),
            persona: bb_dataset::Persona::Streamer,
        }
    }

    #[test]
    fn covariate_orders_match_calipers() {
        let r = record(Some(0.5));
        for set in [
            ConfounderSet::ForCapacityExperiment,
            ConfounderSet::ForPriceExperiment,
            ConfounderSet::ForUpgradeCostExperiment,
            ConfounderSet::ForLatencyExperiment,
            ConfounderSet::ForLossExperiment,
            ConfounderSet::ForCountryComparison,
        ] {
            let cov = set.covariates(&r).unwrap();
            assert_eq!(cov.len(), set.calipers().len(), "{set:?}");
            assert_eq!(cov.len(), set.covariate_names().len(), "{set:?}");
        }
    }

    #[test]
    fn treatment_variable_is_excluded_from_its_own_confounders() {
        let r = record(Some(0.5));
        // Capacity experiment must not match on capacity (10 Mbps).
        let cov = ConfounderSet::ForCapacityExperiment.covariates(&r).unwrap();
        assert!(!cov.contains(&10.0));
        // Latency experiment must not match on latency (50 ms).
        let cov = ConfounderSet::ForLatencyExperiment.covariates(&r).unwrap();
        assert!(!cov.contains(&50.0));
    }

    #[test]
    fn missing_upgrade_cost_blocks_most_sets() {
        let r = record(None);
        assert!(ConfounderSet::ForCapacityExperiment
            .covariates(&r)
            .is_none());
        // …but not the sets that don't use it.
        assert!(ConfounderSet::ForUpgradeCostExperiment
            .covariates(&r)
            .is_some());
        assert!(ConfounderSet::ForCountryComparison.covariates(&r).is_some());
    }

    #[test]
    fn outcomes_select_the_right_metric() {
        let r = record(Some(0.5));
        assert_eq!(OutcomeSpec::PEAK_NO_BT.of(&r), Some(1e6));
        assert_eq!(OutcomeSpec::MEAN_NO_BT.of(&r), Some(1e5));
        assert_eq!(OutcomeSpec::PEAK_WITH_BT.of(&r), Some(3e6));
        assert_eq!(OutcomeSpec::MEAN_WITH_BT.of(&r), Some(3e5));
    }

    #[test]
    fn to_units_skips_incomplete_records() {
        let good = record(Some(0.5));
        let bad = record(None);
        let units = to_units(
            [&good, &bad],
            ConfounderSet::ForCapacityExperiment,
            OutcomeSpec::PEAK_NO_BT,
        );
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].outcome, 1e6);
    }
}
