//! # bb-study — the paper's analysis pipeline
//!
//! This crate is the reproduction's *primary contribution*: it computes
//! every numbered exhibit of Bischof, Bustamante and Stanojevic,
//! *"Need, Want, Can Afford — Broadband Markets and the Behavior of
//! Users"* (IMC 2014), from a [`bb_dataset::Dataset`] — the same way the
//! authors computed them from the Dasu, FCC and Google datasets.
//!
//! One module per paper section:
//!
//! * [`sec2`] — §2.2 network characteristics: Fig. 1a–c;
//! * [`sec3`] — §3 impact of capacity: Fig. 2, Fig. 3, Table 1, Fig. 4,
//!   Fig. 5, Table 2;
//! * [`sec4`] — §4 longitudinal trends: Fig. 6 and the no-change-per-tier
//!   experiment;
//! * [`sec5`] — §5 price of access: Table 3, Table 4, Fig. 7, Fig. 8,
//!   Fig. 9;
//! * [`sec6`] — §6 cost of increasing capacity: Fig. 10, Table 5, Table 6
//!   and the correlation census;
//! * [`sec7`] — §7 connection quality: Table 7, Fig. 11, Table 8, Fig. 12
//!   and the India-vs-US comparison;
//! * [`exhibit`] — the typed figure/table values all sections produce;
//! * [`confounders`] — the §3.2 matching configuration (which covariates,
//!   which calipers) shared by every natural experiment;
//! * [`full`] — [`full::StudyReport`]: run everything at once;
//! * [`ext`] — beyond the paper: usage caps, user personas, KS
//!   quantification of the India CDFs, and the natural-experiment vs
//!   quasi-experimental-design comparison of §8;
//! * [`stream`] — [`stream::StreamStudy`]: the headline exhibits as
//!   mergeable streaming sketches, for million-user runs that never
//!   materialise the panel;
//! * [`robustness`] — seed sweeps: the findings' error bars on themselves;
//! * [`provenance`] — the streaming run's metrics/ledger assembly, shared
//!   by the batch CLI and the serve gateway so both emit identical bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confounders;
pub mod exhibit;
pub mod ext;
pub mod full;
pub mod provenance;
pub mod robustness;
pub mod sec2;
pub mod sec3;
pub mod sec4;
pub mod sec5;
pub mod sec6;
pub mod sec7;
pub mod stream;

pub use exhibit::{BarFigure, BinnedFigure, CdfFigure, ExperimentTable};
pub use full::StudyReport;
pub use stream::StreamStudy;
