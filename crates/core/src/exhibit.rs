//! Typed exhibits: the figures and tables the pipeline produces.
//!
//! Each exhibit kind mirrors one visual vocabulary of the paper — CDF
//! plots, binned-mean plots with 95% CI error bars, grouped bar charts, and
//! natural-experiment tables — so `bb-report` can render any of them
//! uniformly and `EXPERIMENTS.md` can diff them against the published
//! values.

/// A CDF figure: one or more empirical distributions over a shared x-axis.
#[derive(Clone, Debug, PartialEq)]
pub struct CdfFigure {
    /// Exhibit id, e.g. `"fig1a"`.
    pub id: String,
    /// Title as in the paper's caption.
    pub title: String,
    /// x-axis label (with units).
    pub x_label: String,
    /// Whether the x-axis is naturally log-scaled.
    pub log_x: bool,
    /// Named series of `(x, F(x))` step points.
    pub series: Vec<CdfSeries>,
}

/// One CDF line.
#[derive(Clone, Debug, PartialEq)]
pub struct CdfSeries {
    /// Legend label.
    pub label: String,
    /// Number of underlying observations.
    pub n: usize,
    /// Median of the sample (commonly quoted in the text).
    pub median: f64,
    /// Plot points `(x, F(x))`, monotone in both coordinates.
    pub points: Vec<(f64, f64)>,
}

/// A binned-mean figure (Figs. 2, 3, 6): per-bin mean with a 95% CI.
#[derive(Clone, Debug, PartialEq)]
pub struct BinnedFigure {
    /// Exhibit id, e.g. `"fig2a"`.
    pub id: String,
    /// Title.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// Named series.
    pub series: Vec<BinnedSeries>,
}

/// One binned series with its log-log correlation coefficient.
#[derive(Clone, Debug, PartialEq)]
pub struct BinnedSeries {
    /// Legend label.
    pub label: String,
    /// Pearson r between log-x and log-mean across bins (the "r = 0.870"
    /// the paper prints under each panel), when defined.
    pub r_log: Option<f64>,
    /// Per-bin points.
    pub points: Vec<BinnedPoint>,
}

/// One bin of a binned series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinnedPoint {
    /// Bin x-coordinate (geometric midpoint for log bins).
    pub x: f64,
    /// Mean of the bin.
    pub mean: f64,
    /// Lower edge of the 95% CI of the mean.
    pub ci_lo: f64,
    /// Upper edge of the 95% CI of the mean.
    pub ci_hi: f64,
    /// Number of observations in the bin.
    pub n: usize,
}

/// A natural-experiment table (Tables 1–3, 6–8).
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentTable {
    /// Exhibit id, e.g. `"table2_dasu"`.
    pub id: String,
    /// Title.
    pub title: String,
    /// Column label for the control group.
    pub control_label: String,
    /// Column label for the treatment group.
    pub treatment_label: String,
    /// Rows.
    pub rows: Vec<ExperimentRow>,
}

/// One experiment row: "% H holds" and its p-value, plus the pair count.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentRow {
    /// Control-group description (e.g. `"(3.2, 6.4]"`).
    pub control: String,
    /// Treatment-group description.
    pub treatment: String,
    /// Matched (non-tied) pairs behind the test.
    pub n_pairs: usize,
    /// Percentage of pairs supporting the hypothesis.
    pub percent_holds: f64,
    /// Exact one-tailed binomial p-value.
    pub p_value: f64,
    /// Statistically significant at α = 0.05 (no asterisk in the paper).
    pub significant: bool,
}

impl ExperimentRow {
    /// The paper's rendering convention: an asterisk marks rows that are
    /// *not* statistically significant.
    pub fn asterisk(&self) -> &'static str {
        if self.significant {
            ""
        } else {
            "*"
        }
    }
}

/// A grouped bar figure (Figs. 5 and 9): groups on the x-axis, one bar per
/// series within each group.
#[derive(Clone, Debug, PartialEq)]
pub struct BarFigure {
    /// Exhibit id.
    pub id: String,
    /// Title.
    pub title: String,
    /// y-axis label.
    pub y_label: String,
    /// Groups in display order.
    pub groups: Vec<BarGroup>,
}

/// One x-axis group of bars.
#[derive(Clone, Debug, PartialEq)]
pub struct BarGroup {
    /// Group label (e.g. an initial speed tier, or `"US 8-16"`).
    pub label: String,
    /// Bars within the group.
    pub bars: Vec<Bar>,
}

/// One bar with an optional confidence interval.
#[derive(Clone, Debug, PartialEq)]
pub struct Bar {
    /// Bar label (legend key).
    pub label: String,
    /// Bar height.
    pub value: f64,
    /// 95% CI of the value, when available.
    pub ci: Option<(f64, f64)>,
    /// Observations behind the bar.
    pub n: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asterisk_convention() {
        let row = ExperimentRow {
            control: "a".into(),
            treatment: "b".into(),
            n_pairs: 100,
            percent_holds: 56.8,
            p_value: 0.0583,
            significant: false,
        };
        assert_eq!(row.asterisk(), "*");
        let sig = ExperimentRow {
            p_value: 0.001,
            significant: true,
            ..row
        };
        assert_eq!(sig.asterisk(), "");
    }

    #[test]
    fn exhibits_are_cloneable_and_comparable() {
        let fig = CdfFigure {
            id: "fig1a".into(),
            title: "t".into(),
            x_label: "Capacity (Mbps)".into(),
            log_x: true,
            series: vec![CdfSeries {
                label: "all".into(),
                n: 3,
                median: 2.0,
                points: vec![(1.0, 0.33), (2.0, 0.67), (3.0, 1.0)],
            }],
        };
        assert_eq!(fig.clone(), fig);
    }
}
