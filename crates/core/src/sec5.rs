//! §5 — Price of broadband access.
//!
//! * [`table3`] — the matched experiment on the price of access;
//! * [`table4`] — the four-market case study (Botswana, Saudi Arabia, US,
//!   Japan);
//! * [`figure7`] — capacity and peak-utilisation CDFs per market;
//! * [`figure8`] — peak-utilisation CDFs per market, split by service tier;
//! * [`figure9`] — average peak demand per market × tier.

use crate::confounders::{to_units, ConfounderSet, OutcomeSpec};
use crate::exhibit::{
    Bar, BarFigure, BarGroup, CdfFigure, CdfSeries, ExperimentRow, ExperimentTable,
};
use bb_causal::NaturalExperiment;
use bb_dataset::{CountryProfile, Dataset};
use bb_stats::binning::BinnedSeries as StatsBins;
use bb_stats::Ecdf;
use bb_trace::EventLog;
use bb_types::{Bandwidth, Country, MoneyPpp, PriceBin, ServiceTier};

/// The four case-study markets, in the paper's order.
pub const CASE_STUDY: [&str; 4] = ["BW", "SA", "US", "JP"];

/// Minimum users for a (country, tier) cell to be plotted — "we do not
/// include data on a particular tier for a country with less than 30 users
/// in our dataset".
pub const MIN_TIER_USERS: usize = 30;

/// Table 3: matched experiment — does a higher price of broadband access
/// increase demand at equal capacity/quality? Rows compare the cheapest
/// price bin against each dearer bin. Outcome: peak usage, no BitTorrent.
pub fn table3(dataset: &Dataset, ledger: &mut EventLog) -> ExperimentTable {
    let set = ConfounderSet::ForPriceExperiment;
    let calipers = set.calipers();
    let names = set.covariate_names();
    let units_for = |bin: PriceBin| {
        to_units(
            dataset
                .dasu()
                .filter(|r| PriceBin::of(r.access_price) == bin),
            ConfounderSet::ForPriceExperiment,
            OutcomeSpec::PEAK_NO_BT,
        )
    };
    let cheap = units_for(PriceBin::UpTo25);
    let mut rows = Vec::new();
    let mut dropped_empty_bins = 0u64;
    let mut dropped_no_experiment = 0u64;
    let mut dropped_min_pairs = 0u64;
    for treatment_bin in [PriceBin::From25To60, PriceBin::Above60] {
        let treatment = units_for(treatment_bin);
        if cheap.is_empty() || treatment.is_empty() {
            dropped_empty_bins += 1;
            continue;
        }
        let exp = NaturalExperiment::new(
            format!("access price {} vs {}", PriceBin::UpTo25, treatment_bin),
            calipers.clone(),
        );
        let (outcome, audit) = exp.run_audited(&cheap, &treatment);
        let kept = matches!(&outcome, Some(o) if o.test.trials >= crate::sec3::MIN_PAIRS as u64);
        exp.log_provenance(ledger, "table3", &names, &audit, outcome.as_ref(), kept);
        let Some(outcome) = outcome else {
            dropped_no_experiment += 1;
            continue;
        };
        if !kept {
            dropped_min_pairs += 1;
            continue;
        }
        rows.push(ExperimentRow {
            control: PriceBin::UpTo25.label().into(),
            treatment: treatment_bin.label().into(),
            n_pairs: outcome.test.trials as usize,
            percent_holds: outcome.percent_holds(),
            p_value: outcome.p_value(),
            significant: outcome.significant(),
        });
    }
    ledger
        .emit("exhibit")
        .str("id", "table3")
        .u64("rows", rows.len() as u64)
        .u64("dropped_empty_bins", dropped_empty_bins)
        .u64("dropped_no_experiment", dropped_no_experiment)
        .u64("dropped_min_pairs", dropped_min_pairs)
        .u64("min_pairs", crate::sec3::MIN_PAIRS as u64);
    ExperimentTable {
        id: "table3".into(),
        title: "Higher price of broadband access vs demand (matched users)".into(),
        control_label: "Control group".into(),
        treatment_label: "Treatment group".into(),
        rows,
    }
}

/// One row of Table 4.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseStudyRow {
    /// Country code.
    pub country: Country,
    /// Users of that country in the dataset.
    pub n_users: usize,
    /// Median measured capacity.
    pub median_capacity: Bandwidth,
    /// Nearest advertised tier in the country's catalogue.
    pub nearest_tier: Bandwidth,
    /// Monthly price of that tier (USD PPP).
    pub price: MoneyPpp,
    /// Annual GDP per capita (PPP).
    pub gdp_per_capita: MoneyPpp,
    /// Cost of access as a share of *monthly* GDP per capita.
    pub price_share_of_income: f64,
}

/// Table 4: the "typical price of broadband" case study. Profiles supply
/// the GDP column (the paper took it from the IMF).
pub fn table4(
    dataset: &Dataset,
    profiles: &[CountryProfile],
    ledger: &mut EventLog,
) -> Vec<CaseStudyRow> {
    let rows: Vec<CaseStudyRow> = CASE_STUDY
        .iter()
        .filter_map(|code| {
            let country = Country::new(code);
            let profile = profiles.iter().find(|p| p.country == country)?;
            let caps: Vec<f64> = dataset
                .dasu()
                .filter(|r| r.country == country)
                .map(|r| r.capacity.mbps())
                .collect();
            if caps.is_empty() {
                return None;
            }
            let median = Ecdf::new(caps.clone()).median();
            let entry = dataset.survey.get(country)?;
            let plan = entry.catalog.nearest_tier(Bandwidth::from_mbps(median));
            let monthly_income = profile.monthly_income();
            Some(CaseStudyRow {
                country,
                n_users: caps.len(),
                median_capacity: Bandwidth::from_mbps(median),
                nearest_tier: plan.download,
                price: plan.monthly_price,
                gdp_per_capita: profile.gdp_per_capita,
                price_share_of_income: plan
                    .monthly_price
                    .fraction_of(monthly_income)
                    .unwrap_or(0.0),
            })
        })
        .collect();
    ledger
        .emit("exhibit")
        .str("id", "table4")
        .u64("n", CASE_STUDY.len() as u64)
        .u64("dropped_no_data", (CASE_STUDY.len() - rows.len()) as u64)
        .u64("rows", rows.len() as u64);
    rows
}

/// Figure 7: (a) capacity CDFs and (b) peak-utilisation CDFs for the four
/// case-study markets.
pub fn figure7(dataset: &Dataset, ledger: &mut EventLog) -> [CdfFigure; 2] {
    let mut cap_series = Vec::new();
    let mut util_series = Vec::new();
    for code in CASE_STUDY {
        let country = Country::new(code);
        let caps: Vec<f64> = dataset
            .dasu()
            .filter(|r| r.country == country)
            .map(|r| r.capacity.mbps())
            .collect();
        let utils: Vec<f64> = dataset
            .dasu()
            .filter(|r| r.country == country)
            .filter_map(|r| r.peak_utilization())
            .collect();
        for id in ["fig7a", "fig7b"] {
            ledger
                .emit("exhibit")
                .str("id", id)
                .str("series", code)
                .u64("n", caps.len() as u64)
                .u64("dropped_no_utilization", (caps.len() - utils.len()) as u64);
        }
        if caps.is_empty() || utils.is_empty() {
            continue;
        }
        let ce = Ecdf::new(caps);
        cap_series.push(CdfSeries {
            label: code.into(),
            n: ce.len(),
            median: ce.median(),
            points: ce.plot_points_downsampled(150),
        });
        let ue = Ecdf::new(utils);
        util_series.push(CdfSeries {
            label: code.into(),
            n: ue.len(),
            median: ue.median(),
            points: ue.plot_points_downsampled(150),
        });
    }
    [
        CdfFigure {
            id: "fig7a".into(),
            title: "Download capacities (case-study markets)".into(),
            x_label: "Capacity (Mbps)".into(),
            log_x: true,
            series: cap_series,
        },
        CdfFigure {
            id: "fig7b".into(),
            title: "95th %ile link utilization (case-study markets)".into(),
            x_label: "95th %ile link utilization (fraction)".into(),
            log_x: false,
            series: util_series,
        },
    ]
}

/// Figure 8: per-market peak-utilisation CDFs split by service tier.
/// Tiers with fewer than `min_tier_users` users are dropped (the paper
/// uses 30).
pub fn figure8(dataset: &Dataset, min_tier_users: usize, ledger: &mut EventLog) -> Vec<CdfFigure> {
    CASE_STUDY
        .iter()
        .enumerate()
        .filter_map(|(i, code)| {
            let country = Country::new(code);
            let mut per_tier: StatsBins<ServiceTier> = StatsBins::new();
            let mut n_input = 0u64;
            for r in dataset.dasu().filter(|r| r.country == country) {
                n_input += 1;
                if let Some(u) = r.peak_utilization() {
                    per_tier.push(ServiceTier::of(r.capacity), u);
                }
            }
            let before_filter = per_tier.n_total();
            let per_tier = per_tier.filter_min_count(min_tier_users);
            ledger
                .emit("exhibit")
                .str("id", format!("fig8{}", (b'a' + i as u8) as char))
                .str("series", *code)
                .u64("n", n_input)
                .u64("dropped_no_utilization", n_input - before_filter as u64)
                .u64(
                    "dropped_thin_tiers",
                    before_filter as u64 - per_tier.n_total() as u64,
                )
                .u64("min_tier_users", min_tier_users as u64)
                .u64("n_used", per_tier.n_total() as u64);
            let series: Vec<CdfSeries> = per_tier
                .iter()
                .map(|(tier, utils)| {
                    let e = Ecdf::new(utils.iter().copied());
                    CdfSeries {
                        label: tier.label().into(),
                        n: e.len(),
                        median: e.median(),
                        points: e.plot_points_downsampled(120),
                    }
                })
                .collect();
            if series.is_empty() {
                return None;
            }
            Some(CdfFigure {
                id: format!("fig8{}", (b'a' + i as u8) as char),
                title: format!("95th %ile link utilization by tier — {code}"),
                x_label: "95th %ile link utilization (fraction)".into(),
                log_x: false,
                series,
            })
        })
        .collect()
}

/// Figure 9: average peak demand (Mbps) per market × tier bar chart.
pub fn figure9(dataset: &Dataset, min_tier_users: usize, ledger: &mut EventLog) -> BarFigure {
    let mut groups = Vec::new();
    for code in CASE_STUDY {
        let country = Country::new(code);
        let mut per_tier: StatsBins<ServiceTier> = StatsBins::new();
        let mut n_input = 0u64;
        for r in dataset.dasu().filter(|r| r.country == country) {
            n_input += 1;
            if let Some(d) = r.demand_no_bt {
                per_tier.push(ServiceTier::of(r.capacity), d.peak.mbps());
            }
        }
        let before_filter = per_tier.n_total();
        let per_tier = per_tier.filter_min_count(min_tier_users);
        ledger
            .emit("exhibit")
            .str("id", "fig9")
            .str("series", code)
            .u64("n", n_input)
            .u64("dropped_no_demand", n_input - before_filter as u64)
            .u64(
                "dropped_thin_tiers",
                before_filter as u64 - per_tier.n_total() as u64,
            )
            .u64("min_tier_users", min_tier_users as u64)
            .u64("n_used", per_tier.n_total() as u64);
        for (tier, ci) in per_tier.mean_cis(0.95) {
            groups.push(BarGroup {
                label: format!("{code} {}", tier.label()),
                bars: vec![Bar {
                    label: tier.label().into(),
                    value: ci.mean,
                    ci: Some((ci.lo, ci.hi)),
                    n: ci.n,
                }],
            });
        }
    }
    BarFigure {
        id: "fig9".into(),
        title: "Average 95th %ile demand per market and speed tier".into(),
        y_label: "Average 95th %ile demand (Mbps)".into(),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};
    use std::sync::OnceLock;

    fn world() -> World {
        let mut cfg = WorldConfig::small(55);
        cfg.user_scale = 25.0;
        cfg.days = 2;
        cfg.fcc_users = 0;
        World::with_countries(cfg, &["BW", "SA", "US", "JP", "DE"])
    }

    fn case_dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| world().generate())
    }

    #[test]
    fn table4_matches_paper_shape() {
        let w = world();
        let ds = case_dataset();
        let rows = table4(ds, &w.profiles, &mut bb_trace::EventLog::new());
        assert_eq!(rows.len(), 4);
        // Capacity ordering BW < SA < US < JP.
        for pair in rows.windows(2) {
            assert!(
                pair[0].median_capacity < pair[1].median_capacity,
                "{} ({}) !< {} ({})",
                pair[0].country,
                pair[0].median_capacity,
                pair[1].country,
                pair[1].median_capacity
            );
        }
        // Income-share ordering: Botswana pays the largest share.
        let bw = &rows[0];
        let us = &rows[2];
        let jp = &rows[3];
        assert!(bw.price_share_of_income > 3.0 * us.price_share_of_income);
        assert!(
            (jp.price_share_of_income - us.price_share_of_income).abs() < us.price_share_of_income,
            "US and Japan spend a similar share"
        );
    }

    #[test]
    fn figure7_utilization_reverses_capacity_order() {
        let ds = case_dataset();
        let [caps, utils] = figure7(ds, &mut bb_trace::EventLog::new());
        assert_eq!(caps.series.len(), 4);
        assert_eq!(utils.series.len(), 4);
        // Median capacity ascending BW..JP; median utilisation descending.
        let cap_medians: Vec<f64> = caps.series.iter().map(|s| s.median).collect();
        assert!(
            cap_medians.windows(2).all(|w| w[0] <= w[1]),
            "{cap_medians:?}"
        );
        let bw_util = utils.series[0].median;
        let jp_util = utils.series[3].median;
        assert!(
            bw_util > jp_util,
            "BW util {bw_util} should exceed JP util {jp_util}"
        );
    }

    #[test]
    fn figure8_tiers_filtered_by_count() {
        let ds = case_dataset();
        let figs = figure8(ds, 30, &mut bb_trace::EventLog::new());
        assert!(!figs.is_empty());
        for fig in &figs {
            for s in &fig.series {
                assert!(s.n >= 30, "{}: {} has {}", fig.id, s.label, s.n);
            }
        }
    }

    #[test]
    fn figure9_has_us_bars() {
        let ds = case_dataset();
        let fig = figure9(ds, 30, &mut bb_trace::EventLog::new());
        assert!(fig.groups.iter().any(|g| g.label.starts_with("US")));
        for g in &fig.groups {
            assert!(g.bars[0].value > 0.0);
        }
    }

    #[test]
    fn table3_price_raises_demand() {
        // A world with cheap and expensive markets, balanced so both sides
        // of each price bin carry real mass.
        let mut cfg = WorldConfig::small(77);
        cfg.user_scale = 25.0;
        cfg.days = 2;
        cfg.fcc_users = 0;
        let mut world = World::with_countries(
            cfg,
            &[
                "US", "DE", "RU", "PT", "CN", "TR", "MX", "SA", "IN", "BW", "IR",
            ],
        );
        for p in &mut world.profiles {
            // Balanced sides with extra mass where the affordability
            // mechanism is strongest (the expensive markets).
            p.user_weight = match p.country.as_str() {
                "US" | "IN" | "SA" => 4.0,
                _ => 3.0,
            };
        }
        let ds = world.generate();
        let t = table3(&ds, &mut bb_trace::EventLog::new());
        assert!(!t.rows.is_empty(), "no price-bin rows produced");
        let pooled: f64 = t
            .rows
            .iter()
            .map(|r| r.percent_holds * r.n_pairs as f64)
            .sum::<f64>()
            / t.rows.iter().map(|r| r.n_pairs as f64).sum::<f64>();
        assert!(
            pooled > 50.0,
            "pooled {pooled}% over rows {:?}",
            t.rows
                .iter()
                .map(|r| (r.treatment.clone(), r.percent_holds, r.n_pairs))
                .collect::<Vec<_>>()
        );
    }
}
