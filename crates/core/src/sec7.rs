//! §7 — Connection quality.
//!
//! * [`table7`] — the latency experiment: very high latency (512–2048 ms
//!   control) vs each lower latency bin;
//! * [`figure11`] — latency CDFs, India vs the rest, NDT and web probes;
//! * [`table8`] — the packet-loss experiment;
//! * [`figure12`] — loss CDFs, India vs the rest;
//! * [`india_vs_us`] — the §7.1 matched comparison (India imposes lower
//!   demand than capacity-matched US users ~62% of the time).

use crate::confounders::{to_units, ConfounderSet, OutcomeSpec};
use crate::exhibit::{CdfFigure, CdfSeries, ExperimentRow, ExperimentTable};
use bb_causal::experiment::Direction;
use bb_causal::NaturalExperiment;
use bb_dataset::Dataset;
use bb_stats::Ecdf;
use bb_trace::EventLog;
use bb_types::{Country, LatencyBin, LossBin};

/// Table 7: does *lower* latency mean higher peak demand (no BitTorrent)?
/// Control: the (512, 2048] ms group; treatments: each lower bin.
pub fn table7(dataset: &Dataset, ledger: &mut EventLog) -> ExperimentTable {
    let set = ConfounderSet::ForLatencyExperiment;
    let calipers = set.calipers();
    let names = set.covariate_names();
    let units_for = |bin: LatencyBin| {
        to_units(
            dataset.dasu().filter(|r| LatencyBin::of(r.latency) == bin),
            ConfounderSet::ForLatencyExperiment,
            OutcomeSpec::PEAK_NO_BT,
        )
    };
    let control = units_for(LatencyBin::From512To2048);
    let mut rows = Vec::new();
    let mut dropped_empty_bins = 0u64;
    let mut dropped_no_experiment = 0u64;
    let mut dropped_min_pairs = 0u64;
    for treatment_bin in [
        LatencyBin::UpTo64,
        LatencyBin::From64To128,
        LatencyBin::From128To256,
        LatencyBin::From256To512,
    ] {
        let treatment = units_for(treatment_bin);
        if control.is_empty() || treatment.is_empty() {
            dropped_empty_bins += 1;
            continue;
        }
        let exp = NaturalExperiment::new(
            format!("latency {} vs {}", LatencyBin::From512To2048, treatment_bin),
            calipers.clone(),
        );
        let (outcome, audit) = exp.run_audited(&control, &treatment);
        let kept = matches!(&outcome, Some(o) if o.test.trials >= crate::sec3::MIN_PAIRS as u64);
        exp.log_provenance(ledger, "table7", &names, &audit, outcome.as_ref(), kept);
        let Some(outcome) = outcome else {
            dropped_no_experiment += 1;
            continue;
        };
        if !kept {
            dropped_min_pairs += 1;
            continue;
        }
        rows.push(ExperimentRow {
            control: LatencyBin::From512To2048.label().into(),
            treatment: treatment_bin.label().into(),
            n_pairs: outcome.test.trials as usize,
            percent_holds: outcome.percent_holds(),
            p_value: outcome.p_value(),
            significant: outcome.significant(),
        });
    }
    ledger
        .emit("exhibit")
        .str("id", "table7")
        .u64("rows", rows.len() as u64)
        .u64("dropped_empty_bins", dropped_empty_bins)
        .u64("dropped_no_experiment", dropped_no_experiment)
        .u64("dropped_min_pairs", dropped_min_pairs)
        .u64("min_pairs", crate::sec3::MIN_PAIRS as u64);
    ExperimentTable {
        id: "table7".into(),
        title: "Lower latency vs 95th %ile usage (no BitTorrent)".into(),
        control_label: "Control group (ms)".into(),
        treatment_label: "Treatment group (ms)".into(),
        rows,
    }
}

/// Figure 11: latency CDFs for India vs the rest of the population — web
/// probes ('14 cohort) and NDT probes.
pub fn figure11(dataset: &Dataset, ledger: &mut EventLog) -> CdfFigure {
    let india = Country::new("IN");
    let mut series = Vec::new();
    let mut add = |label: &str, values: Vec<f64>| {
        if values.len() >= 3 {
            let e = Ecdf::new(values);
            series.push(CdfSeries {
                label: label.into(),
                n: e.len(),
                median: e.median(),
                points: e.plot_points_downsampled(150),
            });
        }
    };
    let web = |in_india: bool| -> Vec<f64> {
        dataset
            .dasu()
            .filter(|r| (r.country == india) == in_india)
            .filter_map(|r| r.web_latency.map(|l| l.ms()))
            .collect()
    };
    let ndt = |in_india: bool| -> Vec<f64> {
        dataset
            .dasu()
            .filter(|r| (r.country == india) == in_india)
            .map(|r| r.latency.ms())
            .collect()
    };
    add("Web '14 India", web(true));
    add("NDT India", ndt(true));
    add("Web '14 Other", web(false));
    add("NDT Other", ndt(false));
    let n_dasu = dataset.dasu().count() as u64;
    let n_web = (web(true).len() + web(false).len()) as u64;
    ledger
        .emit("exhibit")
        .str("id", "fig11")
        .u64("n", n_dasu)
        .u64("dropped_no_web_latency", n_dasu - n_web)
        .u64("series", series.len() as u64);
    CdfFigure {
        id: "fig11".into(),
        title: "Latency to NDT servers and popular web sites: India vs others".into(),
        x_label: "Latency (ms)".into(),
        log_x: true,
        series,
    }
}

/// Table 8: does *lower* packet loss mean higher average demand (no
/// BitTorrent)? Controls: the two high-loss bins; treatments: the two
/// low-loss bins — the four row pairs of the paper's Table 8.
pub fn table8(dataset: &Dataset, ledger: &mut EventLog) -> ExperimentTable {
    let set = ConfounderSet::ForLossExperiment;
    let calipers = set.calipers();
    let names = set.covariate_names();
    let units_for = |bin: LossBin| {
        to_units(
            dataset.dasu().filter(|r| LossBin::of(r.loss) == bin),
            ConfounderSet::ForLossExperiment,
            OutcomeSpec::MEAN_NO_BT,
        )
    };
    let mut rows = Vec::new();
    let mut dropped_empty_bins = 0u64;
    let mut dropped_no_experiment = 0u64;
    let mut dropped_min_pairs = 0u64;
    for (control_bin, treatment_bin) in [
        (LossBin::From0_1To1, LossBin::UpTo0_01),
        (LossBin::From0_1To1, LossBin::From0_01To0_1),
        (LossBin::From1To15, LossBin::UpTo0_01),
        (LossBin::From1To15, LossBin::From0_01To0_1),
    ] {
        let control = units_for(control_bin);
        let treatment = units_for(treatment_bin);
        if control.is_empty() || treatment.is_empty() {
            dropped_empty_bins += 1;
            continue;
        }
        let exp = NaturalExperiment::new(
            format!("loss {} vs {}", control_bin, treatment_bin),
            calipers.clone(),
        );
        let (outcome, audit) = exp.run_audited(&control, &treatment);
        let kept = matches!(&outcome, Some(o) if o.test.trials >= crate::sec3::MIN_PAIRS as u64);
        exp.log_provenance(ledger, "table8", &names, &audit, outcome.as_ref(), kept);
        let Some(outcome) = outcome else {
            dropped_no_experiment += 1;
            continue;
        };
        if !kept {
            dropped_min_pairs += 1;
            continue;
        }
        rows.push(ExperimentRow {
            control: control_bin.label().into(),
            treatment: treatment_bin.label().into(),
            n_pairs: outcome.test.trials as usize,
            percent_holds: outcome.percent_holds(),
            p_value: outcome.p_value(),
            significant: outcome.significant(),
        });
    }
    ledger
        .emit("exhibit")
        .str("id", "table8")
        .u64("rows", rows.len() as u64)
        .u64("dropped_empty_bins", dropped_empty_bins)
        .u64("dropped_no_experiment", dropped_no_experiment)
        .u64("dropped_min_pairs", dropped_min_pairs)
        .u64("min_pairs", crate::sec3::MIN_PAIRS as u64);
    ExperimentTable {
        id: "table8".into(),
        title: "Lower packet loss vs average usage (no BitTorrent)".into(),
        control_label: "Control group".into(),
        treatment_label: "Treatment group".into(),
        rows,
    }
}

/// Figure 12: packet-loss CDFs, India vs the rest of the population.
/// Series with no underlying users (a world without India, say) are
/// omitted rather than fabricated.
pub fn figure12(dataset: &Dataset, ledger: &mut EventLog) -> CdfFigure {
    let india = Country::new("IN");
    let build = |label: &str, in_india: bool| -> Option<CdfSeries> {
        let v: Vec<f64> = dataset
            .dasu()
            .filter(|r| (r.country == india) == in_india)
            .map(|r| r.loss.percent().max(1e-4))
            .collect();
        if v.is_empty() {
            return None;
        }
        let e = Ecdf::new(v);
        Some(CdfSeries {
            label: label.into(),
            n: e.len(),
            median: e.median(),
            points: e.plot_points_downsampled(150),
        })
    };
    let series: Vec<CdfSeries> = [build("India", true), build("Rest of population", false)]
        .into_iter()
        .flatten()
        .collect();
    ledger
        .emit("exhibit")
        .str("id", "fig12")
        .u64("n", dataset.dasu().count() as u64)
        .u64("series", series.len() as u64)
        .u64("dropped", 0);
    CdfFigure {
        id: "fig12".into(),
        title: "Average packet loss: India vs the rest of the population".into(),
        x_label: "Packet loss rate (%)".into(),
        log_x: true,
        series,
    }
}

/// The §7.1 matched comparison: capacity-matched users in India impose
/// *lower* demand than users in the US (the paper finds H holds 62% of the
/// time with p < 0.001, despite India's higher access price which would
/// predict the opposite).
pub fn india_vs_us(dataset: &Dataset, ledger: &mut EventLog) -> Option<ExperimentRow> {
    let us = Country::new("US");
    let india = Country::new("IN");
    let control = to_units(
        dataset.dasu().filter(|r| r.country == us),
        ConfounderSet::ForCountryComparison,
        OutcomeSpec::PEAK_NO_BT,
    );
    let treatment = to_units(
        dataset.dasu().filter(|r| r.country == india),
        ConfounderSet::ForCountryComparison,
        OutcomeSpec::PEAK_NO_BT,
    );
    let exp = NaturalExperiment::new(
        "India users impose lower demand than capacity-matched US users",
        ConfounderSet::ForCountryComparison.calipers(),
    )
    .with_direction(Direction::TreatmentLower);
    let (outcome, audit) = exp.run_audited(&control, &treatment);
    let kept = matches!(&outcome, Some(o) if o.test.trials >= crate::sec3::MIN_PAIRS as u64);
    exp.log_provenance(
        ledger,
        "india_vs_us",
        &ConfounderSet::ForCountryComparison.covariate_names(),
        &audit,
        outcome.as_ref(),
        kept,
    );
    let outcome = outcome?;
    if !kept {
        return None;
    }
    Some(ExperimentRow {
        control: "US (matched capacity)".into(),
        treatment: "India".into(),
        n_pairs: outcome.test.trials as usize,
        percent_holds: outcome.percent_holds(),
        p_value: outcome.p_value(),
        significant: outcome.significant(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_dataset::{World, WorldConfig};
    use std::sync::OnceLock;

    fn dataset() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| {
            let mut cfg = WorldConfig::small(61);
            cfg.user_scale = 20.0;
            cfg.days = 2;
            cfg.fcc_users = 0;
            World::with_countries(cfg, &["US", "DE", "IN", "BR", "PH", "UG", "AF"]).generate()
        })
    }

    #[test]
    fn table7_low_latency_users_demand_more() {
        let ds = dataset();
        let t = table7(ds, &mut bb_trace::EventLog::new());
        assert!(!t.rows.is_empty(), "no latency rows");
        let pooled: f64 = t
            .rows
            .iter()
            .map(|r| r.percent_holds * r.n_pairs as f64)
            .sum::<f64>()
            / t.rows.iter().map(|r| r.n_pairs as f64).sum::<f64>();
        assert!(pooled > 50.0, "pooled {pooled}%");
    }

    #[test]
    fn table8_low_loss_users_demand_more() {
        let ds = dataset();
        let t = table8(ds, &mut bb_trace::EventLog::new());
        assert!(!t.rows.is_empty(), "no loss rows");
        let pooled: f64 = t
            .rows
            .iter()
            .map(|r| r.percent_holds * r.n_pairs as f64)
            .sum::<f64>()
            / t.rows.iter().map(|r| r.n_pairs as f64).sum::<f64>();
        assert!(pooled > 50.0, "pooled {pooled}%");
    }

    #[test]
    fn figure11_india_is_shifted_right() {
        let ds = dataset();
        let fig = figure11(ds, &mut bb_trace::EventLog::new());
        let ndt_india = fig.series.iter().find(|s| s.label == "NDT India").unwrap();
        let ndt_other = fig.series.iter().find(|s| s.label == "NDT Other").unwrap();
        assert!(
            ndt_india.median > 2.0 * ndt_other.median,
            "India NDT median {} vs other {}",
            ndt_india.median,
            ndt_other.median
        );
        // Nearly every Indian user above 100 ms (paper's observation).
        let above_100 = ndt_india
            .points
            .iter()
            .find(|(x, _)| *x >= 100.0)
            .map(|(_, y)| 1.0 - y)
            .unwrap_or(1.0);
        assert!(above_100 > 0.6, "share above 100 ms {above_100}");
    }

    #[test]
    fn figure12_india_loss_is_worse() {
        let ds = dataset();
        let fig = figure12(ds, &mut bb_trace::EventLog::new());
        let india = &fig.series[0];
        let rest = &fig.series[1];
        assert!(
            india.median > rest.median,
            "India loss median {} vs rest {}",
            india.median,
            rest.median
        );
    }

    #[test]
    fn india_imposes_lower_demand_than_us() {
        let ds = dataset();
        let row = india_vs_us(ds, &mut bb_trace::EventLog::new()).expect("comparison ran");
        assert!(
            row.percent_holds > 50.0,
            "India lower-demand share {}%",
            row.percent_holds
        );
    }
}
