//! Golden-file tests for the text and Markdown renderers.
//!
//! Each fixture is a small hand-built exhibit; its rendering is pinned
//! byte-for-byte against a checked-in golden file under `tests/golden/`.
//! A renderer change that alters output shows up as a readable diff in
//! the golden file rather than a silent drift in `results/` and
//! `EXPERIMENTS.md`. To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bb-report --test golden
//! ```

use bb_report::{json, markdown, text};
use bb_study::exhibit::{
    Bar, BarFigure, BarGroup, BinnedFigure, BinnedPoint, BinnedSeries, CdfFigure, CdfSeries,
    ExperimentRow, ExperimentTable,
};
use bb_study::robustness::{SurvivalCell, SurvivalMatrix, SurvivalRow};
use std::path::Path;

/// Compare `rendered` against `tests/golden/<name>`, or rewrite the file
/// when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            name
        )
    });
    assert_eq!(
        rendered, expected,
        "rendered output diverged from tests/golden/{name}; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn cdf_fixture() -> CdfFigure {
    CdfFigure {
        id: "fig_golden_cdf".into(),
        title: "Download capacity".into(),
        x_label: "Capacity (Mbps)".into(),
        log_x: true,
        series: vec![
            CdfSeries {
                label: "all users".into(),
                n: 1000,
                median: 7.4,
                points: vec![
                    (0.5, 0.05),
                    (1.0, 0.1),
                    (7.4, 0.5),
                    (30.0, 0.9),
                    (100.0, 1.0),
                ],
            },
            CdfSeries {
                label: "US only".into(),
                n: 400,
                median: 17.6,
                points: vec![(1.0, 0.02), (17.6, 0.5), (50.0, 0.95), (100.0, 1.0)],
            },
        ],
    }
}

fn binned_fixture() -> BinnedFigure {
    BinnedFigure {
        id: "fig_golden_binned".into(),
        title: "Usage vs capacity".into(),
        x_label: "Capacity (Mbps)".into(),
        y_label: "Mean demand (kbps)".into(),
        series: vec![BinnedSeries {
            label: "2013".into(),
            r_log: Some(0.913),
            points: vec![
                BinnedPoint {
                    x: 1.0,
                    mean: 110.0,
                    ci_lo: 95.0,
                    ci_hi: 125.0,
                    n: 80,
                },
                BinnedPoint {
                    x: 4.0,
                    mean: 220.0,
                    ci_lo: 200.0,
                    ci_hi: 240.0,
                    n: 200,
                },
                BinnedPoint {
                    x: 16.0,
                    mean: 430.0,
                    ci_lo: 390.0,
                    ci_hi: 470.0,
                    n: 150,
                },
            ],
        }],
    }
}

fn bar_fixture() -> BarFigure {
    BarFigure {
        id: "fig_golden_bar".into(),
        title: "Peak utilisation by tier".into(),
        y_label: "Utilisation (%)".into(),
        groups: vec![
            BarGroup {
                label: "(0, 4]".into(),
                bars: vec![
                    Bar {
                        label: "mean".into(),
                        value: 62.0,
                        ci: Some((55.0, 69.0)),
                        n: 40,
                    },
                    Bar {
                        label: "peak".into(),
                        value: 88.0,
                        ci: None,
                        n: 40,
                    },
                ],
            },
            BarGroup {
                label: "(4, 16]".into(),
                bars: vec![Bar {
                    label: "mean".into(),
                    value: 34.0,
                    ci: Some((30.0, 38.0)),
                    n: 120,
                }],
            },
        ],
    }
}

fn experiment_fixture() -> ExperimentTable {
    ExperimentTable {
        id: "table_golden".into(),
        title: "Matched capacity bins".into(),
        control_label: "Lower capacity".into(),
        treatment_label: "Higher capacity".into(),
        rows: vec![
            ExperimentRow {
                control: "(1.6, 3.2]".into(),
                treatment: "(3.2, 6.4]".into(),
                n_pairs: 412,
                percent_holds: 63.5,
                p_value: 8.25e-3,
                significant: true,
            },
            ExperimentRow {
                control: "(6.4, 12.8]".into(),
                treatment: "(12.8, 25.6]".into(),
                n_pairs: 97,
                percent_holds: 51.5,
                p_value: 0.42,
                significant: false,
            },
        ],
    }
}

fn survival_fixture() -> SurvivalMatrix {
    SurvivalMatrix {
        scenario: "poll_jitter".into(),
        severities: vec![0.0, 0.5, 1.0],
        rows: vec![
            SurvivalRow {
                experiment: "table1_movers".into(),
                cells: vec![
                    SurvivalCell {
                        severity: 0.0,
                        value: Some(63.5),
                        significant: true,
                        pairs: 412,
                    },
                    SurvivalCell {
                        severity: 0.5,
                        value: Some(58.1),
                        significant: true,
                        pairs: 377,
                    },
                    SurvivalCell {
                        severity: 1.0,
                        value: Some(51.2),
                        significant: false,
                        pairs: 242,
                    },
                ],
                direction_flip_at: None,
                significance_lost_at: Some(1.0),
                pairs_collapse_at: None,
            },
            SurvivalRow {
                experiment: "table2_dasu".into(),
                cells: vec![
                    SurvivalCell {
                        severity: 0.0,
                        value: Some(55.9),
                        significant: false,
                        pairs: 97,
                    },
                    SurvivalCell {
                        severity: 0.5,
                        value: Some(48.6),
                        significant: false,
                        pairs: 60,
                    },
                    SurvivalCell {
                        severity: 1.0,
                        value: None,
                        significant: false,
                        pairs: 0,
                    },
                ],
                direction_flip_at: Some(0.5),
                significance_lost_at: None,
                pairs_collapse_at: Some(1.0),
            },
        ],
    }
}

#[test]
fn text_cdf_matches_golden() {
    assert_golden("cdf.txt", &text::render_cdf_figure(&cdf_fixture()));
}

#[test]
fn text_binned_matches_golden() {
    assert_golden("binned.txt", &text::render_binned_figure(&binned_fixture()));
}

#[test]
fn text_bar_matches_golden() {
    assert_golden("bar.txt", &text::render_bar_figure(&bar_fixture()));
}

#[test]
fn text_experiment_matches_golden() {
    assert_golden(
        "experiment.txt",
        &text::render_experiment_table(&experiment_fixture()),
    );
}

#[test]
fn markdown_experiment_matches_golden() {
    assert_golden(
        "experiment.md",
        &markdown::experiment_table(&experiment_fixture()),
    );
}

#[test]
fn markdown_binned_matches_golden() {
    assert_golden("binned.md", &markdown::binned_figure(&binned_fixture()));
}

#[test]
fn markdown_cdf_matches_golden() {
    assert_golden("cdf.md", &markdown::cdf_figure(&cdf_fixture()));
}

#[test]
fn markdown_bar_matches_golden() {
    assert_golden("bar.md", &markdown::bar_figure(&bar_fixture()));
}

#[test]
fn markdown_survival_matches_golden() {
    assert_golden(
        "survival.md",
        &markdown::survival_matrix(&survival_fixture()),
    );
}

/// Pretty-print a JSON exhibit tree exactly as the CLI and the gateway
/// write `.json` artifacts (no trailing newline).
fn pretty(v: &serde_json::Value) -> String {
    serde_json::to_string_pretty(v).expect("serialise")
}

#[test]
fn json_cdf_matches_golden() {
    assert_golden("cdf.json", &pretty(&json::cdf_to_json(&cdf_fixture())));
}

#[test]
fn json_binned_matches_golden() {
    assert_golden(
        "binned.json",
        &pretty(&json::binned_to_json(&binned_fixture())),
    );
}

#[test]
fn json_bar_matches_golden() {
    assert_golden("bar.json", &pretty(&json::bar_to_json(&bar_fixture())));
}

#[test]
fn json_experiment_matches_golden() {
    assert_golden(
        "experiment.json",
        &pretty(&json::experiment_to_json(&experiment_fixture())),
    );
}

#[test]
fn json_survival_matches_golden() {
    assert_golden(
        "survival.json",
        &pretty(&json::survival_to_json(&survival_fixture())),
    );
}

/// The two formats of one exhibit must agree on every numeric cell:
/// each value the Markdown table prints appears verbatim in the JSON
/// tree (the fixtures use values exact at the Markdown precision, so a
/// renderer that rounds differently or reads a different field fails).
#[test]
fn json_and_markdown_agree_on_every_numeric_cell() {
    // CDF: per-series n and median.
    let cdf = cdf_fixture();
    let (md, js) = (markdown::cdf_figure(&cdf), json::cdf_to_json(&cdf));
    for (i, s) in cdf.series.iter().enumerate() {
        assert!(
            md.contains(&format!("| {} | {:.3} |", s.n, s.median)),
            "{md}"
        );
        assert_eq!(js["series"][i]["n"], s.n);
        assert_eq!(js["series"][i]["median"], s.median);
    }
    // Binned: per-bin mean, CI and n.
    let binned = binned_fixture();
    let (md, js) = (
        markdown::binned_figure(&binned),
        json::binned_to_json(&binned),
    );
    for (i, p) in binned.series[0].points.iter().enumerate() {
        assert!(
            md.contains(&format!(
                "| {:.3} | {:.4} | [{:.4}, {:.4}] | {} |",
                p.x, p.mean, p.ci_lo, p.ci_hi, p.n
            )),
            "{md}"
        );
        let cell = &js["series"][0]["points"][i];
        assert_eq!(cell["mean"], p.mean);
        assert_eq!(cell["ci_lo"], p.ci_lo);
        assert_eq!(cell["ci_hi"], p.ci_hi);
        assert_eq!(cell["n"], p.n);
    }
    // Experiment: pair counts and % holds.
    let table = experiment_fixture();
    let (md, js) = (
        markdown::experiment_table(&table),
        json::experiment_to_json(&table),
    );
    for (i, r) in table.rows.iter().enumerate() {
        assert!(
            md.contains(&format!("| {} | {:.1}%", r.n_pairs, r.percent_holds)),
            "{md}"
        );
        assert_eq!(js["rows"][i]["n_pairs"], r.n_pairs);
        assert_eq!(js["rows"][i]["percent_holds"], r.percent_holds);
    }
    // Survival: every populated cell's value and pair count.
    let matrix = survival_fixture();
    let (md, js) = (
        markdown::survival_matrix(&matrix),
        json::survival_to_json(&matrix),
    );
    for (i, row) in matrix.rows.iter().enumerate() {
        for (j, c) in row.cells.iter().enumerate() {
            let cell = &js["rows"][i]["cells"][j];
            assert_eq!(cell["pairs"], c.pairs);
            match c.value {
                Some(v) => {
                    assert!(md.contains(&format!(" {v:.1}%")), "{md}");
                    assert_eq!(cell["value"], v);
                }
                None => assert!(cell["value"].is_null()),
            }
        }
    }
}
