//! Golden-file tests for the text and Markdown renderers.
//!
//! Each fixture is a small hand-built exhibit; its rendering is pinned
//! byte-for-byte against a checked-in golden file under `tests/golden/`.
//! A renderer change that alters output shows up as a readable diff in
//! the golden file rather than a silent drift in `results/` and
//! `EXPERIMENTS.md`. To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bb-report --test golden
//! ```

use bb_report::{markdown, text};
use bb_study::exhibit::{
    Bar, BarFigure, BarGroup, BinnedFigure, BinnedPoint, BinnedSeries, CdfFigure, CdfSeries,
    ExperimentRow, ExperimentTable,
};
use std::path::Path;

/// Compare `rendered` against `tests/golden/<name>`, or rewrite the file
/// when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            name
        )
    });
    assert_eq!(
        rendered, expected,
        "rendered output diverged from tests/golden/{name}; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

fn cdf_fixture() -> CdfFigure {
    CdfFigure {
        id: "fig_golden_cdf".into(),
        title: "Download capacity".into(),
        x_label: "Capacity (Mbps)".into(),
        log_x: true,
        series: vec![
            CdfSeries {
                label: "all users".into(),
                n: 1000,
                median: 7.4,
                points: vec![
                    (0.5, 0.05),
                    (1.0, 0.1),
                    (7.4, 0.5),
                    (30.0, 0.9),
                    (100.0, 1.0),
                ],
            },
            CdfSeries {
                label: "US only".into(),
                n: 400,
                median: 17.6,
                points: vec![(1.0, 0.02), (17.6, 0.5), (50.0, 0.95), (100.0, 1.0)],
            },
        ],
    }
}

fn binned_fixture() -> BinnedFigure {
    BinnedFigure {
        id: "fig_golden_binned".into(),
        title: "Usage vs capacity".into(),
        x_label: "Capacity (Mbps)".into(),
        y_label: "Mean demand (kbps)".into(),
        series: vec![BinnedSeries {
            label: "2013".into(),
            r_log: Some(0.913),
            points: vec![
                BinnedPoint {
                    x: 1.0,
                    mean: 110.0,
                    ci_lo: 95.0,
                    ci_hi: 125.0,
                    n: 80,
                },
                BinnedPoint {
                    x: 4.0,
                    mean: 220.0,
                    ci_lo: 200.0,
                    ci_hi: 240.0,
                    n: 200,
                },
                BinnedPoint {
                    x: 16.0,
                    mean: 430.0,
                    ci_lo: 390.0,
                    ci_hi: 470.0,
                    n: 150,
                },
            ],
        }],
    }
}

fn bar_fixture() -> BarFigure {
    BarFigure {
        id: "fig_golden_bar".into(),
        title: "Peak utilisation by tier".into(),
        y_label: "Utilisation (%)".into(),
        groups: vec![
            BarGroup {
                label: "(0, 4]".into(),
                bars: vec![
                    Bar {
                        label: "mean".into(),
                        value: 62.0,
                        ci: Some((55.0, 69.0)),
                        n: 40,
                    },
                    Bar {
                        label: "peak".into(),
                        value: 88.0,
                        ci: None,
                        n: 40,
                    },
                ],
            },
            BarGroup {
                label: "(4, 16]".into(),
                bars: vec![Bar {
                    label: "mean".into(),
                    value: 34.0,
                    ci: Some((30.0, 38.0)),
                    n: 120,
                }],
            },
        ],
    }
}

fn experiment_fixture() -> ExperimentTable {
    ExperimentTable {
        id: "table_golden".into(),
        title: "Matched capacity bins".into(),
        control_label: "Lower capacity".into(),
        treatment_label: "Higher capacity".into(),
        rows: vec![
            ExperimentRow {
                control: "(1.6, 3.2]".into(),
                treatment: "(3.2, 6.4]".into(),
                n_pairs: 412,
                percent_holds: 63.5,
                p_value: 8.25e-3,
                significant: true,
            },
            ExperimentRow {
                control: "(6.4, 12.8]".into(),
                treatment: "(12.8, 25.6]".into(),
                n_pairs: 97,
                percent_holds: 51.5,
                p_value: 0.42,
                significant: false,
            },
        ],
    }
}

#[test]
fn text_cdf_matches_golden() {
    assert_golden("cdf.txt", &text::render_cdf_figure(&cdf_fixture()));
}

#[test]
fn text_binned_matches_golden() {
    assert_golden("binned.txt", &text::render_binned_figure(&binned_fixture()));
}

#[test]
fn text_bar_matches_golden() {
    assert_golden("bar.txt", &text::render_bar_figure(&bar_fixture()));
}

#[test]
fn text_experiment_matches_golden() {
    assert_golden(
        "experiment.txt",
        &text::render_experiment_table(&experiment_fixture()),
    );
}

#[test]
fn markdown_experiment_matches_golden() {
    assert_golden(
        "experiment.md",
        &markdown::experiment_table(&experiment_fixture()),
    );
}

#[test]
fn markdown_binned_matches_golden() {
    assert_golden("binned.md", &markdown::binned_figure(&binned_fixture()));
}
