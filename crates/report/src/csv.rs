//! CSV export of exhibits.
//!
//! Each exhibit kind maps to a flat CSV with a stable header so downstream
//! plotting tools (gnuplot, pandas) can regenerate the paper's figures
//! pixel-for-pixel from the repository's output directory.

use bb_study::exhibit::{BarFigure, BinnedFigure, CdfFigure, ExperimentTable};
use std::fmt::Write as _;

/// Escape one CSV field (quotes fields containing separators or quotes).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// CDF figure → `series,x,cdf` rows.
pub fn cdf_to_csv(f: &CdfFigure) -> String {
    let mut out = String::from("series,x,cdf\n");
    for s in &f.series {
        for (x, y) in &s.points {
            let _ = writeln!(out, "{},{x},{y}", field(&s.label));
        }
    }
    out
}

/// Binned figure → `series,x,mean,ci_lo,ci_hi,n` rows.
pub fn binned_to_csv(f: &BinnedFigure) -> String {
    let mut out = String::from("series,x,mean,ci_lo,ci_hi,n\n");
    for s in &f.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                field(&s.label),
                p.x,
                p.mean,
                p.ci_lo,
                p.ci_hi,
                p.n
            );
        }
    }
    out
}

/// Experiment table → `control,treatment,n_pairs,percent_holds,p_value,significant` rows.
pub fn experiment_to_csv(t: &ExperimentTable) -> String {
    let mut out = String::from("control,treatment,n_pairs,percent_holds,p_value,significant\n");
    for r in &t.rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            field(&r.control),
            field(&r.treatment),
            r.n_pairs,
            r.percent_holds,
            r.p_value,
            r.significant
        );
    }
    out
}

/// Bar figure → `group,bar,value,ci_lo,ci_hi,n` rows.
pub fn bar_to_csv(f: &BarFigure) -> String {
    let mut out = String::from("group,bar,value,ci_lo,ci_hi,n\n");
    for g in &f.groups {
        for b in &g.bars {
            let (lo, hi) = b.ci.unwrap_or((f64::NAN, f64::NAN));
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                field(&g.label),
                field(&b.label),
                b.value,
                lo,
                hi,
                b.n
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_study::exhibit::*;

    #[test]
    fn cdf_rows() {
        let f = CdfFigure {
            id: "x".into(),
            title: "t".into(),
            x_label: "x".into(),
            log_x: false,
            series: vec![CdfSeries {
                label: "a,b".into(), // needs quoting
                n: 2,
                median: 1.5,
                points: vec![(1.0, 0.5), (2.0, 1.0)],
            }],
        };
        let csv = cdf_to_csv(&f);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,cdf");
        assert_eq!(lines[1], "\"a,b\",1,0.5");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn experiment_rows() {
        let t = ExperimentTable {
            id: "t1".into(),
            title: "T".into(),
            control_label: "c".into(),
            treatment_label: "t".into(),
            rows: vec![ExperimentRow {
                control: "(0, 64]".into(),
                treatment: "(64, 128]".into(),
                n_pairs: 10,
                percent_holds: 63.5,
                p_value: 0.00825,
                significant: true,
            }],
        };
        let csv = experiment_to_csv(&t);
        assert!(
            csv.contains("\"(0, 64]\",\"(64, 128]\",10,63.5,0.00825,true"),
            "{csv}"
        );
    }

    #[test]
    fn quoting_rules() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn bar_rows_handle_missing_ci() {
        let f = BarFigure {
            id: "b".into(),
            title: "B".into(),
            y_label: "y".into(),
            groups: vec![BarGroup {
                label: "g".into(),
                bars: vec![Bar {
                    label: "x".into(),
                    value: 2.0,
                    ci: None,
                    n: 5,
                }],
            }],
        };
        let csv = bar_to_csv(&f);
        assert!(csv.contains("g,x,2,NaN,NaN,5"));
    }
}
