//! The streaming run's exhibit bundle, as one shared file set.
//!
//! The batch CLI (`reproduce --users U`) and the serve gateway's job
//! runner both publish the same artifacts for a streaming study: per
//! Fig. 1/Fig. 7 panel a text render, a CSV, a gnuplot script and a
//! JSON document; per Fig. 2 panel the same minus the gnuplot script.
//! Keeping the file list (names, contents, order) in one place is what
//! makes the serve cache's byte-identity guarantee cheap: both paths
//! call [`stream_exhibit_files`] and diverge only in where the bytes
//! land (a directory vs. a cache entry).

use crate::{csv, gnuplot, json, markdown, text};
use bb_study::StreamStudy;

/// Render a pretty JSON document, which cannot fail for exhibit trees.
fn pretty(v: &serde_json::Value) -> String {
    serde_json::to_string_pretty(v).expect("serialise")
}

/// The full streaming exhibit bundle as `(file name, contents)` pairs,
/// in the batch CLI's write order: Fig. 1 then Fig. 7 panels
/// (`.txt`/`.csv`/`.gp`/`.json` each), then Fig. 2 panels
/// (`.txt`/`.csv`/`.json` — binned panels carry their CI in the data
/// files, no gnuplot script).
pub fn stream_exhibit_files(study: &StreamStudy) -> Vec<(String, String)> {
    let mut files = Vec::new();
    for f in study.figure1().iter().chain(study.figure7().iter()) {
        files.push((format!("{}.txt", f.id), text::render_cdf_figure(f)));
        files.push((format!("{}.csv", f.id), csv::cdf_to_csv(f)));
        files.push((format!("{}.gp", f.id), gnuplot::cdf_script(f)));
        files.push((format!("{}.json", f.id), pretty(&json::cdf_to_json(f))));
    }
    for f in &study.figure2() {
        files.push((format!("{}.txt", f.id), text::render_binned_figure(f)));
        files.push((format!("{}.csv", f.id), csv::binned_to_csv(f)));
        files.push((format!("{}.json", f.id), pretty(&json::binned_to_json(f))));
    }
    files
}

/// The exhibit ids the streaming bundle can serve, in bundle order.
pub fn stream_exhibit_ids(study: &StreamStudy) -> Vec<String> {
    study
        .figure1()
        .iter()
        .chain(study.figure7().iter())
        .map(|f| f.id.clone())
        .chain(study.figure2().iter().map(|f| f.id.clone()))
        .collect()
}

/// One exhibit as Markdown, or `None` for an unknown id. The gateway's
/// `GET /exhibits/{id}` uses this for its human-readable content type.
pub fn stream_exhibit_markdown(study: &StreamStudy, id: &str) -> Option<String> {
    if let Some(f) = study
        .figure1()
        .iter()
        .chain(study.figure7().iter())
        .find(|f| f.id == id)
    {
        return Some(markdown::cdf_figure(f));
    }
    study
        .figure2()
        .iter()
        .find(|f| f.id == id)
        .map(markdown::binned_figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_matches_the_id_list_and_file_multiplicity() {
        let study = StreamStudy::new();
        let ids = stream_exhibit_ids(&study);
        assert_eq!(ids.len(), 9, "fig1a-c, fig7a-b, fig2a-d: {ids:?}");
        let files = stream_exhibit_files(&study);
        // 5 CDF panels × 4 files + 4 binned panels × 3 files.
        assert_eq!(files.len(), 5 * 4 + 4 * 3);
        for id in &ids {
            assert!(files.iter().any(|(name, _)| name == &format!("{id}.txt")));
            assert!(files.iter().any(|(name, _)| name == &format!("{id}.json")));
            assert!(stream_exhibit_markdown(&study, id).is_some());
        }
        assert!(stream_exhibit_markdown(&study, "fig99").is_none());
    }
}
