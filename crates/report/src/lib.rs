//! # bb-report — rendering study exhibits
//!
//! Renders the typed exhibits of `bb-study` as monospace text (tables,
//! CDF/series plots), CSV, JSON, and gnuplot scripts — everything the
//! `reproduce` harness needs to regenerate the paper's results in a
//! terminal, on disk, and as publication-style PNGs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod csv;
pub mod gnuplot;
pub mod json;
pub mod markdown;
pub mod text;

pub use text::{
    render_bar_figure, render_binned_figure, render_cdf_figure, render_experiment_table,
};
