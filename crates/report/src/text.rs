//! Monospace text rendering.

use bb_study::exhibit::{BarFigure, BinnedFigure, CdfFigure, ExperimentTable};
use std::fmt::Write as _;

/// Width of the plot area in characters.
const PLOT_WIDTH: usize = 60;
/// Height of the plot area in rows.
const PLOT_HEIGHT: usize = 16;

/// Render an experiment table in the paper's layout:
/// control | treatment | % H holds | p-value (asterisk = not significant).
pub fn render_experiment_table(t: &ExperimentTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", t.title, t.id);
    let c_w = t
        .rows
        .iter()
        .map(|r| r.control.len())
        .chain([t.control_label.len()])
        .max()
        .unwrap_or(8);
    let tr_w = t
        .rows
        .iter()
        .map(|r| r.treatment.len())
        .chain([t.treatment_label.len()])
        .max()
        .unwrap_or(8);
    let _ = writeln!(
        out,
        "{:<c_w$}  {:<tr_w$}  {:>7}  {:>10}  {:>6}",
        t.control_label, t.treatment_label, "pairs", "% H holds", "p"
    );
    for r in &t.rows {
        let _ = writeln!(
            out,
            "{:<c_w$}  {:<tr_w$}  {:>7}  {:>9.1}%{}  {:>.3e}",
            r.control,
            r.treatment,
            r.n_pairs,
            r.percent_holds,
            r.asterisk(),
            r.p_value
        );
    }
    if t.rows.is_empty() {
        let _ = writeln!(out, "(no rows: not enough matched pairs)");
    }
    out
}

/// Map a value to a column, linearly or logarithmically.
fn to_col(v: f64, lo: f64, hi: f64, log: bool) -> usize {
    let (v, lo, hi) = if log {
        (v.max(1e-12).ln(), lo.max(1e-12).ln(), hi.max(1e-12).ln())
    } else {
        (v, lo, hi)
    };
    if hi <= lo {
        return 0;
    }
    (((v - lo) / (hi - lo)) * (PLOT_WIDTH - 1) as f64)
        .round()
        .clamp(0.0, (PLOT_WIDTH - 1) as f64) as usize
}

/// Render a CDF figure as an ASCII plot: y is F(x) from 0 to 1, one glyph
/// per series.
pub fn render_cdf_figure(f: &CdfFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", f.title, f.id);
    if f.series.is_empty() {
        let _ = writeln!(out, "(no series)");
        return out;
    }
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let lo = f
        .series
        .iter()
        .filter_map(|s| s.points.first())
        .map(|p| p.0)
        .fold(f64::INFINITY, f64::min);
    let hi = f
        .series
        .iter()
        .filter_map(|s| s.points.last())
        .map(|p| p.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut grid = vec![vec![' '; PLOT_WIDTH]; PLOT_HEIGHT];
    for (si, series) in f.series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in &series.points {
            let col = to_col(x, lo, hi, f.log_x);
            let row = ((1.0 - y) * (PLOT_HEIGHT - 1) as f64)
                .round()
                .clamp(0.0, (PLOT_HEIGHT - 1) as f64) as usize;
            grid[row][col] = glyph;
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y = 1.0 - i as f64 / (PLOT_HEIGHT - 1) as f64;
        let _ = writeln!(out, "{y:>4.2} |{}|", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "      {:<28}{:>31}", format_num(lo), format_num(hi));
    let _ = writeln!(
        out,
        "      x: {}{}",
        f.x_label,
        if f.log_x { " (log)" } else { "" }
    );
    for (si, s) in f.series.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {} {} (n = {}, median = {})",
            glyphs[si % glyphs.len()],
            s.label,
            s.n,
            format_num(s.median)
        );
    }
    out
}

/// Render a binned figure as a table of per-bin means with CIs, one block
/// per series (a text table is more faithful than ASCII art for error-bar
/// figures).
pub fn render_binned_figure(f: &BinnedFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", f.title, f.id);
    let _ = writeln!(out, "   x = {}, y = {}", f.x_label, f.y_label);
    for s in &f.series {
        match s.r_log {
            Some(r) => {
                let _ = writeln!(out, "  series {} (r = {:.3}):", s.label, r);
            }
            None => {
                let _ = writeln!(out, "  series {}:", s.label);
            }
        }
        let _ = writeln!(
            out,
            "    {:>12}  {:>12}  {:>26}  {:>6}",
            "x", "mean", "95% CI", "n"
        );
        for p in &s.points {
            let _ = writeln!(
                out,
                "    {:>12}  {:>12}  [{:>11}, {:>11}]  {:>6}",
                format_num(p.x),
                format_num(p.mean),
                format_num(p.ci_lo),
                format_num(p.ci_hi),
                p.n
            );
        }
    }
    out
}

/// Render a bar figure as an indented list with bar lengths.
pub fn render_bar_figure(f: &BarFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} [{}] ==", f.title, f.id);
    let _ = writeln!(out, "   y = {}", f.y_label);
    let max_abs = f
        .groups
        .iter()
        .flat_map(|g| g.bars.iter())
        .map(|b| b.value.abs())
        .fold(0.0, f64::max)
        .max(1e-12);
    for g in &f.groups {
        let _ = writeln!(out, "  {}:", g.label);
        for b in &g.bars {
            let len = ((b.value.abs() / max_abs) * 30.0).round() as usize;
            let bar: String = std::iter::repeat_n('#', len).collect();
            let sign = if b.value < 0.0 { "-" } else { " " };
            let ci = match b.ci {
                Some((lo, hi)) => format!(" CI [{}, {}]", format_num(lo), format_num(hi)),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "    {:<22} {sign}{bar:<30} {}{} (n = {})",
                b.label,
                format_num(b.value),
                ci,
                b.n
            );
        }
    }
    out
}

/// Compact number formatting for axis annotations.
pub fn format_num(v: f64) -> String {
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e4).contains(&a) {
        format!("{v:.2e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_study::exhibit::*;

    fn table() -> ExperimentTable {
        ExperimentTable {
            id: "t".into(),
            title: "Test".into(),
            control_label: "Control".into(),
            treatment_label: "Treatment".into(),
            rows: vec![
                ExperimentRow {
                    control: "(0.4, 0.8]".into(),
                    treatment: "(0.8, 1.6]".into(),
                    n_pairs: 320,
                    percent_holds: 59.9,
                    p_value: 8.01e-8,
                    significant: true,
                },
                ExperimentRow {
                    control: "(12.8, 25.6]".into(),
                    treatment: "(25.6, 51.2]".into(),
                    n_pairs: 210,
                    percent_holds: 52.9,
                    p_value: 0.31,
                    significant: false,
                },
            ],
        }
    }

    #[test]
    fn experiment_table_renders_asterisks() {
        let s = render_experiment_table(&table());
        assert!(s.contains("59.9%"), "{s}");
        assert!(s.contains("52.9%*"), "{s}");
        assert!(
            s.contains("8.01") && s.contains("e-8") || s.contains("e-08"),
            "{s}"
        );
    }

    #[test]
    fn empty_table_is_flagged() {
        let t = ExperimentTable {
            rows: vec![],
            ..table()
        };
        assert!(render_experiment_table(&t).contains("no rows"));
    }

    #[test]
    fn cdf_plot_has_axes_and_legend() {
        let fig = CdfFigure {
            id: "f".into(),
            title: "A CDF".into(),
            x_label: "Mbps".into(),
            log_x: true,
            series: vec![CdfSeries {
                label: "all".into(),
                n: 100,
                median: 5.0,
                points: (1..=100).map(|i| (i as f64, i as f64 / 100.0)).collect(),
            }],
        };
        let s = render_cdf_figure(&fig);
        assert!(s.contains("1.00 |"), "{s}");
        assert!(s.contains("0.00 |"), "{s}");
        assert!(s.contains("median = 5.00"), "{s}");
        assert!(s.contains("(log)"));
    }

    #[test]
    fn binned_figure_lists_bins() {
        let fig = BinnedFigure {
            id: "b".into(),
            title: "Binned".into(),
            x_label: "Capacity".into(),
            y_label: "Usage".into(),
            series: vec![BinnedSeries {
                label: "s1".into(),
                r_log: Some(0.87),
                points: vec![BinnedPoint {
                    x: 1.0,
                    mean: 0.2,
                    ci_lo: 0.15,
                    ci_hi: 0.25,
                    n: 42,
                }],
            }],
        };
        let s = render_binned_figure(&fig);
        assert!(s.contains("r = 0.870"), "{s}");
        assert!(s.contains("42"));
    }

    #[test]
    fn bar_figure_draws_bars() {
        let fig = BarFigure {
            id: "bar".into(),
            title: "Bars".into(),
            y_label: "Mbps".into(),
            groups: vec![BarGroup {
                label: "g".into(),
                bars: vec![Bar {
                    label: "b".into(),
                    value: 1.0,
                    ci: Some((0.8, 1.2)),
                    n: 10,
                }],
            }],
        };
        let s = render_bar_figure(&fig);
        assert!(s.contains("##"), "{s}");
        assert!(s.contains("CI ["));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(123456.0), "1.23e5");
        assert_eq!(format_num(512.0), "512");
        assert_eq!(format_num(7.4), "7.40");
        assert_eq!(format_num(0.0123), "0.0123");
    }
}
