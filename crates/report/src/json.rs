//! JSON export of exhibits (via `serde_json`).
//!
//! The exhibit types in `bb-study` are plain data but deliberately free of
//! serde derives (the analysis crate has no serialisation concern); this
//! module maps them onto `serde_json::Value` trees with stable field names.

use bb_study::exhibit::{BarFigure, BinnedFigure, CdfFigure, ExperimentTable};
use bb_study::robustness::SurvivalMatrix;
use serde_json::{json, Value};

/// CDF figure as JSON.
pub fn cdf_to_json(f: &CdfFigure) -> Value {
    json!({
        "kind": "cdf",
        "id": f.id,
        "title": f.title,
        "x_label": f.x_label,
        "log_x": f.log_x,
        "series": f.series.iter().map(|s| json!({
            "label": s.label,
            "n": s.n,
            "median": s.median,
            "points": s.points,
        })).collect::<Vec<_>>(),
    })
}

/// Binned figure as JSON.
pub fn binned_to_json(f: &BinnedFigure) -> Value {
    json!({
        "kind": "binned",
        "id": f.id,
        "title": f.title,
        "x_label": f.x_label,
        "y_label": f.y_label,
        "series": f.series.iter().map(|s| json!({
            "label": s.label,
            "r_log": s.r_log,
            "points": s.points.iter().map(|p| json!({
                "x": p.x, "mean": p.mean, "ci_lo": p.ci_lo, "ci_hi": p.ci_hi, "n": p.n,
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    })
}

/// Experiment table as JSON.
pub fn experiment_to_json(t: &ExperimentTable) -> Value {
    json!({
        "kind": "experiment",
        "id": t.id,
        "title": t.title,
        "rows": t.rows.iter().map(|r| json!({
            "control": r.control,
            "treatment": r.treatment,
            "n_pairs": r.n_pairs,
            "percent_holds": r.percent_holds,
            "p_value": r.p_value,
            "significant": r.significant,
        })).collect::<Vec<_>>(),
    })
}

/// Bar figure as JSON.
pub fn bar_to_json(f: &BarFigure) -> Value {
    json!({
        "kind": "bars",
        "id": f.id,
        "title": f.title,
        "y_label": f.y_label,
        "groups": f.groups.iter().map(|g| json!({
            "label": g.label,
            "bars": g.bars.iter().map(|b| json!({
                "label": b.label,
                "value": b.value,
                "ci": b.ci.map(|(lo, hi)| vec![lo, hi]),
                "n": b.n,
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    })
}

/// Round to 4 decimals, matching both `SurvivalMatrix::to_json` and the
/// Markdown render — the invariant the golden tests pin is that every
/// numeric cell agrees between the two formats.
fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// Survival matrix as JSON. Field names and rounding mirror
/// `SurvivalMatrix::to_json` (the deterministic string form used by
/// `--chaos-sweep` artifacts); this renderer produces a `serde_json`
/// tree so the serve gateway can embed matrices in larger responses.
pub fn survival_to_json(m: &SurvivalMatrix) -> Value {
    json!({
        "kind": "survival",
        "scenario": m.scenario,
        "severities": m.severities.iter().map(|&s| round4(s)).collect::<Vec<_>>(),
        "rows": m.rows.iter().map(|r| json!({
            "experiment": r.experiment,
            "cells": r.cells.iter().map(|c| json!({
                "severity": round4(c.severity),
                "value": c.value.map(round4),
                "significant": c.significant,
                "pairs": c.pairs,
            })).collect::<Vec<_>>(),
            "direction_flip_at": r.direction_flip_at.map(round4),
            "significance_lost_at": r.significance_lost_at.map(round4),
            "pairs_collapse_at": r.pairs_collapse_at.map(round4),
        })).collect::<Vec<_>>(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_study::exhibit::*;

    #[test]
    fn cdf_round_trips_through_serde() {
        let f = CdfFigure {
            id: "fig1a".into(),
            title: "Capacity".into(),
            x_label: "Mbps".into(),
            log_x: true,
            series: vec![CdfSeries {
                label: "all".into(),
                n: 3,
                median: 2.0,
                points: vec![(1.0, 0.33), (2.0, 0.66), (3.0, 1.0)],
            }],
        };
        let v = cdf_to_json(&f);
        assert_eq!(v["id"], "fig1a");
        assert_eq!(v["series"][0]["n"], 3);
        assert_eq!(v["series"][0]["points"][2][1], 1.0);
        // It serialises to a string and parses back.
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn experiment_json_fields() {
        let t = ExperimentTable {
            id: "table7".into(),
            title: "latency".into(),
            control_label: "c".into(),
            treatment_label: "t".into(),
            rows: vec![ExperimentRow {
                control: "(512, 2048]".into(),
                treatment: "(0, 64]".into(),
                n_pairs: 100,
                percent_holds: 63.5,
                p_value: 0.00825,
                significant: true,
            }],
        };
        let v = experiment_to_json(&t);
        assert_eq!(v["rows"][0]["percent_holds"], 63.5);
        assert_eq!(v["rows"][0]["significant"], true);
    }

    #[test]
    fn bar_json_null_ci() {
        let f = BarFigure {
            id: "f9".into(),
            title: "b".into(),
            y_label: "Mbps".into(),
            groups: vec![BarGroup {
                label: "US 8-16".into(),
                bars: vec![Bar {
                    label: "8-16".into(),
                    value: 1.2,
                    ci: None,
                    n: 40,
                }],
            }],
        };
        let v = bar_to_json(&f);
        assert!(v["groups"][0]["bars"][0]["ci"].is_null());
    }
}
