//! Markdown rendering of exhibits.
//!
//! `EXPERIMENTS.md` and the harness's comparison report are Markdown;
//! this module renders exhibits as GitHub-flavoured tables so those
//! documents can embed any exhibit without hand-formatting.

use bb_study::exhibit::{BinnedFigure, ExperimentTable};
use bb_study::robustness::SweepRow;
use std::fmt::Write as _;

/// Escape a cell for a Markdown table.
fn cell(s: &str) -> String {
    s.replace('|', "\\|")
}

/// Experiment table → Markdown.
pub fn experiment_table(t: &ExperimentTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {} | {} | pairs | % H holds | p-value |",
        cell(&t.control_label),
        cell(&t.treatment_label)
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in &t.rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.1}%{} | {:.3e} |",
            cell(&r.control),
            cell(&r.treatment),
            r.n_pairs,
            r.percent_holds,
            r.asterisk(),
            r.p_value
        );
    }
    out
}

/// Binned figure → Markdown (one table per series).
pub fn binned_figure(f: &BinnedFigure) -> String {
    let mut out = String::new();
    for s in &f.series {
        match s.r_log {
            Some(r) => {
                let _ = writeln!(out, "**{}** (r = {:.3})\n", cell(&s.label), r);
            }
            None => {
                let _ = writeln!(out, "**{}**\n", cell(&s.label));
            }
        }
        let _ = writeln!(
            out,
            "| {} | mean {} | 95% CI | n |",
            cell(&f.x_label),
            cell(&f.y_label)
        );
        let _ = writeln!(out, "|---|---|---|---|");
        for p in &s.points {
            let _ = writeln!(
                out,
                "| {:.3} | {:.4} | [{:.4}, {:.4}] | {} |",
                p.x, p.mean, p.ci_lo, p.ci_hi, p.n
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Robustness sweep → Markdown.
pub fn sweep_table(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| experiment | runs | min % | mean % | max % | significant | pairs |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1} | {:.1} | {:.1} | {}/{} | {} |",
            cell(&r.experiment),
            r.n_runs,
            r.min,
            r.mean,
            r.max,
            r.n_significant,
            r.n_runs,
            r.total_pairs
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_study::exhibit::*;

    #[test]
    fn experiment_markdown_shape() {
        let t = ExperimentTable {
            id: "x".into(),
            title: "T".into(),
            control_label: "Control".into(),
            treatment_label: "Treatment".into(),
            rows: vec![ExperimentRow {
                control: "(0, 64]".into(),
                treatment: "(64, 128]".into(),
                n_pairs: 42,
                percent_holds: 63.5,
                p_value: 8.25e-3,
                significant: true,
            }],
        };
        let md = experiment_table(&t);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("| 42 | 63.5% | 8.250e-3 |"), "{md}");
    }

    #[test]
    fn pipes_are_escaped() {
        let t = ExperimentTable {
            id: "x".into(),
            title: "T".into(),
            control_label: "a|b".into(),
            treatment_label: "t".into(),
            rows: vec![],
        };
        assert!(experiment_table(&t).contains("a\\|b"));
    }

    #[test]
    fn binned_markdown_carries_r() {
        let f = BinnedFigure {
            id: "f".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![BinnedSeries {
                label: "s".into(),
                r_log: Some(0.87),
                points: vec![BinnedPoint {
                    x: 1.0,
                    mean: 2.0,
                    ci_lo: 1.5,
                    ci_hi: 2.5,
                    n: 9,
                }],
            }],
        };
        let md = binned_figure(&f);
        assert!(md.contains("r = 0.870"));
        assert!(md.contains("| 1.000 | 2.0000 | [1.5000, 2.5000] | 9 |"));
    }

    #[test]
    fn sweep_markdown() {
        let rows = vec![bb_study::robustness::SweepRow {
            experiment: "table1".into(),
            n_runs: 3,
            min: 60.0,
            mean: 65.0,
            max: 70.0,
            n_significant: 3,
            total_pairs: 300,
        }];
        let md = sweep_table(&rows);
        assert!(md.contains("| table1 | 3 | 60.0 | 65.0 | 70.0 | 3/3 | 300 |"));
    }
}
