//! Markdown rendering of exhibits.
//!
//! `EXPERIMENTS.md` and the harness's comparison report are Markdown;
//! this module renders exhibits as GitHub-flavoured tables so those
//! documents can embed any exhibit without hand-formatting.

use bb_study::exhibit::{BarFigure, BinnedFigure, CdfFigure, ExperimentTable};
use bb_study::robustness::{SurvivalMatrix, SweepRow};
use bb_trace::{Event, EventLog, Value};
use std::fmt::Write as _;

/// Escape a cell for a Markdown table.
fn cell(s: &str) -> String {
    s.replace('|', "\\|")
}

/// The percentile columns of [`cdf_figure`].
const CDF_PERCENTILES: [u32; 5] = [10, 25, 50, 75, 90];

/// CDF figure → Markdown: one row per series with n, median, and the
/// x-values at a fixed percentile grid (the first recorded point whose
/// cumulative fraction reaches the percentile). A summary table rather
/// than a point dump — the full resolution lives in the CSV/JSON
/// renders; Markdown is for humans and HTTP responses.
pub fn cdf_figure(f: &CdfFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "**{}** — {}{}\n",
        cell(&f.title),
        cell(&f.x_label),
        if f.log_x { " (log x)" } else { "" }
    );
    let mut header = String::from("| series | n | median |");
    let mut rule = String::from("|---|---|---|");
    for p in CDF_PERCENTILES {
        let _ = write!(header, " p{p} |");
        rule.push_str("---|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    for s in &f.series {
        let _ = write!(out, "| {} | {} | {:.3} |", cell(&s.label), s.n, s.median);
        for p in CDF_PERCENTILES {
            let q = f64::from(p) / 100.0;
            let x = s
                .points
                .iter()
                .find(|(_, frac)| *frac >= q)
                .or(s.points.last())
                .map(|(x, _)| *x);
            match x {
                Some(x) => {
                    let _ = write!(out, " {x:.3} |");
                }
                None => {
                    let _ = write!(out, " — |");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Bar figure → Markdown: one row per bar, grouped in figure order.
pub fn bar_figure(f: &BarFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "**{}**\n", cell(&f.title));
    let _ = writeln!(out, "| group | bar | {} | 95% CI | n |", cell(&f.y_label));
    let _ = writeln!(out, "|---|---|---|---|---|");
    for g in &f.groups {
        for b in &g.bars {
            let ci =
                b.ci.map(|(lo, hi)| format!("[{lo:.3}, {hi:.3}]"))
                    .unwrap_or_else(|| "—".into());
            let _ = writeln!(
                out,
                "| {} | {} | {:.3} | {ci} | {} |",
                cell(&g.label),
                cell(&b.label),
                b.value,
                b.n
            );
        }
    }
    out
}

/// Experiment table → Markdown.
pub fn experiment_table(t: &ExperimentTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {} | {} | pairs | % H holds | p-value |",
        cell(&t.control_label),
        cell(&t.treatment_label)
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for r in &t.rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.1}%{} | {:.3e} |",
            cell(&r.control),
            cell(&r.treatment),
            r.n_pairs,
            r.percent_holds,
            r.asterisk(),
            r.p_value
        );
    }
    out
}

/// Binned figure → Markdown (one table per series).
pub fn binned_figure(f: &BinnedFigure) -> String {
    let mut out = String::new();
    for s in &f.series {
        match s.r_log {
            Some(r) => {
                let _ = writeln!(out, "**{}** (r = {:.3})\n", cell(&s.label), r);
            }
            None => {
                let _ = writeln!(out, "**{}**\n", cell(&s.label));
            }
        }
        let _ = writeln!(
            out,
            "| {} | mean {} | 95% CI | n |",
            cell(&f.x_label),
            cell(&f.y_label)
        );
        let _ = writeln!(out, "|---|---|---|---|");
        for p in &s.points {
            let _ = writeln!(
                out,
                "| {:.3} | {:.4} | [{:.4}, {:.4}] | {} |",
                p.x, p.mean, p.ci_lo, p.ci_hi, p.n
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Robustness sweep → Markdown.
pub fn sweep_table(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| experiment | runs | min % | mean % | max % | significant | pairs |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1} | {:.1} | {:.1} | {}/{} | {} |",
            cell(&r.experiment),
            r.n_runs,
            r.min,
            r.mean,
            r.max,
            r.n_significant,
            r.n_runs,
            r.total_pairs
        );
    }
    out
}

/// Chaos survival matrix → Markdown: one row per experiment, one value
/// cell per severity (`% H holds (pairs)`, starred when significant),
/// then the three survival thresholds. An em-dash threshold means the
/// finding survived the whole grid.
pub fn survival_matrix(m: &SurvivalMatrix) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scenario: `{}` — severity grid {:?}. Cells are \"% H holds (pairs)\"; `*` marks a significant result, `—` a finding that survived the whole grid.",
        m.scenario, m.severities
    );
    let _ = writeln!(out);
    let mut header = String::from("| experiment |");
    let mut rule = String::from("|---|");
    for s in &m.severities {
        let _ = write!(header, " s={s} |");
        rule.push_str("---|");
    }
    header.push_str(" flips at | sig. lost at | pairs gone at |");
    rule.push_str("---|---|---|");
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    let threshold = |t: Option<f64>| t.map_or_else(|| "—".to_string(), |s| format!("{s}"));
    for row in &m.rows {
        let _ = write!(out, "| {} |", cell(&row.experiment));
        for c in &row.cells {
            match c.value {
                Some(v) => {
                    let star = if c.significant { "\\*" } else { "" };
                    let _ = write!(out, " {v:.1}%{star} ({}) |", c.pairs);
                }
                None => {
                    let _ = write!(out, " — |");
                }
            }
        }
        let _ = writeln!(
            out,
            " {} | {} | {} |",
            threshold(row.direction_flip_at),
            threshold(row.significance_lost_at),
            threshold(row.pairs_collapse_at)
        );
    }
    out
}

/// A ledger value as a short Markdown cell.
fn value_cell(v: &Value) -> String {
    match v {
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => {
            if x.is_finite() {
                format!("{x:.3e}")
            } else {
                "—".into()
            }
        }
        Value::Str(s) => cell(s),
        Value::Bool(b) => b.to_string(),
        Value::Hist(h) => format!("n={} (≤0: {})", h.count(), h.nonpositive()),
        Value::Counts(pairs) => {
            let parts: Vec<String> = pairs
                .iter()
                .map(|(label, count)| format!("{}: {count}", cell(label)))
                .collect();
            if parts.is_empty() {
                "—".into()
            } else {
                parts.join(", ")
            }
        }
    }
}

/// Look up `key` on `event`, rendering missing fields as an em-dash.
fn field(event: &Event, key: &str) -> String {
    event.get(key).map(value_cell).unwrap_or_else(|| "—".into())
}

/// Provenance ledger → Markdown appendix: matching audits, sign tests,
/// and per-exhibit input/drop accounting, in ledger (= exhibit) order.
pub fn provenance(log: &EventLog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Provenance\n");
    let _ = writeln!(
        out,
        "Every row below is recorded in the `--ledger` event log while the"
    );
    let _ = writeln!(
        out,
        "exhibits are computed; the log is byte-identical for any shard/thread plan.\n"
    );

    let audits: Vec<&Event> = log.events().filter(|e| e.kind() == "match_audit").collect();
    if !audits.is_empty() {
        let _ = writeln!(out, "### Matching audits\n");
        let _ = writeln!(
            out,
            "| exhibit | experiment | control pool | treated | eligible | pairs | unmatched | caliper rejections |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for e in &audits {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                field(e, "exhibit"),
                field(e, "experiment"),
                field(e, "control_pool"),
                field(e, "treated_considered"),
                field(e, "candidates_eligible"),
                field(e, "pairs_formed"),
                field(e, "treated_unmatched"),
                field(e, "caliper_rejections"),
            );
        }
        let _ = writeln!(out);
    }

    let tests: Vec<&Event> = log.events().filter(|e| e.kind() == "sign_test").collect();
    if !tests.is_empty() {
        let _ = writeln!(out, "### Sign tests\n");
        let _ = writeln!(
            out,
            "| exhibit | experiment | n | positives | ties | p-value | direction | kept |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for e in &tests {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                field(e, "exhibit"),
                field(e, "experiment"),
                field(e, "n"),
                field(e, "positives"),
                field(e, "ties"),
                field(e, "p_value"),
                field(e, "direction"),
                field(e, "kept"),
            );
        }
        let _ = writeln!(out);
    }

    let exhibits: Vec<&Event> = log.events().filter(|e| e.kind() == "exhibit").collect();
    if !exhibits.is_empty() {
        let _ = writeln!(out, "### Exhibit inputs\n");
        let _ = writeln!(out, "| exhibit | accounting |");
        let _ = writeln!(out, "|---|---|");
        for e in &exhibits {
            let rest: Vec<String> = e
                .fields()
                .filter(|(k, _)| *k != "id")
                .map(|(k, v)| format!("{k} = {}", value_cell(v)))
                .collect();
            let _ = writeln!(out, "| {} | {} |", field(e, "id"), rest.join(", "));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_study::exhibit::*;

    #[test]
    fn experiment_markdown_shape() {
        let t = ExperimentTable {
            id: "x".into(),
            title: "T".into(),
            control_label: "Control".into(),
            treatment_label: "Treatment".into(),
            rows: vec![ExperimentRow {
                control: "(0, 64]".into(),
                treatment: "(64, 128]".into(),
                n_pairs: 42,
                percent_holds: 63.5,
                p_value: 8.25e-3,
                significant: true,
            }],
        };
        let md = experiment_table(&t);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("| 42 | 63.5% | 8.250e-3 |"), "{md}");
    }

    #[test]
    fn pipes_are_escaped() {
        let t = ExperimentTable {
            id: "x".into(),
            title: "T".into(),
            control_label: "a|b".into(),
            treatment_label: "t".into(),
            rows: vec![],
        };
        assert!(experiment_table(&t).contains("a\\|b"));
    }

    #[test]
    fn binned_markdown_carries_r() {
        let f = BinnedFigure {
            id: "f".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![BinnedSeries {
                label: "s".into(),
                r_log: Some(0.87),
                points: vec![BinnedPoint {
                    x: 1.0,
                    mean: 2.0,
                    ci_lo: 1.5,
                    ci_hi: 2.5,
                    n: 9,
                }],
            }],
        };
        let md = binned_figure(&f);
        assert!(md.contains("r = 0.870"));
        assert!(md.contains("| 1.000 | 2.0000 | [1.5000, 2.5000] | 9 |"));
    }

    #[test]
    fn provenance_renders_each_event_kind() {
        let mut log = EventLog::new();
        log.emit("match_audit")
            .str("exhibit", "table2")
            .str("experiment", "capacity (4, 8] vs (8, 16]")
            .u64("control_pool", 120)
            .u64("treated_considered", 60)
            .u64("candidates_eligible", 300)
            .u64("pairs_formed", 40)
            .u64("treated_unmatched", 20)
            .counts(
                "caliper_rejections",
                vec![("latency".into(), 5), ("loss".into(), 0)],
            );
        log.emit("sign_test")
            .str("exhibit", "table2")
            .str("experiment", "capacity (4, 8] vs (8, 16]")
            .u64("n", 38)
            .u64("positives", 25)
            .u64("ties", 2)
            .f64("p_value", 0.036)
            .str("direction", "treatment_higher")
            .bool("kept", true);
        log.emit("exhibit").str("id", "fig2").u64("n", 900);
        let md = provenance(&log);
        assert!(md.contains("### Matching audits"));
        assert!(md.contains("| table2 | capacity (4, 8] vs (8, 16] | 120 | 60 | 300 | 40 | 20 | latency: 5, loss: 0 |"));
        assert!(md.contains("### Sign tests"));
        assert!(md.contains("| 38 | 25 | 2 | 3.600e-2 | treatment_higher | true |"));
        assert!(md.contains("| fig2 | n = 900 |"));
    }

    #[test]
    fn provenance_of_an_empty_ledger_is_just_the_header() {
        let md = provenance(&EventLog::new());
        assert!(md.contains("## Provenance"));
        assert!(!md.contains("###"));
    }

    #[test]
    fn sweep_markdown() {
        let rows = vec![bb_study::robustness::SweepRow {
            experiment: "table1".into(),
            n_runs: 3,
            min: 60.0,
            mean: 65.0,
            max: 70.0,
            n_significant: 3,
            total_pairs: 300,
        }];
        let md = sweep_table(&rows);
        assert!(md.contains("| table1 | 3 | 60.0 | 65.0 | 70.0 | 3/3 | 300 |"));
    }

    #[test]
    fn survival_matrix_markdown() {
        use bb_study::robustness::{SurvivalCell, SurvivalMatrix, SurvivalRow};
        let cell = |s: f64, v: Option<f64>, sig: bool, pairs: usize| SurvivalCell {
            severity: s,
            value: v,
            significant: sig,
            pairs,
        };
        let m = SurvivalMatrix {
            scenario: "omnibus".into(),
            severities: vec![0.0, 0.5, 1.0],
            rows: vec![SurvivalRow {
                experiment: "table1 movers (peak)".into(),
                cells: vec![
                    cell(0.0, Some(70.0), true, 40),
                    cell(0.5, Some(55.0), false, 12),
                    cell(1.0, None, false, 0),
                ],
                direction_flip_at: None,
                significance_lost_at: Some(0.5),
                pairs_collapse_at: Some(1.0),
            }],
        };
        let md = survival_matrix(&m);
        assert!(
            md.contains(
                "| experiment | s=0 | s=0.5 | s=1 | flips at | sig. lost at | pairs gone at |"
            ),
            "{md}"
        );
        assert!(
            md.contains("| table1 movers (peak) | 70.0%\\* (40) | 55.0% (12) | — | — | 0.5 | 1 |"),
            "{md}"
        );
    }
}
