//! # bb-causal — natural experiments over observational data
//!
//! "Classical controlled experiments … are clearly not feasible at a global
//! scale" (§2.3 of the paper). This crate implements the study design the
//! paper uses instead:
//!
//! 1. split users into a *control* and a *treatment* group by the variable
//!    under study (capacity bin, price bin, upgrade-cost class, latency or
//!    loss bin);
//! 2. pair each treated user with the most similar control user, where
//!    similarity is enforced per *confounding covariate* with a **caliper**
//!    ("requiring that users be within 25% of each other for each
//!    confounding factor");
//! 3. for each matched pair, score whether the hypothesis holds (e.g. the
//!    higher-capacity user generates more traffic);
//! 4. run a one-tailed binomial sign test against the fair-coin null, and
//!    apply the paper's practical-importance guard (deviation > 2 points).
//!
//! The three stages live in [`caliper`], [`matching`] and [`experiment`].
//! [`qed`] implements the alternative stratified quasi-experimental design
//! the paper's §8 discusses (and decided against), for comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caliper;
pub mod experiment;
pub mod matching;
pub mod qed;

pub use caliper::Caliper;
pub use experiment::{Direction, ExperimentOutcome, NaturalExperiment, MIN_TRIALS};
pub use matching::{
    match_pairs, match_pairs_audited, pair_distance, pair_distance_detailed, MatchAudit,
    MatchedPair, Unit,
};
pub use qed::{QedOutcome, StratifiedQed};
