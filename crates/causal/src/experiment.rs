//! Running a natural experiment end to end.
//!
//! A [`NaturalExperiment`] bundles a name, a hypothesis direction, and the
//! caliper configuration; [`NaturalExperiment::run`] matches the groups,
//! scores each pair, and produces an [`ExperimentOutcome`] whose fields map
//! one-to-one onto the columns of the paper's experiment tables
//! ("% H holds", "p-value", and the asterisk that "denotes that a result
//! was not statistically significant").

use crate::caliper::Caliper;
use crate::matching::{match_pairs, MatchedPair, Unit};
use bb_stats::hypothesis::{binomial_test, BinomialTest, Tail};

/// Direction of the hypothesis on the treated outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// H: treated units have *higher* outcomes than their matched controls
    /// (every experiment in the paper is phrased this way).
    TreatmentHigher,
    /// H: treated units have *lower* outcomes.
    TreatmentLower,
}

/// A configured natural experiment.
#[derive(Clone, Debug)]
pub struct NaturalExperiment {
    /// Human-readable name, used in reports.
    pub name: String,
    /// Hypothesis direction.
    pub direction: Direction,
    /// One caliper per covariate.
    pub calipers: Vec<Caliper>,
}

impl NaturalExperiment {
    /// Create an experiment with the paper's hypothesis direction
    /// (treatment increases the outcome).
    pub fn new(name: impl Into<String>, calipers: Vec<Caliper>) -> Self {
        NaturalExperiment {
            name: name.into(),
            direction: Direction::TreatmentHigher,
            calipers,
        }
    }

    /// Override the hypothesis direction.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Match the groups, score the pairs, and test the hypothesis.
    ///
    /// Returns `None` when no pairs could be formed (e.g. empty groups or a
    /// caliper so tight nothing matches) — there is no experiment to run.
    pub fn run(&self, control: &[Unit], treatment: &[Unit]) -> Option<ExperimentOutcome> {
        let pairs = match_pairs(control, treatment, &self.calipers);
        self.score(pairs)
    }

    /// Score pre-computed pairs (exposed for the ablation benches, which
    /// reuse one matching under several tests).
    pub fn score(&self, pairs: Vec<MatchedPair>) -> Option<ExperimentOutcome> {
        if pairs.is_empty() {
            return None;
        }
        let mut holds = 0u64;
        let mut ties = 0u64;
        for p in &pairs {
            let diff = p.treatment_outcome - p.control_outcome;
            if diff == 0.0 {
                ties += 1;
                continue;
            }
            let in_favour = match self.direction {
                Direction::TreatmentHigher => diff > 0.0,
                Direction::TreatmentLower => diff < 0.0,
            };
            if in_favour {
                holds += 1;
            }
        }
        // Sign-test convention: ties carry no information about direction
        // and are dropped from the trial count.
        let trials = pairs.len() as u64 - ties;
        if trials == 0 {
            return None;
        }
        let test = binomial_test(holds, trials, 0.5, Tail::Greater);
        Some(ExperimentOutcome {
            name: self.name.clone(),
            n_pairs: pairs.len(),
            n_ties: ties as usize,
            test,
            pairs,
        })
    }
}

/// The result of one natural experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Name of the experiment.
    pub name: String,
    /// Number of matched pairs (including ties).
    pub n_pairs: usize,
    /// Pairs with exactly equal outcomes, excluded from the test.
    pub n_ties: usize,
    /// The one-tailed binomial sign test over non-tied pairs.
    pub test: BinomialTest,
    /// The matched pairs themselves (for downstream inspection/plots).
    pub pairs: Vec<MatchedPair>,
}

impl ExperimentOutcome {
    /// "% H holds" — percentage of (non-tied) pairs supporting the
    /// hypothesis.
    pub fn percent_holds(&self) -> f64 {
        self.test.share_percent()
    }

    /// Exact one-tailed p-value.
    pub fn p_value(&self) -> f64 {
        self.test.p_value
    }

    /// Statistically significant at α = 0.05.
    pub fn significant(&self) -> bool {
        self.test.significant()
    }

    /// Clears both the significance and practical-importance bars of §2.3.
    pub fn conclusive(&self) -> bool {
        self.test.conclusive()
    }

    /// Mean outcome difference (treatment − control) across pairs.
    pub fn mean_effect(&self) -> f64 {
        let sum: f64 = self
            .pairs
            .iter()
            .map(|p| p.treatment_outcome - p.control_outcome)
            .sum();
        sum / self.pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(outcomes: &[f64], base_id: u64) -> Vec<Unit> {
        outcomes
            .iter()
            .enumerate()
            .map(|(i, &o)| Unit::new(base_id + i as u64, vec![100.0], o))
            .collect()
    }

    #[test]
    fn clear_effect_is_detected() {
        // Treated outcomes uniformly higher: H should hold for all pairs.
        let control = units(&[1.0, 1.1, 0.9, 1.2, 1.0, 0.8, 1.3, 0.95], 0);
        let treatment = units(&[2.0, 2.1, 1.9, 2.2, 2.0, 1.8, 2.3, 1.95], 100);
        let exp = NaturalExperiment::new("capacity", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert_eq!(out.n_pairs, 8);
        assert_eq!(out.percent_holds(), 100.0);
        assert!(out.significant());
        assert!(out.conclusive());
        assert!(out.mean_effect() > 0.9);
    }

    #[test]
    fn null_effect_is_not_significant() {
        // Same outcome distribution in both groups, alternating order.
        let control = units(&[1.0, 2.0, 1.0, 2.0, 1.0, 2.0], 0);
        let treatment = units(&[2.0, 1.0, 2.0, 1.0, 2.0, 1.0], 100);
        let exp = NaturalExperiment::new("noise", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert!(!out.significant(), "p = {}", out.p_value());
    }

    #[test]
    fn direction_flips_result() {
        let control = units(&[2.0, 2.0, 2.0, 2.0], 0);
        let treatment = units(&[1.0, 1.0, 1.0, 1.0], 100);
        let higher = NaturalExperiment::new("h", vec![Caliper::PAPER]);
        let lower = higher.clone().with_direction(Direction::TreatmentLower);
        assert_eq!(
            higher.run(&control, &treatment).unwrap().percent_holds(),
            0.0
        );
        assert_eq!(
            lower.run(&control, &treatment).unwrap().percent_holds(),
            100.0
        );
    }

    #[test]
    fn ties_are_excluded() {
        let control = units(&[1.0, 1.0, 1.0], 0);
        let treatment = units(&[1.0, 2.0, 2.0], 100);
        let exp = NaturalExperiment::new("ties", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert_eq!(out.n_ties, 1);
        assert_eq!(out.test.trials, 2);
        assert_eq!(out.percent_holds(), 100.0);
    }

    #[test]
    fn no_pairs_is_none() {
        let control = units(&[1.0], 0);
        let mut treatment = units(&[2.0], 100);
        treatment[0].covariates[0] = 500.0; // violates the caliper
        let exp = NaturalExperiment::new("empty", vec![Caliper::PAPER]);
        assert!(exp.run(&control, &treatment).is_none());
        assert!(exp.run(&[], &[]).is_none());
    }

    #[test]
    fn all_ties_is_none() {
        let control = units(&[1.0, 1.0], 0);
        let treatment = units(&[1.0, 1.0], 100);
        let exp = NaturalExperiment::new("all-ties", vec![Caliper::PAPER]);
        assert!(exp.run(&control, &treatment).is_none());
    }

    #[test]
    fn table_style_fields() {
        // Mimic a Table 2 row: 59.9% of 1000 pairs in favour.
        let n = 1000;
        let control: Vec<Unit> = (0..n).map(|i| Unit::new(i, vec![100.0], 0.0)).collect();
        let treatment: Vec<Unit> = (0..n)
            .map(|i| {
                let outcome = if i < 599 { 1.0 } else { -1.0 };
                Unit::new(1000 + i, vec![100.0], outcome)
            })
            .collect();
        let exp = NaturalExperiment::new("t2", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert!((out.percent_holds() - 59.9).abs() < 1e-9);
        assert!(out.p_value() < 1e-8);
        assert!(out.conclusive());
    }
}
