//! Running a natural experiment end to end.
//!
//! A [`NaturalExperiment`] bundles a name, a hypothesis direction, and the
//! caliper configuration; [`NaturalExperiment::run`] matches the groups,
//! scores each pair, and produces an [`ExperimentOutcome`] whose fields map
//! one-to-one onto the columns of the paper's experiment tables
//! ("% H holds", "p-value", and the asterisk that "denotes that a result
//! was not statistically significant").

use crate::caliper::Caliper;
use crate::matching::{match_pairs_audited, MatchAudit, MatchedPair, Unit};
use bb_stats::hypothesis::{binomial_test, BinomialTest, Tail};
use bb_trace::EventLog;

/// Direction of the hypothesis on the treated outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// H: treated units have *higher* outcomes than their matched controls
    /// (every experiment in the paper is phrased this way).
    TreatmentHigher,
    /// H: treated units have *lower* outcomes.
    TreatmentLower,
}

/// Default minimum number of non-tied pairs before an experiment may
/// claim statistical significance. Below this, even an exact binomial
/// p < 0.05 (e.g. 5/5 pairs, p ≈ 0.031) is one lucky streak away from
/// noise — degraded collection that starves the matcher must downgrade
/// a finding to "insufficient data", never sharpen it.
pub const MIN_TRIALS: u64 = 8;

/// A configured natural experiment.
#[derive(Clone, Debug)]
pub struct NaturalExperiment {
    /// Human-readable name, used in reports.
    pub name: String,
    /// Hypothesis direction.
    pub direction: Direction,
    /// One caliper per covariate.
    pub calipers: Vec<Caliper>,
    /// Minimum non-tied pairs before [`ExperimentOutcome::significant`]
    /// may return `true` (default [`MIN_TRIALS`]).
    pub min_trials: u64,
}

impl NaturalExperiment {
    /// Create an experiment with the paper's hypothesis direction
    /// (treatment increases the outcome).
    pub fn new(name: impl Into<String>, calipers: Vec<Caliper>) -> Self {
        NaturalExperiment {
            name: name.into(),
            direction: Direction::TreatmentHigher,
            calipers,
            min_trials: MIN_TRIALS,
        }
    }

    /// Override the hypothesis direction.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Override the minimum-trials guard (0 disables it; ablation
    /// benches only — production exhibits keep the default).
    pub fn with_min_trials(mut self, min_trials: u64) -> Self {
        self.min_trials = min_trials;
        self
    }

    /// Match the groups, score the pairs, and test the hypothesis.
    ///
    /// Returns `None` when no pairs could be formed (e.g. empty groups or a
    /// caliper so tight nothing matches) — there is no experiment to run.
    pub fn run(&self, control: &[Unit], treatment: &[Unit]) -> Option<ExperimentOutcome> {
        self.run_audited(control, treatment).0
    }

    /// [`NaturalExperiment::run`] plus the [`MatchAudit`] of the matching
    /// stage, for callers feeding a provenance ledger. The audit is
    /// returned even when no experiment could be run — "nothing matched"
    /// is exactly the case an audit trail must explain.
    pub fn run_audited(
        &self,
        control: &[Unit],
        treatment: &[Unit],
    ) -> (Option<ExperimentOutcome>, MatchAudit) {
        let (pairs, audit) = match_pairs_audited(control, treatment, &self.calipers);
        (self.score(pairs), audit)
    }

    /// Record this experiment's provenance in `ledger`: a `match_audit`
    /// event (pool sizes, pairs formed, per-covariate caliper rejections,
    /// pair-distance histogram) and — when the experiment ran — a
    /// `sign_test` event (n, positives, ties, p-value, direction).
    ///
    /// `exhibit` ties the events to a report exhibit id;
    /// `covariate_names` labels the rejection counts and must have one
    /// entry per caliper; `kept` says whether the row survived the
    /// caller's filters (e.g. the minimum-pairs rule) into the report.
    pub fn log_provenance(
        &self,
        ledger: &mut EventLog,
        exhibit: &str,
        covariate_names: &[&str],
        audit: &MatchAudit,
        outcome: Option<&ExperimentOutcome>,
        kept: bool,
    ) {
        assert_eq!(
            covariate_names.len(),
            audit.caliper_rejections.len(),
            "one name per covariate"
        );
        let rejections: Vec<(String, u64)> = covariate_names
            .iter()
            .zip(&audit.caliper_rejections)
            .map(|(name, &count)| ((*name).to_string(), count))
            .collect();
        ledger
            .emit("match_audit")
            .str("exhibit", exhibit)
            .str("experiment", &self.name)
            .u64("control_pool", audit.control_pool)
            .u64("treated_considered", audit.treated_considered)
            .u64("candidates_eligible", audit.candidates_eligible)
            .u64("pairs_formed", audit.pairs_formed)
            .u64("treated_unmatched", audit.treated_unmatched)
            .counts("caliper_rejections", rejections)
            .hist("pair_distance_log2", audit.pair_distance_log2.clone());
        if let Some(out) = outcome {
            ledger
                .emit("sign_test")
                .str("exhibit", exhibit)
                .str("experiment", &self.name)
                .u64("n_pairs", out.n_pairs as u64)
                .u64("ties", out.n_ties as u64)
                .u64("n", out.test.trials)
                .u64("positives", out.test.successes)
                .f64("p_value", out.test.p_value)
                .str(
                    "direction",
                    match self.direction {
                        Direction::TreatmentHigher => "treatment_higher",
                        Direction::TreatmentLower => "treatment_lower",
                    },
                )
                .bool("significant", out.significant())
                .bool("starved", out.starved())
                .bool("kept", kept);
        }
    }

    /// Score pre-computed pairs (exposed for the ablation benches, which
    /// reuse one matching under several tests).
    pub fn score(&self, pairs: Vec<MatchedPair>) -> Option<ExperimentOutcome> {
        if pairs.is_empty() {
            return None;
        }
        let mut holds = 0u64;
        let mut ties = 0u64;
        for p in &pairs {
            let diff = p.treatment_outcome - p.control_outcome;
            if diff == 0.0 {
                ties += 1;
                continue;
            }
            let in_favour = match self.direction {
                Direction::TreatmentHigher => diff > 0.0,
                Direction::TreatmentLower => diff < 0.0,
            };
            if in_favour {
                holds += 1;
            }
        }
        // Sign-test convention: ties carry no information about direction
        // and are dropped from the trial count.
        let trials = pairs.len() as u64 - ties;
        if trials == 0 {
            return None;
        }
        let test = binomial_test(holds, trials, 0.5, Tail::Greater);
        Some(ExperimentOutcome {
            name: self.name.clone(),
            n_pairs: pairs.len(),
            n_ties: ties as usize,
            min_trials: self.min_trials,
            test,
            pairs,
        })
    }
}

/// The result of one natural experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Name of the experiment.
    pub name: String,
    /// Number of matched pairs (including ties).
    pub n_pairs: usize,
    /// Pairs with exactly equal outcomes, excluded from the test.
    pub n_ties: usize,
    /// Minimum-trials guard inherited from the experiment config.
    pub min_trials: u64,
    /// The one-tailed binomial sign test over non-tied pairs.
    pub test: BinomialTest,
    /// The matched pairs themselves (for downstream inspection/plots).
    pub pairs: Vec<MatchedPair>,
}

impl ExperimentOutcome {
    /// "% H holds" — percentage of (non-tied) pairs supporting the
    /// hypothesis.
    pub fn percent_holds(&self) -> f64 {
        self.test.share_percent()
    }

    /// Exact one-tailed p-value.
    pub fn p_value(&self) -> f64 {
        self.test.p_value
    }

    /// Too few non-tied pairs to support any significance claim: the
    /// experiment is "insufficient data", whatever its raw p-value.
    pub fn starved(&self) -> bool {
        self.test.trials < self.min_trials
    }

    /// Statistically significant at α = 0.05 — and only when the
    /// minimum-trials guard is met ([`ExperimentOutcome::starved`]).
    pub fn significant(&self) -> bool {
        !self.starved() && self.test.significant()
    }

    /// Clears both the significance and practical-importance bars of §2.3
    /// (guarded by the same minimum-trials rule).
    pub fn conclusive(&self) -> bool {
        !self.starved() && self.test.conclusive()
    }

    /// Mean outcome difference (treatment − control) across pairs.
    pub fn mean_effect(&self) -> f64 {
        let sum: f64 = self
            .pairs
            .iter()
            .map(|p| p.treatment_outcome - p.control_outcome)
            .sum();
        sum / self.pairs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(outcomes: &[f64], base_id: u64) -> Vec<Unit> {
        outcomes
            .iter()
            .enumerate()
            .map(|(i, &o)| Unit::new(base_id + i as u64, vec![100.0], o))
            .collect()
    }

    #[test]
    fn clear_effect_is_detected() {
        // Treated outcomes uniformly higher: H should hold for all pairs.
        let control = units(&[1.0, 1.1, 0.9, 1.2, 1.0, 0.8, 1.3, 0.95], 0);
        let treatment = units(&[2.0, 2.1, 1.9, 2.2, 2.0, 1.8, 2.3, 1.95], 100);
        let exp = NaturalExperiment::new("capacity", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert_eq!(out.n_pairs, 8);
        assert_eq!(out.percent_holds(), 100.0);
        assert!(out.significant());
        assert!(out.conclusive());
        assert!(out.mean_effect() > 0.9);
    }

    #[test]
    fn null_effect_is_not_significant() {
        // Same outcome distribution in both groups, alternating order.
        let control = units(&[1.0, 2.0, 1.0, 2.0, 1.0, 2.0], 0);
        let treatment = units(&[2.0, 1.0, 2.0, 1.0, 2.0, 1.0], 100);
        let exp = NaturalExperiment::new("noise", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert!(!out.significant(), "p = {}", out.p_value());
    }

    #[test]
    fn direction_flips_result() {
        let control = units(&[2.0, 2.0, 2.0, 2.0], 0);
        let treatment = units(&[1.0, 1.0, 1.0, 1.0], 100);
        let higher = NaturalExperiment::new("h", vec![Caliper::PAPER]);
        let lower = higher.clone().with_direction(Direction::TreatmentLower);
        assert_eq!(
            higher.run(&control, &treatment).unwrap().percent_holds(),
            0.0
        );
        assert_eq!(
            lower.run(&control, &treatment).unwrap().percent_holds(),
            100.0
        );
    }

    #[test]
    fn ties_are_excluded() {
        let control = units(&[1.0, 1.0, 1.0], 0);
        let treatment = units(&[1.0, 2.0, 2.0], 100);
        let exp = NaturalExperiment::new("ties", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert_eq!(out.n_ties, 1);
        assert_eq!(out.test.trials, 2);
        assert_eq!(out.percent_holds(), 100.0);
    }

    #[test]
    fn no_pairs_is_none() {
        let control = units(&[1.0], 0);
        let mut treatment = units(&[2.0], 100);
        treatment[0].covariates[0] = 500.0; // violates the caliper
        let exp = NaturalExperiment::new("empty", vec![Caliper::PAPER]);
        assert!(exp.run(&control, &treatment).is_none());
        assert!(exp.run(&[], &[]).is_none());
    }

    #[test]
    fn all_ties_is_none() {
        let control = units(&[1.0, 1.0], 0);
        let treatment = units(&[1.0, 1.0], 100);
        let exp = NaturalExperiment::new("all-ties", vec![Caliper::PAPER]);
        assert!(exp.run(&control, &treatment).is_none());
    }

    #[test]
    fn starved_experiment_cannot_be_significant() {
        // Five pairs, all in favour: raw binomial p ≈ 0.031 < 0.05 — but
        // five lucky pairs must read as "insufficient data", not a finding.
        let control = units(&[1.0, 1.1, 0.9, 1.2, 1.0], 0);
        let treatment = units(&[2.0, 2.1, 1.9, 2.2, 2.0], 100);
        let exp = NaturalExperiment::new("starved", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert_eq!(out.percent_holds(), 100.0);
        assert!(out.test.p_value < 0.05, "raw p = {}", out.test.p_value);
        assert!(out.starved());
        assert!(!out.significant(), "guard must override the raw p-value");
        assert!(!out.conclusive());
        // Disabling the guard (ablation only) restores the raw verdict.
        let raw = exp.with_min_trials(0).run(&control, &treatment).unwrap();
        assert!(!raw.starved());
        assert!(raw.significant());
    }

    #[test]
    fn run_audited_logs_full_provenance() {
        let control = units(&[1.0, 1.1, 0.9, 1.2], 0);
        let treatment = units(&[2.0, 2.1, 1.9, 2.2], 100);
        let exp = NaturalExperiment::new("capacity", vec![Caliper::PAPER]);
        let (outcome, audit) = exp.run_audited(&control, &treatment);
        let outcome = outcome.expect("experiment ran");
        assert_eq!(audit.pairs_formed as usize, outcome.n_pairs);

        let mut ledger = bb_trace::EventLog::new();
        exp.log_provenance(
            &mut ledger,
            "table2",
            &["capacity"],
            &audit,
            Some(&outcome),
            true,
        );
        let jsonl = ledger.to_jsonl();
        assert_eq!(ledger.len(), 2, "{jsonl}");
        let audit_line = jsonl.lines().next().unwrap();
        assert!(audit_line.contains("\"event\": \"match_audit\""), "{jsonl}");
        assert!(audit_line.contains("\"treated_considered\": 4"), "{jsonl}");
        assert!(audit_line.contains("\"pairs_formed\": 4"), "{jsonl}");
        assert!(
            audit_line.contains("\"caliper_rejections\": {\"capacity\": 0}"),
            "{jsonl}"
        );
        let test_line = jsonl.lines().nth(1).unwrap();
        assert!(test_line.contains("\"event\": \"sign_test\""), "{jsonl}");
        assert!(test_line.contains("\"n\": 4"), "{jsonl}");
        assert!(test_line.contains("\"positives\": 4"), "{jsonl}");
        assert!(test_line.contains("\"p_value\": 0.062"), "{jsonl}");
        assert!(
            test_line.contains("\"direction\": \"treatment_higher\""),
            "{jsonl}"
        );
    }

    #[test]
    fn audit_is_returned_even_when_nothing_matches() {
        let control = units(&[1.0], 0);
        let mut treatment = units(&[2.0], 100);
        treatment[0].covariates[0] = 500.0;
        let exp = NaturalExperiment::new("empty", vec![Caliper::PAPER]);
        let (outcome, audit) = exp.run_audited(&control, &treatment);
        assert!(outcome.is_none());
        assert_eq!(audit.treated_considered, 1);
        assert_eq!(audit.treated_unmatched, 1);
        assert_eq!(audit.caliper_rejections, vec![1]);
        // No sign_test event without an outcome; the audit still lands.
        let mut ledger = bb_trace::EventLog::new();
        exp.log_provenance(&mut ledger, "t", &["capacity"], &audit, None, false);
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn table_style_fields() {
        // Mimic a Table 2 row: 59.9% of 1000 pairs in favour.
        let n = 1000;
        let control: Vec<Unit> = (0..n).map(|i| Unit::new(i, vec![100.0], 0.0)).collect();
        let treatment: Vec<Unit> = (0..n)
            .map(|i| {
                let outcome = if i < 599 { 1.0 } else { -1.0 };
                Unit::new(1000 + i, vec![100.0], outcome)
            })
            .collect();
        let exp = NaturalExperiment::new("t2", vec![Caliper::PAPER]);
        let out = exp.run(&control, &treatment).unwrap();
        assert!((out.percent_holds() - 59.9).abs() < 1e-9);
        assert!(out.p_value() < 1e-8);
        assert!(out.conclusive());
    }
}
