//! Covariate calipers.
//!
//! A caliper decides when two values of one confounding covariate are
//! "sufficiently similar" for their owners to be matched. The paper's rule
//! is relative — within 25% of each other — with the worked example that
//! latencies of 50 and 62 ms, or access prices of $25 and $30, are close
//! enough. A pure relative rule degenerates around zero (a loss rate of 0%
//! would match nothing but exact zeros), so each caliper also carries an
//! *absolute floor* below which differences are always acceptable.

/// Similarity rule for one covariate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Caliper {
    /// Maximum relative difference, as a fraction of the larger magnitude
    /// (the paper's 25% rule is `0.25`).
    pub relative: f64,
    /// Differences at or below this absolute value always pass, regardless
    /// of the relative rule. Protects near-zero covariates (loss rates,
    /// cheap markets) from degenerate matching.
    pub absolute_floor: f64,
}

impl Caliper {
    /// The paper's default: within 25% of each other, no absolute floor.
    pub const PAPER: Caliper = Caliper {
        relative: 0.25,
        absolute_floor: 0.0,
    };

    /// A 25% caliper with an absolute floor.
    pub fn paper_with_floor(absolute_floor: f64) -> Caliper {
        Caliper {
            relative: 0.25,
            absolute_floor,
        }
    }

    /// A purely relative caliper.
    ///
    /// # Panics
    /// Panics on a negative fraction.
    pub fn relative(fraction: f64) -> Caliper {
        assert!(fraction >= 0.0, "caliper fraction must be >= 0");
        Caliper {
            relative: fraction,
            absolute_floor: 0.0,
        }
    }

    /// True when `a` and `b` are similar under this caliper.
    ///
    /// Symmetric in its arguments by construction.
    pub fn within(&self, a: f64, b: f64) -> bool {
        let diff = (a - b).abs();
        if diff <= self.absolute_floor {
            return true;
        }
        diff <= self.relative * a.abs().max(b.abs())
    }

    /// The tolerance width around `value` (used to normalise distances so
    /// different covariates are comparable).
    pub fn width_at(&self, value: f64) -> f64 {
        (self.relative * value.abs()).max(self.absolute_floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_pass() {
        // §3.2: "users with latencies of 50 and 62 ms and in regions where
        // broadband Internet access costs $25 and $30 (USD) per month are
        // considered to be sufficiently similar".
        let c = Caliper::PAPER;
        assert!(c.within(50.0, 62.0));
        assert!(c.within(25.0, 30.0));
        // Clearly dissimilar values fail.
        assert!(!c.within(50.0, 80.0));
        assert!(!c.within(25.0, 60.0));
    }

    #[test]
    fn symmetry() {
        let c = Caliper::PAPER;
        for &(a, b) in &[(50.0, 62.0), (1.0, 2.0), (0.0, 0.1), (3.0, 3.0)] {
            assert_eq!(c.within(a, b), c.within(b, a));
        }
    }

    #[test]
    fn zero_needs_floor() {
        let strict = Caliper::PAPER;
        assert!(strict.within(0.0, 0.0));
        assert!(!strict.within(0.0, 0.001));
        let floored = Caliper::paper_with_floor(0.01);
        assert!(floored.within(0.0, 0.001));
        assert!(!floored.within(0.0, 0.5));
    }

    #[test]
    fn tighter_caliper_is_stricter() {
        let loose = Caliper::relative(0.5);
        let tight = Caliper::relative(0.1);
        assert!(loose.within(10.0, 14.0));
        assert!(!tight.within(10.0, 14.0));
    }

    #[test]
    fn width_scales_with_value() {
        let c = Caliper::paper_with_floor(1.0);
        assert_eq!(c.width_at(100.0), 25.0);
        assert_eq!(c.width_at(0.0), 1.0); // floor dominates near zero
    }

    #[test]
    fn identical_values_always_pass() {
        let c = Caliper::relative(0.0);
        assert!(c.within(5.0, 5.0));
        assert!(!c.within(5.0, 5.000001));
    }
}
