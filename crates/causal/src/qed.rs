//! Quasi-experimental design (QED) with stratified exact matching.
//!
//! §8 of the paper contrasts its natural experiments with the
//! quasi-experimental designs of Krishnan & Sitaraman (IMC 2012) and
//! Oktay et al.: instead of nearest-neighbour matching on continuous
//! covariates, a QED *stratifies* the population into discrete cells
//! (here: quantile buckets per covariate), pairs treated and control units
//! within each cell, and runs the same sign test. The paper "opted for
//! natural experiments, rather than QED"; this module implements the road
//! not taken so the `ablate_qed` bench can compare the two designs on
//! identical data.

use crate::experiment::Direction;
use crate::matching::{MatchedPair, Unit};
use bb_stats::hypothesis::{binomial_test, BinomialTest, Tail};
use std::collections::BTreeMap;

/// Configuration for stratified matching.
#[derive(Clone, Debug)]
pub struct StratifiedQed {
    /// Human-readable name.
    pub name: String,
    /// Number of quantile buckets per covariate (2–10 is sensible; more
    /// buckets mean tighter strata and fewer pairs).
    pub buckets_per_covariate: usize,
    /// Hypothesis direction on the treated outcome.
    pub direction: Direction,
}

impl StratifiedQed {
    /// A QED with the paper-equivalent defaults: quartile strata, treated
    /// outcome expected higher.
    pub fn new(name: impl Into<String>) -> Self {
        StratifiedQed {
            name: name.into(),
            buckets_per_covariate: 4,
            direction: Direction::TreatmentHigher,
        }
    }

    /// Override the number of buckets.
    pub fn with_buckets(mut self, buckets: usize) -> Self {
        assert!(buckets >= 2, "stratification needs at least 2 buckets");
        self.buckets_per_covariate = buckets;
        self
    }

    /// Override the hypothesis direction.
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Run the QED: stratify on the pooled covariate quantiles, pair
    /// within strata in order, and sign-test the pairs.
    ///
    /// Returns `None` when no informative pairs can be formed.
    pub fn run(&self, control: &[Unit], treatment: &[Unit]) -> Option<QedOutcome> {
        if control.is_empty() || treatment.is_empty() {
            return None;
        }
        let n_cov = control[0].covariates.len();
        for u in control.iter().chain(treatment) {
            assert_eq!(
                u.covariates.len(),
                n_cov,
                "unit {} has inconsistent covariate count",
                u.id
            );
        }

        // Bucket edges from the pooled distribution of each covariate.
        let edges: Vec<Vec<f64>> = (0..n_cov)
            .map(|j| {
                let mut values: Vec<f64> = control
                    .iter()
                    .chain(treatment)
                    .map(|u| u.covariates[j])
                    .collect();
                values.sort_by(|a, b| a.partial_cmp(b).expect("finite covariates"));
                (1..self.buckets_per_covariate)
                    .map(|k| {
                        let pos = k as f64 / self.buckets_per_covariate as f64;
                        bb_stats::descriptive::quantile_sorted(&values, pos)
                    })
                    .collect()
            })
            .collect();

        let stratum = |u: &Unit| -> Vec<usize> {
            u.covariates
                .iter()
                .zip(&edges)
                .map(|(v, e)| e.iter().filter(|edge| v > edge).count())
                .collect()
        };

        // Group both sides by stratum.
        let mut cells: BTreeMap<Vec<usize>, (Vec<&Unit>, Vec<&Unit>)> = BTreeMap::new();
        for u in control {
            cells.entry(stratum(u)).or_default().0.push(u);
        }
        for u in treatment {
            cells.entry(stratum(u)).or_default().1.push(u);
        }

        // Pair within cells, in order; count hypothesis outcomes.
        let mut pairs = Vec::new();
        let mut holds = 0u64;
        let mut ties = 0u64;
        let mut populated_cells = 0usize;
        for (c_units, t_units) in cells.values() {
            if c_units.is_empty() || t_units.is_empty() {
                continue;
            }
            populated_cells += 1;
            for (cu, tu) in c_units.iter().zip(t_units.iter()) {
                let diff = tu.outcome - cu.outcome;
                if diff == 0.0 {
                    ties += 1;
                } else {
                    let in_favour = match self.direction {
                        Direction::TreatmentHigher => diff > 0.0,
                        Direction::TreatmentLower => diff < 0.0,
                    };
                    if in_favour {
                        holds += 1;
                    }
                }
                pairs.push(MatchedPair {
                    control_id: cu.id,
                    treatment_id: tu.id,
                    control_outcome: cu.outcome,
                    treatment_outcome: tu.outcome,
                    distance: 0.0, // exact stratum match has no scalar distance
                });
            }
        }
        let trials = pairs.len() as u64 - ties;
        if trials == 0 {
            return None;
        }
        Some(QedOutcome {
            name: self.name.clone(),
            n_strata: populated_cells,
            n_pairs: pairs.len(),
            n_ties: ties as usize,
            test: binomial_test(holds, trials, 0.5, Tail::Greater),
            pairs,
        })
    }
}

/// Result of a stratified QED.
#[derive(Clone, Debug)]
pub struct QedOutcome {
    /// Name of the study.
    pub name: String,
    /// Strata that contained both treated and control units.
    pub n_strata: usize,
    /// Total pairs formed (including ties).
    pub n_pairs: usize,
    /// Pairs with identical outcomes (dropped from the test).
    pub n_ties: usize,
    /// The sign test over informative pairs.
    pub test: BinomialTest,
    /// The pairs.
    pub pairs: Vec<MatchedPair>,
}

impl QedOutcome {
    /// "% H holds".
    pub fn percent_holds(&self) -> f64 {
        self.test.share_percent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: u64, cov: f64, out: f64) -> Unit {
        Unit::new(id, vec![cov], out)
    }

    #[test]
    fn detects_a_clear_effect() {
        // Treated outcomes are uniformly +1 at matched covariates.
        let control: Vec<Unit> = (0..40).map(|i| unit(i, i as f64, i as f64)).collect();
        let treatment: Vec<Unit> = (0..40)
            .map(|i| unit(100 + i, i as f64, i as f64 + 1.0))
            .collect();
        let q = StratifiedQed::new("effect");
        let out = q.run(&control, &treatment).unwrap();
        assert!(out.percent_holds() > 90.0, "{}", out.percent_holds());
        assert!(out.test.significant());
        assert_eq!(out.n_strata, 4);
    }

    #[test]
    fn null_is_near_fifty_percent() {
        // Outcomes independent of group.
        let control: Vec<Unit> = (0..200)
            .map(|i| unit(i, (i % 17) as f64, ((i * 31) % 101) as f64))
            .collect();
        let treatment: Vec<Unit> = (0..200)
            .map(|i| unit(1000 + i, (i % 17) as f64, ((i * 57 + 13) % 101) as f64))
            .collect();
        let q = StratifiedQed::new("null");
        let out = q.run(&control, &treatment).unwrap();
        assert!(
            (out.percent_holds() - 50.0).abs() < 12.0,
            "{}",
            out.percent_holds()
        );
    }

    #[test]
    fn more_buckets_fewer_pairs() {
        let control: Vec<Unit> = (0..100).map(|i| unit(i, i as f64, 0.0)).collect();
        let treatment: Vec<Unit> = (0..50)
            .map(|i| unit(1000 + i, (i * 2) as f64, 1.0))
            .collect();
        let coarse = StratifiedQed::new("c")
            .with_buckets(2)
            .run(&control, &treatment)
            .unwrap();
        let fine = StratifiedQed::new("f")
            .with_buckets(10)
            .run(&control, &treatment)
            .unwrap();
        assert!(fine.n_strata > coarse.n_strata);
        assert!(fine.n_pairs <= coarse.n_pairs);
    }

    #[test]
    fn direction_flips() {
        let control: Vec<Unit> = (0..20).map(|i| unit(i, 1.0, 2.0)).collect();
        let treatment: Vec<Unit> = (0..20).map(|i| unit(100 + i, 1.0, 1.0)).collect();
        let lower = StratifiedQed::new("l")
            .with_direction(Direction::TreatmentLower)
            .run(&control, &treatment)
            .unwrap();
        assert_eq!(lower.percent_holds(), 100.0);
    }

    #[test]
    fn pairs_stay_within_their_stratum() {
        let control: Vec<Unit> = (0..60)
            .map(|i| unit(i, (i % 6) as f64 * 10.0, 0.0))
            .collect();
        let treatment: Vec<Unit> = (0..60)
            .map(|i| unit(1000 + i, (i % 6) as f64 * 10.0, 1.0))
            .collect();
        let q = StratifiedQed::new("s").with_buckets(6);
        let out = q.run(&control, &treatment).unwrap();
        for p in &out.pairs {
            let cu = control.iter().find(|u| u.id == p.control_id).unwrap();
            let tu = treatment.iter().find(|u| u.id == p.treatment_id).unwrap();
            // Same stratum means identical covariate here (values are the
            // bucket representatives themselves).
            assert_eq!(cu.covariates[0], tu.covariates[0]);
        }
    }

    #[test]
    fn empty_inputs_give_none() {
        let q = StratifiedQed::new("e");
        assert!(q.run(&[], &[]).is_none());
        let c = vec![unit(1, 0.0, 1.0)];
        assert!(q.run(&c, &[]).is_none());
    }

    #[test]
    fn all_ties_give_none() {
        let c = vec![unit(1, 0.0, 5.0)];
        let t = vec![unit(2, 0.0, 5.0)];
        assert!(StratifiedQed::new("t").run(&c, &t).is_none());
    }
}
