//! Nearest-neighbour matching with calipers.
//!
//! The paper "use\[s\] nearest neighbor matching to pair similar users in
//! 'control' and 'treatment' groups … with a caliper to ensure that
//! dissimilar users are not matched" (§3.2). We implement greedy 1:1
//! matching without replacement: treated units are processed in input
//! order, each taking the nearest eligible control; matched controls are
//! removed from the pool. The trade-off the paper notes — a tighter caliper
//! gives cleaner comparisons but fewer pairs — is directly observable by
//! varying the [`Caliper`]s (see the `ablate_caliper` bench).

use crate::caliper::Caliper;

/// One unit (user) entering an experiment: an opaque id, the covariates to
/// balance on, and the outcome to compare.
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    /// Caller-meaningful identifier (propagated into matches).
    pub id: u64,
    /// Covariate vector; all units in one experiment must agree on length
    /// and ordering.
    pub covariates: Vec<f64>,
    /// Outcome value (a demand metric, in this study).
    pub outcome: f64,
}

impl Unit {
    /// Convenience constructor.
    pub fn new(id: u64, covariates: Vec<f64>, outcome: f64) -> Self {
        assert!(
            covariates.iter().all(|c| c.is_finite()),
            "covariates must be finite"
        );
        assert!(outcome.is_finite(), "outcome must be finite");
        Unit {
            id,
            covariates,
            outcome,
        }
    }
}

/// A matched control/treatment pair.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchedPair {
    /// Id of the control unit.
    pub control_id: u64,
    /// Id of the treated unit.
    pub treatment_id: u64,
    /// Outcome of the control unit.
    pub control_outcome: f64,
    /// Outcome of the treated unit.
    pub treatment_outcome: f64,
    /// Normalised covariate distance of the pair (0 = identical).
    pub distance: f64,
}

/// Greedily match treated units to their nearest eligible control.
///
/// `calipers` must have one entry per covariate. A control is *eligible*
/// for a treated unit when every covariate passes its caliper; among
/// eligible controls the one with the smallest normalised Euclidean
/// distance wins. Matching is 1:1 without replacement, so
/// `pairs.len() ≤ min(control.len(), treatment.len())`.
///
/// # Panics
/// Panics when any unit's covariate count disagrees with `calipers.len()`.
pub fn match_pairs(control: &[Unit], treatment: &[Unit], calipers: &[Caliper]) -> Vec<MatchedPair> {
    for u in control.iter().chain(treatment) {
        assert_eq!(
            u.covariates.len(),
            calipers.len(),
            "unit {} has {} covariates but {} calipers were given",
            u.id,
            u.covariates.len(),
            calipers.len()
        );
    }

    let mut taken = vec![false; control.len()];
    let mut pairs = Vec::new();

    for t in treatment {
        let mut best: Option<(usize, f64)> = None;
        for (ci, c) in control.iter().enumerate() {
            if taken[ci] {
                continue;
            }
            if let Some(d) = pair_distance(c, t, calipers) {
                match best {
                    Some((_, bd)) if bd <= d => {}
                    _ => best = Some((ci, d)),
                }
            }
        }
        if let Some((ci, d)) = best {
            taken[ci] = true;
            pairs.push(MatchedPair {
                control_id: control[ci].id,
                treatment_id: t.id,
                control_outcome: control[ci].outcome,
                treatment_outcome: t.outcome,
                distance: d,
            });
        }
    }
    pairs
}

/// Normalised distance between a control and a treated unit, or `None` when
/// any covariate violates its caliper.
///
/// Each per-covariate difference is divided by the caliper width at that
/// point, so a value of 1.0 means "exactly at the edge of similarity" for
/// that covariate regardless of its units.
pub fn pair_distance(control: &Unit, treatment: &Unit, calipers: &[Caliper]) -> Option<f64> {
    let mut sum_sq = 0.0;
    for ((a, b), cal) in control
        .covariates
        .iter()
        .zip(&treatment.covariates)
        .zip(calipers)
    {
        if !cal.within(*a, *b) {
            return None;
        }
        let width = cal.width_at(a.abs().max(b.abs()));
        let norm = if width > 0.0 {
            (a - b).abs() / width
        } else {
            0.0
        };
        sum_sq += norm * norm;
    }
    Some(sum_sq.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: u64, cov: &[f64], out: f64) -> Unit {
        Unit::new(id, cov.to_vec(), out)
    }

    fn paper_calipers(n: usize) -> Vec<Caliper> {
        vec![Caliper::PAPER; n]
    }

    #[test]
    fn nearest_eligible_control_wins() {
        let control = vec![
            unit(1, &[100.0], 1.0),
            unit(2, &[110.0], 2.0),
            unit(3, &[124.0], 3.0),
        ];
        let treatment = vec![unit(10, &[112.0], 9.0)];
        let pairs = match_pairs(&control, &treatment, &paper_calipers(1));
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].control_id, 2, "110 is nearest to 112");
        assert_eq!(pairs[0].treatment_id, 10);
    }

    #[test]
    fn caliper_excludes_dissimilar() {
        let control = vec![unit(1, &[10.0], 1.0)];
        let treatment = vec![unit(2, &[20.0], 2.0)];
        assert!(match_pairs(&control, &treatment, &paper_calipers(1)).is_empty());
    }

    #[test]
    fn matching_is_without_replacement() {
        let control = vec![unit(1, &[100.0], 1.0)];
        let treatment = vec![unit(10, &[100.0], 2.0), unit(11, &[100.0], 3.0)];
        let pairs = match_pairs(&control, &treatment, &paper_calipers(1));
        assert_eq!(pairs.len(), 1, "single control can only be used once");
    }

    #[test]
    fn pairs_are_disjoint() {
        let control: Vec<Unit> = (0..50).map(|i| unit(i, &[i as f64 + 100.0], 0.0)).collect();
        let treatment: Vec<Unit> = (0..50)
            .map(|i| unit(1000 + i, &[i as f64 + 101.0], 1.0))
            .collect();
        let pairs = match_pairs(&control, &treatment, &paper_calipers(1));
        let mut controls: Vec<u64> = pairs.iter().map(|p| p.control_id).collect();
        let mut treats: Vec<u64> = pairs.iter().map(|p| p.treatment_id).collect();
        controls.sort_unstable();
        controls.dedup();
        treats.sort_unstable();
        treats.dedup();
        assert_eq!(controls.len(), pairs.len());
        assert_eq!(treats.len(), pairs.len());
    }

    #[test]
    fn all_covariates_must_pass() {
        // Similar latency but very different price: no match.
        let calipers = paper_calipers(2);
        let control = vec![unit(1, &[50.0, 25.0], 1.0)];
        let treatment = vec![unit(2, &[55.0, 90.0], 2.0)];
        assert!(match_pairs(&control, &treatment, &calipers).is_empty());
        // Both similar: match.
        let treatment_ok = vec![unit(3, &[55.0, 28.0], 2.0)];
        assert_eq!(match_pairs(&control, &treatment_ok, &calipers).len(), 1);
    }

    #[test]
    fn distance_is_zero_for_identical_covariates() {
        let control = vec![unit(1, &[42.0, 7.0], 1.0)];
        let treatment = vec![unit(2, &[42.0, 7.0], 2.0)];
        let pairs = match_pairs(&control, &treatment, &paper_calipers(2));
        assert_eq!(pairs[0].distance, 0.0);
    }

    #[test]
    fn distance_normalisation_is_unitless() {
        // The same relative offset in two very different units should give
        // the same distance contribution.
        let cal = [Caliper::PAPER];
        let a = pair_distance(&unit(1, &[1000.0], 0.0), &unit(2, &[1100.0], 0.0), &cal).unwrap();
        let b = pair_distance(&unit(3, &[1.0], 0.0), &unit(4, &[1.1], 0.0), &cal).unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn empty_groups_produce_no_pairs() {
        assert!(match_pairs(&[], &[], &paper_calipers(0)).is_empty());
        let t = vec![unit(1, &[1.0], 1.0)];
        assert!(match_pairs(&[], &t, &paper_calipers(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "covariates")]
    fn covariate_count_mismatch_panics() {
        let control = vec![unit(1, &[1.0, 2.0], 1.0)];
        let treatment = vec![unit(2, &[1.0], 2.0)];
        let _ = match_pairs(&control, &treatment, &paper_calipers(2));
    }

    #[test]
    fn tighter_caliper_yields_fewer_pairs() {
        // Every treatment sits exactly 15% above its would-be control:
        // all pairs pass a 25% caliper, none pass a 10% caliper.
        let control: Vec<Unit> = (0..20)
            .map(|i| unit(i, &[100.0 + 3.0 * i as f64], 0.0))
            .collect();
        let treatment: Vec<Unit> = (0..20)
            .map(|i| unit(100 + i, &[(100.0 + 3.0 * i as f64) * 1.15], 1.0))
            .collect();
        let loose = match_pairs(&control, &treatment, &[Caliper::relative(0.25)]);
        let tight = match_pairs(&control, &treatment, &[Caliper::relative(0.10)]);
        assert!(
            loose.len() > tight.len(),
            "loose = {}, tight = {}",
            loose.len(),
            tight.len()
        );
    }
}
