//! Nearest-neighbour matching with calipers.
//!
//! The paper "use\[s\] nearest neighbor matching to pair similar users in
//! 'control' and 'treatment' groups … with a caliper to ensure that
//! dissimilar users are not matched" (§3.2). We implement greedy 1:1
//! matching without replacement: treated units are processed in input
//! order, each taking the nearest eligible control; matched controls are
//! removed from the pool. The trade-off the paper notes — a tighter caliper
//! gives cleaner comparisons but fewer pairs — is directly observable by
//! varying the [`Caliper`]s (see the `ablate_caliper` bench), and the
//! audited entry point [`match_pairs_audited`] records it per run: how many
//! treated units were considered, how many candidate controls each caliper
//! rejected, and the distance distribution of the pairs that formed.
//!
//! **Tie-breaking is explicit**: when two eligible controls are exactly
//! equidistant from a treated unit, the one with the lower `id` wins. This
//! makes the matching — and therefore the provenance ledger — a pure
//! function of the unit *sets*, stable under control-pool reordering.

use crate::caliper::Caliper;
use bb_trace::Log2Histogram;

/// One unit (user) entering an experiment: an opaque id, the covariates to
/// balance on, and the outcome to compare.
#[derive(Clone, Debug, PartialEq)]
pub struct Unit {
    /// Caller-meaningful identifier (propagated into matches).
    pub id: u64,
    /// Covariate vector; all units in one experiment must agree on length
    /// and ordering.
    pub covariates: Vec<f64>,
    /// Outcome value (a demand metric, in this study).
    pub outcome: f64,
}

impl Unit {
    /// Convenience constructor.
    pub fn new(id: u64, covariates: Vec<f64>, outcome: f64) -> Self {
        assert!(
            covariates.iter().all(|c| c.is_finite()),
            "covariates must be finite"
        );
        assert!(outcome.is_finite(), "outcome must be finite");
        Unit {
            id,
            covariates,
            outcome,
        }
    }
}

/// A matched control/treatment pair.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchedPair {
    /// Id of the control unit.
    pub control_id: u64,
    /// Id of the treated unit.
    pub treatment_id: u64,
    /// Outcome of the control unit.
    pub control_outcome: f64,
    /// Outcome of the treated unit.
    pub treatment_outcome: f64,
    /// Normalised covariate distance of the pair (0 = identical).
    pub distance: f64,
}

/// Audit trail of one greedy matching run — the numbers an observational
/// study must be able to show for its matching to be trusted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MatchAudit {
    /// Size of the control pool offered to the matcher.
    pub control_pool: u64,
    /// Treated units that entered the matcher.
    pub treated_considered: u64,
    /// Pairs that formed (≤ `treated_considered`).
    pub pairs_formed: u64,
    /// Treated units that found no eligible control.
    pub treated_unmatched: u64,
    /// Candidate (control, treated) evaluations that passed every caliper.
    pub candidates_eligible: u64,
    /// Candidate evaluations rejected, broken down by the index of the
    /// *first* covariate whose caliper fired (one slot per covariate).
    pub caliper_rejections: Vec<u64>,
    /// Log₂ histogram of accepted pair distances, base 10⁻³ — bucket `k`
    /// covers `(2^(k-1), 2^k]` thousandths of a caliper width. Exact-zero
    /// distances (identical covariates) land in `nonpositive`.
    pub pair_distance_log2: Log2Histogram,
}

/// Base for [`MatchAudit::pair_distance_log2`]: distances are measured in
/// caliper widths, so most land well below 1; a 10⁻³ base keeps the small
/// end resolved.
pub const PAIR_DISTANCE_HIST_BASE: f64 = 1e-3;

/// Greedily match treated units to their nearest eligible control.
///
/// `calipers` must have one entry per covariate. A control is *eligible*
/// for a treated unit when every covariate passes its caliper; among
/// eligible controls the one with the smallest normalised Euclidean
/// distance wins, and **exact distance ties go to the lower control
/// `id`**, so the result does not depend on control-pool order. Matching
/// is 1:1 without replacement, so
/// `pairs.len() ≤ min(control.len(), treatment.len())`.
///
/// # Panics
/// Panics when any unit's covariate count disagrees with `calipers.len()`.
pub fn match_pairs(control: &[Unit], treatment: &[Unit], calipers: &[Caliper]) -> Vec<MatchedPair> {
    match_pairs_audited(control, treatment, calipers).0
}

/// [`match_pairs`] plus a [`MatchAudit`] describing what the matcher saw:
/// treated units considered, per-covariate caliper rejections, and the
/// distance distribution of accepted pairs.
///
/// # Panics
/// Panics when any unit's covariate count disagrees with `calipers.len()`.
pub fn match_pairs_audited(
    control: &[Unit],
    treatment: &[Unit],
    calipers: &[Caliper],
) -> (Vec<MatchedPair>, MatchAudit) {
    for u in control.iter().chain(treatment) {
        assert_eq!(
            u.covariates.len(),
            calipers.len(),
            "unit {} has {} covariates but {} calipers were given",
            u.id,
            u.covariates.len(),
            calipers.len()
        );
    }

    let mut audit = MatchAudit {
        control_pool: control.len() as u64,
        treated_considered: treatment.len() as u64,
        caliper_rejections: vec![0; calipers.len()],
        ..MatchAudit::default()
    };
    let mut taken = vec![false; control.len()];
    let mut pairs = Vec::new();

    for t in treatment {
        let mut best: Option<(usize, f64)> = None;
        for (ci, c) in control.iter().enumerate() {
            if taken[ci] {
                continue;
            }
            match pair_distance_detailed(c, t, calipers) {
                Ok(d) => {
                    audit.candidates_eligible += 1;
                    // Strictly nearer wins; on an exact tie the lower
                    // control id wins, making the outcome independent of
                    // control-pool order.
                    let better = match best {
                        None => true,
                        Some((bi, bd)) => d < bd || (d == bd && c.id < control[bi].id),
                    };
                    if better {
                        best = Some((ci, d));
                    }
                }
                Err(covariate) => audit.caliper_rejections[covariate] += 1,
            }
        }
        if let Some((ci, d)) = best {
            taken[ci] = true;
            audit.pairs_formed += 1;
            audit.pair_distance_log2.push(d, PAIR_DISTANCE_HIST_BASE);
            pairs.push(MatchedPair {
                control_id: control[ci].id,
                treatment_id: t.id,
                control_outcome: control[ci].outcome,
                treatment_outcome: t.outcome,
                distance: d,
            });
        } else {
            audit.treated_unmatched += 1;
        }
    }
    (pairs, audit)
}

/// Normalised distance between a control and a treated unit, or `None` when
/// any covariate violates its caliper.
///
/// Each per-covariate difference is divided by the caliper width at that
/// point, so a value of 1.0 means "exactly at the edge of similarity" for
/// that covariate regardless of its units.
pub fn pair_distance(control: &Unit, treatment: &Unit, calipers: &[Caliper]) -> Option<f64> {
    pair_distance_detailed(control, treatment, calipers).ok()
}

/// [`pair_distance`], but a caliper violation reports *which* covariate
/// fired: `Err(i)` is the index of the first covariate outside its
/// caliper. Feeds the per-covariate rejection counts in [`MatchAudit`].
pub fn pair_distance_detailed(
    control: &Unit,
    treatment: &Unit,
    calipers: &[Caliper],
) -> Result<f64, usize> {
    let mut sum_sq = 0.0;
    for (i, ((a, b), cal)) in control
        .covariates
        .iter()
        .zip(&treatment.covariates)
        .zip(calipers)
        .enumerate()
    {
        if !cal.within(*a, *b) {
            return Err(i);
        }
        let width = cal.width_at(a.abs().max(b.abs()));
        let norm = if width > 0.0 {
            (a - b).abs() / width
        } else {
            0.0
        };
        sum_sq += norm * norm;
    }
    Ok(sum_sq.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(id: u64, cov: &[f64], out: f64) -> Unit {
        Unit::new(id, cov.to_vec(), out)
    }

    fn paper_calipers(n: usize) -> Vec<Caliper> {
        vec![Caliper::PAPER; n]
    }

    #[test]
    fn nearest_eligible_control_wins() {
        let control = vec![
            unit(1, &[100.0], 1.0),
            unit(2, &[110.0], 2.0),
            unit(3, &[124.0], 3.0),
        ];
        let treatment = vec![unit(10, &[112.0], 9.0)];
        let pairs = match_pairs(&control, &treatment, &paper_calipers(1));
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].control_id, 2, "110 is nearest to 112");
        assert_eq!(pairs[0].treatment_id, 10);
    }

    #[test]
    fn caliper_excludes_dissimilar() {
        let control = vec![unit(1, &[10.0], 1.0)];
        let treatment = vec![unit(2, &[20.0], 2.0)];
        assert!(match_pairs(&control, &treatment, &paper_calipers(1)).is_empty());
    }

    #[test]
    fn matching_is_without_replacement() {
        let control = vec![unit(1, &[100.0], 1.0)];
        let treatment = vec![unit(10, &[100.0], 2.0), unit(11, &[100.0], 3.0)];
        let pairs = match_pairs(&control, &treatment, &paper_calipers(1));
        assert_eq!(pairs.len(), 1, "single control can only be used once");
    }

    #[test]
    fn pairs_are_disjoint() {
        let control: Vec<Unit> = (0..50).map(|i| unit(i, &[i as f64 + 100.0], 0.0)).collect();
        let treatment: Vec<Unit> = (0..50)
            .map(|i| unit(1000 + i, &[i as f64 + 101.0], 1.0))
            .collect();
        let pairs = match_pairs(&control, &treatment, &paper_calipers(1));
        let mut controls: Vec<u64> = pairs.iter().map(|p| p.control_id).collect();
        let mut treats: Vec<u64> = pairs.iter().map(|p| p.treatment_id).collect();
        controls.sort_unstable();
        controls.dedup();
        treats.sort_unstable();
        treats.dedup();
        assert_eq!(controls.len(), pairs.len());
        assert_eq!(treats.len(), pairs.len());
    }

    #[test]
    fn all_covariates_must_pass() {
        // Similar latency but very different price: no match.
        let calipers = paper_calipers(2);
        let control = vec![unit(1, &[50.0, 25.0], 1.0)];
        let treatment = vec![unit(2, &[55.0, 90.0], 2.0)];
        assert!(match_pairs(&control, &treatment, &calipers).is_empty());
        // Both similar: match.
        let treatment_ok = vec![unit(3, &[55.0, 28.0], 2.0)];
        assert_eq!(match_pairs(&control, &treatment_ok, &calipers).len(), 1);
    }

    #[test]
    fn distance_is_zero_for_identical_covariates() {
        let control = vec![unit(1, &[42.0, 7.0], 1.0)];
        let treatment = vec![unit(2, &[42.0, 7.0], 2.0)];
        let pairs = match_pairs(&control, &treatment, &paper_calipers(2));
        assert_eq!(pairs[0].distance, 0.0);
    }

    #[test]
    fn distance_normalisation_is_unitless() {
        // The same relative offset in two very different units should give
        // the same distance contribution.
        let cal = [Caliper::PAPER];
        let a = pair_distance(&unit(1, &[1000.0], 0.0), &unit(2, &[1100.0], 0.0), &cal).unwrap();
        let b = pair_distance(&unit(3, &[1.0], 0.0), &unit(4, &[1.1], 0.0), &cal).unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn empty_groups_produce_no_pairs() {
        assert!(match_pairs(&[], &[], &paper_calipers(0)).is_empty());
        let t = vec![unit(1, &[1.0], 1.0)];
        assert!(match_pairs(&[], &t, &paper_calipers(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "covariates")]
    fn covariate_count_mismatch_panics() {
        let control = vec![unit(1, &[1.0, 2.0], 1.0)];
        let treatment = vec![unit(2, &[1.0], 2.0)];
        let _ = match_pairs(&control, &treatment, &paper_calipers(2));
    }

    #[test]
    fn equidistant_tie_goes_to_the_lower_control_id() {
        // Two controls with identical covariates: exactly equidistant,
        // and the higher id arrives first in the pool.
        let treatment = vec![unit(10, &[100.0], 9.0)];
        let control = vec![unit(7, &[102.0], 1.0), unit(3, &[102.0], 2.0)];
        let pairs = match_pairs(&control, &treatment, &paper_calipers(1));
        assert_eq!(pairs[0].control_id, 3, "lower id wins the tie");
    }

    #[test]
    fn matching_is_stable_under_control_pool_reordering() {
        // A pool full of duplicate covariates forces ties; the winner
        // must be the same whichever order the pool arrives in.
        let control: Vec<Unit> = [5u64, 2, 9, 4, 7, 11]
            .iter()
            .enumerate()
            .map(|(i, &id)| unit(id, &[100.0 + (i % 2) as f64], i as f64))
            .collect();
        let treatment: Vec<Unit> = (0..4).map(|i| unit(100 + i, &[100.5], 1.0)).collect();
        let mut reversed = control.clone();
        reversed.reverse();
        let forward = match_pairs(&control, &treatment, &paper_calipers(1));
        let backward = match_pairs(&reversed, &treatment, &paper_calipers(1));
        assert_eq!(forward, backward, "control order must not matter");
    }

    #[test]
    fn pair_distance_detailed_reports_the_violating_covariate() {
        let calipers = paper_calipers(3);
        let c = unit(1, &[100.0, 50.0, 10.0], 0.0);
        // Second covariate (index 1) is far outside 25%.
        let t = unit(2, &[101.0, 90.0, 11.0], 0.0);
        assert_eq!(pair_distance_detailed(&c, &t, &calipers), Err(1));
        // All within: Ok with a finite distance.
        let t_ok = unit(3, &[101.0, 51.0, 11.0], 0.0);
        assert!(pair_distance_detailed(&c, &t_ok, &calipers).is_ok());
    }

    #[test]
    fn audit_counts_add_up() {
        let control = vec![
            unit(1, &[100.0], 1.0),
            unit(2, &[103.0], 2.0),
            unit(3, &[500.0], 3.0), // outside every treated unit's caliper
        ];
        let treatment = vec![
            unit(10, &[101.0], 9.0),
            unit(11, &[102.0], 9.0),
            unit(12, &[2000.0], 9.0), // matches nothing
        ];
        let (pairs, audit) = match_pairs_audited(&control, &treatment, &paper_calipers(1));
        assert_eq!(audit.control_pool, 3);
        assert_eq!(audit.treated_considered, 3);
        assert_eq!(audit.pairs_formed, pairs.len() as u64);
        assert_eq!(audit.pairs_formed + audit.treated_unmatched, 3);
        assert_eq!(audit.caliper_rejections.len(), 1);
        assert!(audit.caliper_rejections[0] > 0, "{audit:?}");
        assert_eq!(audit.pair_distance_log2.count(), audit.pairs_formed);
        // Audited and plain entry points agree.
        assert_eq!(pairs, match_pairs(&control, &treatment, &paper_calipers(1)));
    }

    #[test]
    fn zero_distance_pairs_land_in_the_nonpositive_bucket() {
        let control = vec![unit(1, &[42.0], 1.0)];
        let treatment = vec![unit(2, &[42.0], 2.0)];
        let (_, audit) = match_pairs_audited(&control, &treatment, &paper_calipers(1));
        assert_eq!(audit.pair_distance_log2.nonpositive(), 1);
    }

    #[test]
    fn tighter_caliper_yields_fewer_pairs() {
        // Every treatment sits exactly 15% above its would-be control:
        // all pairs pass a 25% caliper, none pass a 10% caliper.
        let control: Vec<Unit> = (0..20)
            .map(|i| unit(i, &[100.0 + 3.0 * i as f64], 0.0))
            .collect();
        let treatment: Vec<Unit> = (0..20)
            .map(|i| unit(100 + i, &[(100.0 + 3.0 * i as f64) * 1.15], 1.0))
            .collect();
        let loose = match_pairs(&control, &treatment, &[Caliper::relative(0.25)]);
        let tight = match_pairs(&control, &treatment, &[Caliper::relative(0.10)]);
        assert!(
            loose.len() > tight.len(),
            "loose = {}, tight = {}",
            loose.len(),
            tight.len()
        );
    }
}
