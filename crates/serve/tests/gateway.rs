//! In-process integration tests for the gateway: route behaviour, SSE
//! replay, and the cache-key semantics (hit ⇒ identical bytes without
//! recomputation; any parameter change ⇒ miss; corrupt entry ⇒ counted
//! rejection and recompute).

use bb_engine::ShardPlan;
use bb_serve::{Server, ServerConfig};
use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// Start a server over a tiny world so jobs finish in well under a
/// second even in debug builds.
fn small_server(cache_dir: &Path) -> Server {
    Server::start(ServerConfig {
        port: 0,
        cache_dir: cache_dir.to_path_buf(),
        days: 1,
        fcc_users: 20,
        plan: ShardPlan::new(3, 1),
        default_seed: 20141105,
        default_users: 250,
    })
    .expect("bind an ephemeral port")
}

/// Minimal HTTP/1.1 client. Responses use `Connection: close`, so the
/// whole exchange is write-request / read-to-EOF.
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path, b"")
}

fn post_job(addr: SocketAddr, body: &str) -> (u16, String) {
    http(addr, "POST", "/jobs", body.as_bytes())
}

/// Submit a job, wait for it in-process, and return its terminal view.
fn run_job(server: &Server, body: &str) -> bb_serve::JobView {
    let (status, response) = post_job(server.addr(), body);
    assert_eq!(status, 202, "submit: {response}");
    let id: u64 = response
        .split("\"job\":")
        .nth(1)
        .and_then(|s| s.trim_start().split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no job id in {response}"));
    let view = server.scheduler().wait(id).expect("job exists");
    assert_eq!(view.state, bb_serve::JobState::Done, "{:?}", view.error);
    view
}

#[test]
fn routes_serve_artifacts_errors_and_sse_replay() {
    let dir = tmpdir("gateway-routes");
    let server = small_server(&dir);
    let addr = server.addr();

    // Liveness before any job.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, body) = get(addr, "/version");
    assert_eq!(status, 200);
    assert!(body.contains("\"service\":\"bb-serve\""), "{body}");

    // Read-only routes 404 helpfully before the first job completes.
    let (status, body) = get(addr, "/metrics");
    assert_eq!((status, body.contains("POST /jobs")), (404, true), "{body}");

    run_job(&server, "{}");

    // Artifacts: metrics is JSON; the exhibit list holds all nine ids;
    // `?format=` selects among the stored renders.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"study.users\""), "{metrics}");
    let (status, exhibits) = get(addr, "/exhibits");
    assert_eq!(status, 200);
    for id in [
        "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig2c", "fig2d", "fig7a", "fig7b",
    ] {
        assert!(exhibits.contains(&format!("\"{id}\"")), "{exhibits}");
    }
    let (status, md) = get(addr, "/exhibits/fig1a");
    assert_eq!(status, 200);
    assert!(md.starts_with("**"), "markdown render: {md}");
    let (status, json) = get(addr, "/exhibits/fig1a?format=json");
    assert_eq!(status, 200);
    assert!(json.contains("\"kind\": \"cdf\""), "{json}");
    let (status, _) = get(addr, "/exhibits/fig2a?format=gp");
    assert_eq!(status, 404, "binned exhibits have no gnuplot render");

    // Ledger filter: only `exhibit` events for the requested id.
    let (status, filtered) = get(addr, "/ledger?exhibit=fig1a");
    assert_eq!(status, 200);
    assert_eq!(filtered.lines().count(), 1, "{filtered}");
    assert!(filtered.contains("\"event\": \"exhibit\""), "{filtered}");
    assert!(filtered.contains("\"id\": \"fig1a\""), "{filtered}");

    // Country drill-down is case-insensitive on the code.
    let (status, us) = get(addr, "/countries/us");
    assert_eq!(status, 200);
    assert!(us.contains("\"country\":\"US\""), "{us}");
    assert!(us.contains("\"capacity_mbps\""), "{us}");

    // Errors: unknown ids, bad formats, bad specs, bad routes.
    assert_eq!(get(addr, "/jobs/99").0, 404);
    assert_eq!(get(addr, "/countries/ZZ").0, 404);
    assert_eq!(get(addr, "/exhibits/fig1a?format=exe").0, 400);
    assert_eq!(get(addr, "/exhibits/..%2Fetc").0, 400);
    assert_eq!(get(addr, "/no/such/route").0, 404);
    assert_eq!(post_job(addr, r#"{"severity": 7}"#).0, 400);
    assert_eq!(post_job(addr, r#"{"typo": 1}"#).0, 400);
    assert_eq!(http(addr, "PUT", "/jobs", b"{}").0, 405);

    // SSE: a late subscriber still gets the full replay, ending in the
    // terminal `done` frame, and the connection closes after it.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /jobs/0/events HTTP/1.1\r\nHost: test\r\n\r\n").expect("write");
    let mut sse = String::new();
    stream
        .read_to_string(&mut sse)
        .expect("stream closes after the terminal event");
    assert!(sse.contains("Content-Type: text/event-stream"), "{sse}");
    assert!(sse.contains("event: status"), "{sse}");
    assert!(sse.contains("event: shard"), "{sse}");
    assert!(sse.contains("event: ledger"), "{sse}");
    assert!(
        sse.trim_end()
            .ends_with("data: {\"job\": 0, \"from_cache\": false}"),
        "{sse}"
    );
    let shard_frames = sse.matches("event: shard").count();
    assert_eq!(shard_frames, 3, "one frame per shard: {sse}");
}

#[test]
fn cache_hits_misses_and_corruption_are_counted_and_correct() {
    let dir = tmpdir("gateway-cache");
    let server = small_server(&dir);
    let addr = server.addr();

    // Cold run: a miss that computes.
    let first = run_job(&server, "{}");
    assert!(!first.from_cache);
    let (_, baseline) = get(addr, "/metrics?job=0");

    // Identical re-submission: answered from the cache, byte-identical.
    let second = run_job(&server, "{}");
    assert!(second.from_cache, "identical spec must hit the cache");
    assert_eq!(second.cache_key, first.cache_key);
    assert_eq!(server.scheduler().cache_hits(), 1);
    assert_eq!(get(addr, "/metrics?job=1").1, baseline);

    // Any parameter change is a different key and a miss.
    let reseeded = run_job(&server, r#"{"seed": 7}"#);
    assert!(!reseeded.from_cache);
    assert_ne!(reseeded.cache_key, first.cache_key);
    let chaotic = run_job(&server, r#"{"scenario": "omnibus", "severity": 0.5}"#);
    assert!(!chaotic.from_cache);
    assert_ne!(chaotic.cache_key, first.cache_key);
    assert_ne!(
        get(addr, "/metrics?job=3").1,
        baseline,
        "chaos changes the result"
    );

    // Corrupt the stored entry: the next identical submission rejects
    // it (counted), recomputes, and still serves the same bytes.
    let entry = dir
        .join("results")
        .join(format!("{:016x}", first.cache_key))
        .join("metrics.json");
    fs::write(&entry, "{\"tampered\": true}").expect("corrupt the cache entry");
    let recomputed = run_job(&server, "{}");
    assert!(!recomputed.from_cache, "corrupt entry must not be served");
    assert_eq!(server.scheduler().cache_rejected(), 1);
    assert_eq!(
        get(addr, "/metrics?job=4").1,
        baseline,
        "recompute restores the bytes"
    );

    // And the repaired entry serves hits again.
    let repaired = run_job(&server, "{}");
    assert!(repaired.from_cache);
    let (_, health) = get(addr, "/healthz");
    assert!(health.contains("\"hits\":2"), "{health}");
    assert!(health.contains("\"rejected\":1"), "{health}");
}
