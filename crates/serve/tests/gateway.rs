//! In-process integration tests for the gateway: route behaviour, SSE
//! replay, and the cache-key semantics (hit ⇒ identical bytes without
//! recomputation; any parameter change ⇒ miss; corrupt entry ⇒ counted
//! rejection and recompute).

use bb_engine::ShardPlan;
use bb_serve::{Server, ServerConfig};
use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// Start a server over a tiny world so jobs finish in well under a
/// second even in debug builds.
fn small_server(cache_dir: &Path) -> Server {
    small_server_with(cache_dir, |_| {})
}

/// Like [`small_server`], with a config tweak (debug routes, access
/// log, keepalive interval).
fn small_server_with(cache_dir: &Path, tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut config = ServerConfig {
        port: 0,
        cache_dir: cache_dir.to_path_buf(),
        days: 1,
        fcc_users: 20,
        plan: ShardPlan::new(3, 1),
        default_seed: 20141105,
        default_users: 250,
        access_log: None,
        sse_keepalive: std::time::Duration::from_secs(10),
        debug_routes: false,
    };
    tweak(&mut config);
    Server::start(config).expect("bind an ephemeral port")
}

/// Minimal HTTP/1.1 client. Responses use `Connection: close`, so the
/// whole exchange is write-request / read-to-EOF.
fn http(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path, b"")
}

fn post_job(addr: SocketAddr, body: &str) -> (u16, String) {
    http(addr, "POST", "/jobs", body.as_bytes())
}

/// Submit a job, wait for it in-process, and return its terminal view.
fn run_job(server: &Server, body: &str) -> bb_serve::JobView {
    let (status, response) = post_job(server.addr(), body);
    assert_eq!(status, 202, "submit: {response}");
    let id: u64 = response
        .split("\"job\":")
        .nth(1)
        .and_then(|s| s.trim_start().split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no job id in {response}"));
    let view = server.scheduler().wait(id).expect("job exists");
    assert_eq!(view.state, bb_serve::JobState::Done, "{:?}", view.error);
    view
}

#[test]
fn routes_serve_artifacts_errors_and_sse_replay() {
    let dir = tmpdir("gateway-routes");
    let server = small_server(&dir);
    let addr = server.addr();

    // Liveness before any job.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    let (status, body) = get(addr, "/version");
    assert_eq!(status, 200);
    assert!(body.contains("\"service\":\"bb-serve\""), "{body}");

    // Read-only routes 404 helpfully before the first job completes.
    let (status, body) = get(addr, "/metrics");
    assert_eq!((status, body.contains("POST /jobs")), (404, true), "{body}");

    run_job(&server, "{}");

    // Artifacts: metrics is JSON; the exhibit list holds all nine ids;
    // `?format=` selects among the stored renders.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"study.users\""), "{metrics}");
    let (status, exhibits) = get(addr, "/exhibits");
    assert_eq!(status, 200);
    for id in [
        "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig2c", "fig2d", "fig7a", "fig7b",
    ] {
        assert!(exhibits.contains(&format!("\"{id}\"")), "{exhibits}");
    }
    let (status, md) = get(addr, "/exhibits/fig1a");
    assert_eq!(status, 200);
    assert!(md.starts_with("**"), "markdown render: {md}");
    let (status, json) = get(addr, "/exhibits/fig1a?format=json");
    assert_eq!(status, 200);
    assert!(json.contains("\"kind\": \"cdf\""), "{json}");
    let (status, _) = get(addr, "/exhibits/fig2a?format=gp");
    assert_eq!(status, 404, "binned exhibits have no gnuplot render");

    // Ledger filter: only `exhibit` events for the requested id.
    let (status, filtered) = get(addr, "/ledger?exhibit=fig1a");
    assert_eq!(status, 200);
    assert_eq!(filtered.lines().count(), 1, "{filtered}");
    assert!(filtered.contains("\"event\": \"exhibit\""), "{filtered}");
    assert!(filtered.contains("\"id\": \"fig1a\""), "{filtered}");

    // Country drill-down is case-insensitive on the code.
    let (status, us) = get(addr, "/countries/us");
    assert_eq!(status, 200);
    assert!(us.contains("\"country\":\"US\""), "{us}");
    assert!(us.contains("\"capacity_mbps\""), "{us}");

    // Errors: unknown ids, bad formats, bad specs, bad routes.
    assert_eq!(get(addr, "/jobs/99").0, 404);
    assert_eq!(get(addr, "/countries/ZZ").0, 404);
    assert_eq!(get(addr, "/exhibits/fig1a?format=exe").0, 400);
    assert_eq!(get(addr, "/exhibits/..%2Fetc").0, 400);
    assert_eq!(get(addr, "/no/such/route").0, 404);
    assert_eq!(post_job(addr, r#"{"severity": 7}"#).0, 400);
    assert_eq!(post_job(addr, r#"{"typo": 1}"#).0, 400);
    assert_eq!(http(addr, "PUT", "/jobs", b"{}").0, 405);

    // SSE: a late subscriber still gets the full replay, ending in the
    // terminal `done` frame, and the connection closes after it.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /jobs/0/events HTTP/1.1\r\nHost: test\r\n\r\n").expect("write");
    let mut sse = String::new();
    stream
        .read_to_string(&mut sse)
        .expect("stream closes after the terminal event");
    assert!(sse.contains("Content-Type: text/event-stream"), "{sse}");
    assert!(sse.contains("event: status"), "{sse}");
    assert!(sse.contains("event: shard"), "{sse}");
    assert!(sse.contains("event: ledger"), "{sse}");
    assert!(
        sse.trim_end()
            .ends_with("data: {\"job\": 0, \"from_cache\": false}"),
        "{sse}"
    );
    let shard_frames = sse.matches("event: shard").count();
    assert_eq!(shard_frames, 3, "one frame per shard: {sse}");
}

#[test]
fn cache_hits_misses_and_corruption_are_counted_and_correct() {
    let dir = tmpdir("gateway-cache");
    let server = small_server(&dir);
    let addr = server.addr();

    // Cold run: a miss that computes.
    let first = run_job(&server, "{}");
    assert!(!first.from_cache);
    let (_, baseline) = get(addr, "/metrics?job=0");

    // Identical re-submission: answered from the cache, byte-identical.
    let second = run_job(&server, "{}");
    assert!(second.from_cache, "identical spec must hit the cache");
    assert_eq!(second.cache_key, first.cache_key);
    assert_eq!(server.scheduler().cache_hits(), 1);
    assert_eq!(get(addr, "/metrics?job=1").1, baseline);

    // Any parameter change is a different key and a miss.
    let reseeded = run_job(&server, r#"{"seed": 7}"#);
    assert!(!reseeded.from_cache);
    assert_ne!(reseeded.cache_key, first.cache_key);
    let chaotic = run_job(&server, r#"{"scenario": "omnibus", "severity": 0.5}"#);
    assert!(!chaotic.from_cache);
    assert_ne!(chaotic.cache_key, first.cache_key);
    assert_ne!(
        get(addr, "/metrics?job=3").1,
        baseline,
        "chaos changes the result"
    );

    // Corrupt the stored entry: the next identical submission rejects
    // it (counted), recomputes, and still serves the same bytes.
    let entry = dir
        .join("results")
        .join(format!("{:016x}", first.cache_key))
        .join("metrics.json");
    fs::write(&entry, "{\"tampered\": true}").expect("corrupt the cache entry");
    let recomputed = run_job(&server, "{}");
    assert!(!recomputed.from_cache, "corrupt entry must not be served");
    assert_eq!(server.scheduler().cache_rejected(), 1);
    assert_eq!(
        get(addr, "/metrics?job=4").1,
        baseline,
        "recompute restores the bytes"
    );

    // And the repaired entry serves hits again.
    let repaired = run_job(&server, "{}");
    assert!(repaired.from_cache);
    let (_, health) = get(addr, "/healthz");
    assert!(health.contains("\"hits\":2"), "{health}");
    assert!(health.contains("\"rejected\":1"), "{health}");
}

/// Send raw header bytes (no body) and return the status line's code.
/// Used for requests whose *headers* must be rejected — the server has
/// to answer over HTTP rather than silently dropping the socket.
fn raw_status(addr: SocketAddr, head: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(head.as_bytes()).expect("write head");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no HTTP status in {raw:?}"))
}

#[test]
fn bad_content_length_is_rejected_before_allocation_with_400_or_413() {
    let dir = tmpdir("serve-content-length");
    let server = small_server(&dir);
    let addr = server.addr();

    // Oversized declarations — including ones that do not even fit in
    // u64 — must answer 413 from the header alone. Before the fix these
    // either allocated `vec![0; attacker_len]` or dropped the socket
    // without a response.
    for huge in ["1048577", "999999999999", "99999999999999999999999999"] {
        assert_eq!(
            raw_status(
                addr,
                &format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {huge}\r\n\r\n")
            ),
            413,
            "Content-Length: {huge}"
        );
    }

    // Garbage (and negative-looking) declarations are a 400, not a
    // silent zero-length body.
    for garbage in ["-1", "abc", "18xo", "1e6"] {
        assert_eq!(
            raw_status(
                addr,
                &format!("POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {garbage}\r\n\r\n")
            ),
            400,
            "Content-Length: {garbage}"
        );
    }

    // A well-formed request on the same server still works.
    assert_eq!(get(addr, "/healthz").0, 200);
}

#[test]
fn query_params_are_percent_decoded_end_to_end() {
    let dir = tmpdir("serve-percent-decode");
    let server = small_server(&dir);
    let addr = server.addr();
    run_job(&server, "{}");

    let plain = get(addr, "/metrics?job=0");
    assert_eq!(plain.0, 200);
    // "%30" is "0" and "%6Aob" is "job": both the key and the value of
    // a query parameter arrive percent-decoded at the route.
    let encoded = get(addr, "/metrics?%6Aob=%30");
    assert_eq!(encoded.0, 200);
    assert_eq!(encoded.1, plain.1, "encoded query must hit the same job");

    let exhibit_plain = get(addr, "/exhibits/fig1a?format=md");
    assert_eq!(exhibit_plain.0, 200);
    let exhibit_encoded = get(addr, "/exhibits/fig1a?format=m%64");
    assert_eq!(exhibit_encoded.0, 200);
    assert_eq!(exhibit_encoded.1, exhibit_plain.1);
}

#[test]
fn non_finite_severity_is_a_400_at_submission() {
    let dir = tmpdir("serve-nonfinite-severity");
    let server = small_server(&dir);
    let addr = server.addr();

    // 1e999 overflows f64 parsing to +inf; the submit-time validator
    // must catch it (is_finite), not let it seed a chaos campaign.
    for body in [
        r#"{"scenario": "omnibus", "severity": 1e999}"#,
        r#"{"scenario": "omnibus", "severity": -1e999}"#,
        r#"{"scenario": "omnibus", "severity": 2.0}"#,
        r#"{"scenario": "omnibus", "severity": -0.25}"#,
    ] {
        let (status, response) = post_job(addr, body);
        assert_eq!(status, 400, "{body}: {response}");
        assert!(response.contains("severity"), "{body}: {response}");
    }
    // The boundary values are valid.
    for body in [
        r#"{"scenario": "omnibus", "severity": 0.0}"#,
        r#"{"scenario": "omnibus", "severity": 1.0}"#,
    ] {
        assert_eq!(post_job(addr, body).0, 202, "{body}");
    }
}
