//! Regression test: the scheduler's queue-depth gauge is consistent
//! under concurrent submit/drain.
//!
//! The original code incremented the gauge *after* releasing the job
//! table lock and decremented it in the worker the same way, so a
//! scrape interleaved between the queue edit and the gauge edit could
//! observe a phantom depth — including a negative one when the worker's
//! decrement landed before a submitter's increment. The fix publishes
//! `queue.len()` while the lock is held, making the gauge a snapshot of
//! the protected state. This test hammers submit from several threads
//! while a sampler asserts the gauge never goes negative and ends at
//! exactly zero once the queue drains.

use bb_engine::ShardPlan;
use bb_serve::runner::{JobSpec, RunParams};
use bb_serve::{Scheduler, ServeTelemetry};
use bb_trace::SystemClock;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

#[test]
fn queue_depth_gauge_never_goes_negative_and_drains_to_zero() {
    let dir = tmpdir("scheduler-gauge");
    let telemetry =
        Arc::new(ServeTelemetry::new(Arc::new(SystemClock::new()), None).expect("telemetry"));
    let scheduler = Arc::new(Scheduler::start(
        &dir,
        RunParams {
            days: 1,
            fcc_users: 10,
            plan: ShardPlan::new(2, 1),
        },
        Arc::clone(&telemetry),
    ));

    // A sampler scraping the gauge as fast as it can, like a metrics
    // endpoint under load. Any negative observation is the bug.
    let stop = Arc::new(AtomicBool::new(false));
    let min_seen = Arc::new(AtomicI64::new(0));
    let sampler = {
        let stop = Arc::clone(&stop);
        let min_seen = Arc::clone(&min_seen);
        let telemetry = Arc::clone(&telemetry);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let depth = telemetry.queue_depth.get();
                min_seen.fetch_min(depth, Ordering::Relaxed);
                std::thread::yield_now();
            }
        })
    };

    // Identical specs: the first submission computes, the rest answer
    // from the result cache, so the queue churns fast — maximising
    // submit/drain interleavings per second.
    const THREADS: usize = 4;
    const JOBS_PER_THREAD: usize = 25;
    let submitters: Vec<_> = (0..THREADS)
        .map(|_| {
            let scheduler = Arc::clone(&scheduler);
            std::thread::spawn(move || {
                for _ in 0..JOBS_PER_THREAD {
                    scheduler.submit(JobSpec {
                        seed: 20141105,
                        users: 60,
                        scenario: None,
                        severity: 0.0,
                    });
                }
            })
        })
        .collect();
    for submitter in submitters {
        submitter.join().expect("submitter thread");
    }

    // Wait for the worker to drain everything.
    let total = (THREADS * JOBS_PER_THREAD) as u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    while telemetry.jobs_completed.get() + telemetry.jobs_failed.get() < total {
        assert!(
            Instant::now() < deadline,
            "queue did not drain: {} of {total} jobs finished",
            telemetry.jobs_completed.get() + telemetry.jobs_failed.get()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler thread");

    assert!(
        min_seen.load(Ordering::Relaxed) >= 0,
        "the queue-depth gauge dipped to {} under concurrent submit/drain",
        min_seen.load(Ordering::Relaxed)
    );
    assert_eq!(
        telemetry.queue_depth.get(),
        0,
        "a drained queue must read depth 0"
    );
}
