//! Live-telemetry integration tests over real sockets: RED metrics and
//! Prometheus exposition, the access log, HEAD semantics, panic
//! isolation, and SSE keepalive / dropped-subscriber accounting.

use bb_engine::ShardPlan;
use bb_serve::{Server, ServerConfig};
use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// A tiny-world server with the test-only debug routes enabled, a fast
/// SSE keepalive, and an optional access log.
fn debug_server(cache_dir: &Path, access_log: Option<PathBuf>) -> Server {
    Server::start(ServerConfig {
        port: 0,
        cache_dir: cache_dir.to_path_buf(),
        days: 1,
        fcc_users: 20,
        plan: ShardPlan::new(3, 1),
        default_seed: 20141105,
        default_users: 250,
        access_log,
        sse_keepalive: Duration::from_millis(50),
        debug_routes: true,
    })
    .expect("bind an ephemeral port")
}

/// Raw HTTP exchange returning `(status, headers, body)`.
fn exchange(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let (headers, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((raw.clone(), String::new()));
    (status, headers, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = exchange(addr, "GET", path);
    (status, body)
}

#[test]
fn panicking_handler_answers_500_and_never_kills_a_worker() {
    let dir = tmpdir("telemetry-panic");
    let server = debug_server(&dir, None);
    let addr = server.addr();

    // More panics than the pool has workers: before the catch-unwind
    // fix each panic killed one worker permanently, so the 9th request
    // (and every later one) would hang forever with no worker left.
    for i in 0..12 {
        let (status, body) = get(addr, "/debug/panic");
        assert_eq!(status, 500, "request {i}: {body}");
        assert!(body.contains("panicked"), "{body}");
    }
    assert_eq!(server.telemetry().panics.get(), 12, "every panic counted");

    // The pool is still fully alive and serving.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");

    // The panics surface in the exposition and in the error counters.
    let (_, prom) = get(addr, "/metrics.prom");
    assert!(prom.contains("serve_panics 12"), "{prom}");
    assert!(
        prom.contains("serve_errors{class=\"5xx\",route=\"(panic)\"} 12"),
        "{prom}"
    );
}

#[test]
fn head_answers_every_get_route_with_headers_and_no_body() {
    let dir = tmpdir("telemetry-head");
    let server = debug_server(&dir, None);
    let addr = server.addr();

    for path in ["/", "/healthz", "/version", "/jobs", "/metrics.prom"] {
        let (get_status, _, get_body) = exchange(addr, "GET", path);
        let (head_status, head_headers, head_body) = exchange(addr, "HEAD", path);
        assert_eq!(head_status, get_status, "{path}");
        assert_eq!(head_body, "", "{path}: HEAD must not carry a body");
        // The declared length is the GET body's length, not zero. (The
        // two GET bodies can differ between calls — /metrics.prom grows
        // with every request — so compare against a fresh GET loosely.)
        let declared: usize = head_headers
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{path}: no Content-Length in {head_headers}"));
        if path != "/metrics.prom" {
            assert_eq!(declared, get_body.len(), "{path}");
        } else {
            assert!(declared > 0, "{path}");
        }
    }

    // Error routes answer HEAD with the error status, still no body.
    let (status, _, body) = exchange(addr, "HEAD", "/no/such/route");
    assert_eq!((status, body.as_str()), (404, ""));

    // Non-GET routes keep rejecting other methods.
    let (status, _, _) = exchange(addr, "PUT", "/jobs");
    assert_eq!(status, 405);
}

#[test]
fn prometheus_exposition_covers_red_metrics_queue_and_cache() {
    let dir = tmpdir("telemetry-prom");
    let server = debug_server(&dir, None);
    let addr = server.addr();

    // Generate traffic: a computed job, a cached re-submission, reads.
    for body in ["{}", "{}"] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert!(raw.starts_with("HTTP/1.1 202"), "{raw}");
    }
    let last = server.scheduler().wait(1).expect("job 1");
    assert_eq!(last.state, bb_serve::JobState::Done, "{:?}", last.error);
    get(addr, "/metrics");
    get(addr, "/jobs/0");
    get(addr, "/jobs/99"); // 404 → a 4xx error sample

    let (status, prom) = get(addr, "/metrics.prom");
    assert_eq!(status, 200);
    // RED: per-route counts with method labels, 4xx split, histograms.
    assert!(
        prom.contains("serve_requests{method=\"POST\",route=\"/jobs\"} 2"),
        "{prom}"
    );
    assert!(
        prom.contains("serve_requests{method=\"GET\",route=\"/jobs/{id}\"} 2"),
        "{prom}"
    );
    assert!(
        prom.contains("serve_errors{class=\"4xx\",route=\"/jobs/{id}\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("serve_request_us_bucket{route=\"/metrics\",le=\"+Inf\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("serve_request_us_sum{route=\"/metrics\"}"),
        "{prom}"
    );
    // Scheduler + cache wiring: one computed job, one cache hit, the
    // job wall-time histogram saw both, the queue drained back to 0.
    assert!(
        prom.contains("# TYPE serve_jobs_completed counter"),
        "{prom}"
    );
    assert!(prom.contains("serve_jobs_completed 2"), "{prom}");
    assert!(prom.contains("serve_cache_hits 1"), "{prom}");
    assert!(prom.contains("serve_cache_misses 1"), "{prom}");
    assert!(prom.contains("serve_job_wall_us_count 2"), "{prom}");
    assert!(prom.contains("serve_queue_depth 0"), "{prom}");
    assert!(
        prom.contains("serve_in_flight 1"),
        "this very scrape: {prom}"
    );
    // Sliding-window series render as window-labelled `_window` gauges,
    // a family distinct from the monotone counters of the same name.
    assert!(
        prom.contains("serve_cache_hits_window{window=\"60s\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("serve_request_rate_window{window=\"60s\"}"),
        "{prom}"
    );

    // The JSON snapshot exposes the same state plus ring windows.
    let (status, snapshot) = get(addr, "/debug/telemetry");
    assert_eq!(status, 200);
    assert!(
        snapshot.contains("\"serve.jobs.completed\": 2"),
        "{snapshot}"
    );
    assert!(snapshot.contains("\"per_sec\""), "{snapshot}");
    assert!(snapshot.contains("\"uptime_secs\""), "{snapshot}");

    // The enriched health check.
    let (_, health) = get(addr, "/healthz");
    for key in [
        "\"uptime_secs\"",
        "\"in_flight\"",
        "\"queue_depth\"",
        "\"hits\":1",
    ] {
        assert!(health.contains(key), "{key} missing in {health}");
    }
}

#[test]
fn access_log_is_parseable_jsonl_with_monotonic_request_ids() {
    let dir = tmpdir("telemetry-access-log");
    let log_path = dir.join("access.jsonl");
    let server = debug_server(&dir, Some(log_path.clone()));
    let addr = server.addr();

    get(addr, "/healthz");
    get(addr, "/version");
    get(addr, "/no/such/route");
    exchange(addr, "HEAD", "/healthz");

    let text = fs::read_to_string(&log_path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "{text}");
    let mut ids = Vec::new();
    for line in &lines {
        let parsed: serde_json::Value = serde_json::from_str(line).expect(line);
        for field in [
            "ts", "id", "method", "route", "path", "status", "bytes", "us",
        ] {
            assert!(parsed.get(field).is_some(), "missing {field} in {line}");
        }
        ids.push(parsed["id"].as_u64().expect("numeric id"));
    }
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 4, "request ids are unique: {ids:?}");
    assert!(
        lines[2].contains("\"route\": \"(unmatched)\""),
        "{}",
        lines[2]
    );
    assert!(
        lines[2].contains("\"path\": \"/no/such/route\""),
        "{}",
        lines[2]
    );
    assert!(lines[3].contains("\"method\": \"HEAD\""), "{}", lines[3]);
    assert!(
        lines[3].contains("\"bytes\": 0"),
        "HEAD writes no body: {}",
        lines[3]
    );
}

#[test]
fn sse_keepalives_flow_and_dropped_subscribers_are_counted() {
    let dir = tmpdir("telemetry-sse-drop");
    let server = debug_server(&dir, None);
    let addr = server.addr();

    // /debug/hold streams a feed that never closes, so the only frames
    // are keepalives — read two to prove the interval fires repeatedly.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /debug/hold HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(&stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read head");
        head.push_str(&line);
        if line == "\r\n" {
            break;
        }
    }
    assert!(head.contains("text/event-stream"), "{head}");
    let mut keepalives = 0;
    while keepalives < 2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read frame");
        if line.starts_with(": keepalive") {
            keepalives += 1;
        }
    }
    // Drop the subscriber mid-stream; the server notices within a few
    // keepalive intervals (the write to the dead socket fails) and
    // counts it.
    drop(reader);
    drop(stream);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.telemetry().sse_dropped.get() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "dropped subscriber was never detected"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let (_, prom) = get(addr, "/metrics.prom");
    assert!(prom.contains("serve_sse_dropped 1"), "{prom}");
}

#[test]
fn debug_routes_are_absent_by_default() {
    let dir = tmpdir("telemetry-no-debug");
    let server = Server::start(ServerConfig {
        port: 0,
        cache_dir: dir.clone(),
        days: 1,
        fcc_users: 20,
        plan: ShardPlan::new(3, 1),
        default_seed: 20141105,
        default_users: 250,
        access_log: None,
        sse_keepalive: Duration::from_secs(10),
        debug_routes: false,
    })
    .expect("bind");
    let addr = server.addr();
    assert_eq!(get(addr, "/debug/panic").0, 404);
    assert_eq!(get(addr, "/debug/hold").0, 404);
    // The telemetry snapshot stays available — it is observability, not
    // a test hook.
    assert_eq!(get(addr, "/debug/telemetry").0, 200);
    assert_eq!(get(addr, "/metrics.prom").0, 200);
}
