//! # bb-serve — the always-on query gateway
//!
//! Turns the batch `reproduce` pipeline into a service: a zero-dependency
//! HTTP/1.1 server (std `TcpListener` + a small thread pool, hand-rolled
//! request parsing — the same no-external-deps discipline as `bb-trace`)
//! in front of an in-process job scheduler over the checkpointed
//! streaming engine.
//!
//! The load-bearing guarantee is inherited from the engine: a simulation
//! result is a pure function of `(seed, users, days, fcc, chaos)`, so the
//! gateway can cache completed runs keyed by the checkpoint-manifest
//! parameter digest and serve repeated queries **byte-identically** to
//! what the batch CLI writes for the same request — under any thread
//! plan, from cache or cold. The pieces:
//!
//! * [`http`] — request parsing, response writing, thread pool;
//! * [`sse`] — a replayable `text/event-stream` feed per job;
//! * [`cache`] — the manifest-keyed result cache (content-digest
//!   manifest written last; corruption degrades to recompute, never to
//!   a wrong answer);
//! * [`scheduler`] — the job queue and worker;
//! * [`runner`] — one job = one checkpointed streaming run, assembled
//!   from the exact code paths the batch CLI uses;
//! * [`telemetry`] — the live instrumentation surface: per-route RED
//!   metrics, gauges, job/cache series, the JSONL access log. Rendered
//!   at `/metrics.prom` (Prometheus) and `/debug/telemetry` (JSON);
//!   strictly separate from the byte-identical artifacts;
//! * [`gateway`] — the routes: `/jobs`, `/jobs/{id}/events` (SSE),
//!   `/metrics`, `/metrics.prom`, `/debug/telemetry`, `/ledger`,
//!   `/exhibits/{id}`, `/countries/{cc}`, `/survival`, `/healthz`,
//!   `/version`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod gateway;
pub mod http;
pub mod runner;
pub mod scheduler;
pub mod sse;
pub mod telemetry;

pub use cache::ResultCache;
pub use gateway::{Server, ServerConfig};
pub use runner::JobSpec;
pub use scheduler::{JobState, JobView, Scheduler};
pub use telemetry::ServeTelemetry;
