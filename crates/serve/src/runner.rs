//! One job = one checkpointed streaming run.
//!
//! The runner is deliberately thin: everything that determines bytes is
//! shared with the batch CLI — [`WorldConfig::streaming`] for the world,
//! `bb_study::provenance` for the metrics counters and the pinned ledger
//! event order, `bb_report::bundle` for the exhibit file set. The runner
//! only adds the service extras (per-exhibit Markdown, the country
//! drill-down document) *after* the batch-identical artifacts, and wires
//! the engine's progress hook and the ledger's tail subscriber into the
//! job's SSE feed.

use bb_dataset::{World, WorldConfig};
use bb_engine::{CheckpointParams, CheckpointReport, CheckpointStore, RunHooks, ShardPlan};
use bb_netsim::chaos::{ChaosScenario, ChaosSpec};
use bb_report::bundle;
use bb_study::provenance;
use bb_study::StreamStudy;
use bb_trace::EventLog;
use std::path::Path;
use std::sync::Arc;

/// What a `POST /jobs` asks for. Everything that changes the result is
/// here; everything that does not (thread plan, cache location) lives
/// in the server config.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// World seed.
    pub seed: u64,
    /// Approximate streamed user count.
    pub users: u64,
    /// Optional degraded-collection scenario.
    pub scenario: Option<ChaosScenario>,
    /// Chaos severity in `[0, 1]` (ignored without a scenario).
    pub severity: f64,
}

impl JobSpec {
    /// Parse a job request body: a JSON object with optional `seed`,
    /// `users`, `scenario`, `severity` fields. Unknown fields are
    /// rejected so a typo cannot silently request the default run.
    pub fn from_json(body: &[u8], default_seed: u64, default_users: u64) -> Result<Self, String> {
        let value: serde_json::Value = if body.is_empty() {
            serde_json::Value::Object(Default::default())
        } else {
            serde_json::from_slice(body).map_err(|e| format!("invalid JSON body: {e}"))?
        };
        let obj = value.as_object().ok_or("job spec must be a JSON object")?;
        let mut spec = JobSpec {
            seed: default_seed,
            users: default_users,
            scenario: None,
            severity: 0.5,
        };
        for (key, v) in obj {
            match key.as_str() {
                "seed" => spec.seed = v.as_u64().ok_or("seed must be an integer")?,
                "users" => {
                    spec.users = v.as_u64().filter(|&u| u > 0).ok_or("users must be >= 1")?;
                }
                "scenario" => {
                    if !v.is_null() {
                        let name = v.as_str().ok_or("scenario must be a string")?;
                        spec.scenario = Some(ChaosScenario::parse(name).ok_or_else(|| {
                            let known: Vec<&str> =
                                ChaosScenario::ALL.iter().map(|s| s.name()).collect();
                            format!("unknown scenario {name:?}; one of {}", known.join(", "))
                        })?);
                    }
                }
                "severity" => {
                    let s = v.as_f64().ok_or("severity must be a number")?;
                    if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                        return Err(format!("severity must be in [0, 1], got {s}"));
                    }
                    spec.severity = s;
                }
                other => return Err(format!("unknown job field {other:?}")),
            }
        }
        Ok(spec)
    }

    /// The chaos campaign the spec implies, if any.
    pub fn chaos(&self) -> Option<ChaosSpec> {
        self.scenario
            .map(|scenario| ChaosSpec::new(scenario, self.severity))
    }

    /// The spec as a JSON object (for job listings and SSE frames).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "seed": self.seed,
            "users": self.users,
            "scenario": self.scenario.map(|s| s.name()),
            "severity": self.severity,
        })
    }

    /// The canonical parameter list identifying this run — the same
    /// pairs, in the same order, as the batch CLI's checkpoint manifest
    /// for `reproduce --users` (thread count deliberately absent).
    pub fn params(&self, days: u32, fcc_users: usize) -> CheckpointParams {
        CheckpointParams::new()
            .set("path", "streaming")
            .set("seed", self.seed)
            .set("scale", WorldConfig::paper_scale(0).user_scale)
            .set("days", days)
            .set("fcc", fcc_users)
            .set("users", self.users)
            .set(
                "chaos",
                self.chaos().map_or_else(|| "-".into(), |c| c.label()),
            )
    }
}

/// Progress and provenance callbacks for a running job.
#[derive(Clone, Default)]
pub struct JobHooks {
    /// Called once per shard (restored or computed).
    pub progress: Option<Arc<dyn Fn(bb_engine::ShardProgress) + Send + Sync>>,
    /// Called once per ledger event, in emit order.
    pub ledger: Option<bb_trace::EventTail>,
}

impl std::fmt::Debug for JobHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHooks")
            .field("progress", &self.progress.is_some())
            .field("ledger", &self.ledger.is_some())
            .finish()
    }
}

/// The fixed world parameters a server instance runs every job with.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// Observation window, days.
    pub days: u32,
    /// US-only FCC gateway cohort size.
    pub fcc_users: usize,
    /// Shard/thread plan. Never affects result bytes.
    pub plan: ShardPlan,
}

/// Run `spec` as a checkpointed streaming fold and return the artifact
/// file set: first the batch-identical files (`metrics.json`,
/// `ledger.jsonl`, the exhibit bundle), then the service extras
/// (`{id}.md` per exhibit, `countries.json`). The checkpoint under
/// `checkpoint_dir` is always resumed when compatible, so an
/// interrupted job continues instead of restarting.
pub fn run_job(
    spec: JobSpec,
    run: RunParams,
    checkpoint_dir: &Path,
    hooks: &JobHooks,
) -> Result<(Vec<(String, String)>, CheckpointReport), String> {
    let mut cfg = WorldConfig::streaming(spec.seed, spec.users, run.days, run.fcc_users);
    cfg.chaos = spec.chaos();
    let world = World::new(cfg);
    let store = CheckpointStore::new(checkpoint_dir, spec.params(run.days, run.fcc_users));
    let progress = hooks.progress.clone();
    let progress_fn = progress
        .as_ref()
        .map(|p| p.as_ref() as &(dyn Fn(bb_engine::ShardProgress) + Sync));
    let engine_hooks = match progress_fn {
        Some(hook) => RunHooks::on_progress(hook),
        None => RunHooks::none(),
    };
    let (_, study, mut registry, _, report) = world
        .fold_users_checkpointed(
            run.plan,
            &store,
            true,
            engine_hooks,
            StreamStudy::new,
            |s, r, u| s.absorb(r, u),
        )
        .map_err(|e| e.to_string())?;
    provenance::register_stream_metrics(&mut registry, &study);
    let mut ledger = EventLog::new();
    if let Some(tail) = &hooks.ledger {
        ledger.set_tail(Arc::clone(tail));
    }
    provenance::stream_provenance(&mut ledger, spec.seed, &study, &registry);
    ledger.clear_tail();

    let mut files = vec![
        ("metrics.json".to_string(), registry.to_json()),
        ("ledger.jsonl".to_string(), ledger.to_jsonl()),
    ];
    files.extend(bundle::stream_exhibit_files(&study));
    for id in bundle::stream_exhibit_ids(&study) {
        if let Some(md) = bundle::stream_exhibit_markdown(&study, &id) {
            files.push((format!("{id}.md"), md));
        }
    }
    files.push(("countries.json".to_string(), countries_json(&study)));
    Ok((files, report))
}

/// Round to 4 decimals for a byte-stable drill-down document.
fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// The per-country drill-down: one object per observed country (sorted
/// by code — the study keeps a BTreeMap) with capacity and utilisation
/// quantiles from the mergeable sketches.
fn countries_json(study: &StreamStudy) -> String {
    let mut countries = serde_json::Map::new();
    for (code, sketch) in &study.by_country {
        let quantiles = |s: &bb_engine::EcdfSketch| {
            serde_json::json!({
                "n": s.count(),
                "p10": s.quantile(0.10).map(round4),
                "median": s.median().map(round4),
                "p90": s.quantile(0.90).map(round4),
            })
        };
        countries.insert(
            code.to_string(),
            serde_json::json!({
                "capacity_mbps": quantiles(&sketch.capacity),
                "utilization": quantiles(&sketch.utilization),
            }),
        );
    }
    serde_json::to_string_pretty(&serde_json::Value::Object(countries)).expect("serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_parses_defaults_and_rejects_bad_fields() {
        let spec = JobSpec::from_json(b"", 7, 500).unwrap();
        assert_eq!((spec.seed, spec.users, spec.scenario), (7, 500, None));
        let spec = JobSpec::from_json(
            br#"{"seed": 2, "scenario": "omnibus", "severity": 0.25}"#,
            7,
            500,
        )
        .unwrap();
        assert_eq!(spec.seed, 2);
        assert_eq!(spec.chaos().unwrap().label(), "omnibus@0.25");
        for bad in [
            &br#"{"users": 0}"#[..],
            br#"{"severity": 1.5}"#,
            br#"{"scenario": "nope"}"#,
            br#"{"typo": 1}"#,
            br#"[1, 2]"#,
            br#"{"#,
        ] {
            assert!(JobSpec::from_json(bad, 7, 500).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn params_pin_the_chaos_label_and_user_count() {
        let spec = JobSpec::from_json(br#"{"users": 900, "scenario": "omnibus"}"#, 1, 500).unwrap();
        let text: Vec<String> = spec
            .params(3, 60)
            .pairs()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        assert_eq!(
            text,
            [
                "path=streaming",
                "seed=1",
                "scale=40",
                "days=3",
                "fcc=60",
                "users=900",
                "chaos=omnibus@0.5"
            ]
        );
    }
}
