//! The manifest-keyed result cache.
//!
//! A completed job's artifacts (metrics, ledger, exhibit files) are
//! stored under `cache_dir/{key:016x}/`, where the key is the FNV-1a
//! digest of the same canonical parameter list the checkpoint manifest
//! pins — `(path, seed, scale, days, fcc, users, chaos)` plus the shard
//! count. Two requests with the same parameters therefore share a cache
//! entry, and because results are bit-identical under any thread plan,
//! a hit can be served without recomputation and still match a cold
//! batch run byte for byte.
//!
//! Durability follows the checkpoint layer's discipline: every file is
//! written via [`atomic_write`] (tmp → fsync → rename) and the entry is
//! only valid once `result.ok` — a per-file content-digest manifest —
//! exists, written last. A missing or mismatched digest on load counts
//! as a rejection, invalidates the entry, and degrades to recompute:
//! corruption can cost time, never correctness.

use bb_engine::{atomic_write, fnv1a64, CheckpointParams};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The validity marker and per-file digest manifest of a cache entry.
const RESULT_MANIFEST: &str = "result.ok";

/// The cache key for a parameter list: FNV-1a over the canonical
/// `key = value` text, one pair per line, with the shard count appended.
/// Built from [`CheckpointParams`] so the cache and the checkpoint
/// manifest can never disagree about what identifies a run.
pub fn cache_key(params: &CheckpointParams, shards: usize) -> u64 {
    let mut text = String::new();
    for (k, v) in params.pairs() {
        text.push_str(k);
        text.push_str(" = ");
        text.push_str(v);
        text.push('\n');
    }
    text.push_str(&format!("shards = {shards}\n"));
    fnv1a64(text.as_bytes())
}

/// An on-disk result cache with hit/miss/rejection counters.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The directory of one entry.
    pub fn entry_dir(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}"))
    }

    /// Store `files` as the entry for `key`. Artifacts are written
    /// atomically first; `result.ok` (the digest manifest) last, so a
    /// crash mid-store leaves an invalid — not a wrong — entry.
    pub fn store(&self, key: u64, files: &[(String, String)]) -> io::Result<()> {
        let entry = self.entry_dir(key);
        fs::create_dir_all(&entry)?;
        let mut manifest = String::new();
        for (name, content) in files {
            atomic_write(&entry.join(name), content)?;
            manifest.push_str(&format!("{:016x} {name}\n", fnv1a64(content.as_bytes())));
        }
        atomic_write(&entry.join(RESULT_MANIFEST), &manifest)
    }

    /// Look up `key`, counting the outcome: a valid entry is a hit and
    /// returns its files; a missing entry is a miss; an entry whose
    /// digests do not verify is a rejection — it is invalidated (the
    /// `result.ok` marker removed) and reported as a miss so the caller
    /// recomputes.
    pub fn lookup(&self, key: u64) -> Option<Vec<(String, String)>> {
        let entry = self.entry_dir(key);
        let manifest = match fs::read_to_string(entry.join(RESULT_MANIFEST)) {
            Ok(m) => m,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match self.verify(&entry, &manifest) {
            Ok(files) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(files)
            }
            Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(entry.join(RESULT_MANIFEST));
                None
            }
        }
    }

    /// Read and digest-verify every file the manifest lists.
    fn verify(&self, entry: &Path, manifest: &str) -> Result<Vec<(String, String)>, String> {
        let mut files = Vec::new();
        for line in manifest.lines() {
            let (digest, name) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed manifest line {line:?}"))?;
            let expected = u64::from_str_radix(digest, 16)
                .map_err(|_| format!("malformed digest {digest:?}"))?;
            let content = fs::read_to_string(entry.join(name))
                .map_err(|e| format!("unreadable artifact {name}: {e}"))?;
            if fnv1a64(content.as_bytes()) != expected {
                return Err(format!("digest mismatch for {name}"));
            }
            files.push((name.to_string(), content));
        }
        Ok(files)
    }

    /// Valid lookups served without recomputation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no servable entry (including rejections).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries invalidated because an artifact failed verification.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> CheckpointParams {
        CheckpointParams::new()
            .set("path", "streaming")
            .set("seed", seed)
            .set("users", 1000u64)
    }

    #[test]
    fn key_depends_on_every_parameter_and_the_shard_count() {
        let base = cache_key(&params(1), 4);
        assert_eq!(base, cache_key(&params(1), 4));
        assert_ne!(base, cache_key(&params(2), 4));
        assert_ne!(base, cache_key(&params(1), 8));
    }

    #[test]
    fn store_then_lookup_round_trips_and_counts_a_hit() {
        let dir = std::env::temp_dir().join(format!("bb-serve-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let key = cache_key(&params(1), 4);
        assert!(cache.lookup(key).is_none());
        assert_eq!(cache.misses(), 1);
        let files = vec![
            ("metrics.json".to_string(), "{\"a\": 1}".to_string()),
            ("fig1a.txt".to_string(), "figure\n".to_string()),
        ];
        cache.store(key, &files).unwrap();
        assert_eq!(cache.lookup(key).as_deref(), Some(&files[..]));
        assert_eq!((cache.hits(), cache.rejected()), (1, 0));
        // Corrupt one artifact: the entry is rejected, invalidated, and
        // stays invalid on the next probe (no marker file any more).
        fs::write(cache.entry_dir(key).join("fig1a.txt"), "tampered").unwrap();
        assert!(cache.lookup(key).is_none());
        assert_eq!((cache.hits(), cache.rejected()), (1, 1));
        assert!(cache.lookup(key).is_none());
        assert_eq!(cache.rejected(), 1, "no marker left to reject");
        let _ = fs::remove_dir_all(&dir);
    }
}
