//! Server-sent-event feeds: one replayable frame log per job.
//!
//! A [`Feed`] accumulates formatted SSE frames under a mutex and wakes
//! blocked readers through a condvar. Readers always replay from frame
//! zero — a subscriber that connects after the job finished still sees
//! the full progress history, which is what makes the CI smoke test
//! (`curl` after `POST`) race-free. The feed is closed exactly once,
//! after the terminal `done`/`error` frame; readers drain and return,
//! which closes the HTTP connection (`Connection: close`).

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a blocked reader sleeps between shutdown-flag checks. Also
/// the granularity of keepalive emission: an idle stream's keepalive
/// frame arrives within one slice of the configured interval.
const WAIT_SLICE: Duration = Duration::from_millis(100);

/// A replayable SSE frame log.
#[derive(Debug, Default)]
pub struct Feed {
    state: Mutex<FeedState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct FeedState {
    frames: Vec<String>,
    closed: bool,
}

impl Feed {
    /// An empty, open feed.
    pub fn new() -> Self {
        Feed::default()
    }

    /// Append one `event:`/`data:` frame and wake readers. No-op after
    /// [`finish`](Feed::finish).
    pub fn push(&self, event: &str, data: &str) {
        let mut state = self.state.lock().expect("feed lock");
        if state.closed {
            return;
        }
        state
            .frames
            .push(format!("event: {event}\ndata: {data}\n\n"));
        self.cond.notify_all();
    }

    /// Append a terminal frame and close the feed.
    pub fn finish(&self, event: &str, data: &str) {
        let mut state = self.state.lock().expect("feed lock");
        if !state.closed {
            state
                .frames
                .push(format!("event: {event}\ndata: {data}\n\n"));
            state.closed = true;
        }
        self.cond.notify_all();
    }

    /// Whether the terminal frame has been written.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("feed lock").closed
    }

    /// All frames so far, concatenated (for tests and late polls).
    pub fn frames(&self) -> String {
        self.state.lock().expect("feed lock").frames.concat()
    }

    /// Stream the feed to `out`: full replay from the first frame, then
    /// live frames as they arrive, returning once the feed is closed
    /// and drained (or `shutdown` is set, or the peer goes away — an
    /// `Err` return means the subscriber dropped mid-stream).
    ///
    /// Whenever nothing has been written for `keepalive`, a
    /// `: keepalive` SSE comment frame is emitted. Clients ignore
    /// comments, but the write keeps intermediaries from timing the
    /// stream out and — because writing to a dead peer fails — turns a
    /// silently vanished subscriber into an `Err` within roughly one
    /// keepalive interval instead of holding the connection forever.
    pub fn stream_to(
        &self,
        out: &mut impl Write,
        shutdown: &AtomicBool,
        keepalive: Duration,
    ) -> io::Result<()> {
        let mut next = 0usize;
        let mut last_write = Instant::now();
        loop {
            let (chunk, closed) = {
                let mut state = self.state.lock().expect("feed lock");
                while state.frames.len() == next
                    && !state.closed
                    && !shutdown.load(Ordering::Relaxed)
                    && last_write.elapsed() < keepalive
                {
                    let (next_state, _) = self
                        .cond
                        .wait_timeout(state, WAIT_SLICE)
                        .expect("feed lock");
                    state = next_state;
                }
                (state.frames[next..].concat(), state.closed)
            };
            if !chunk.is_empty() {
                next += chunk.matches("\n\n").count();
                out.write_all(chunk.as_bytes())?;
                out.flush()?;
                last_write = Instant::now();
            } else if !closed
                && !shutdown.load(Ordering::Relaxed)
                && last_write.elapsed() >= keepalive
            {
                out.write_all(b": keepalive\n\n")?;
                out.flush()?;
                last_write = Instant::now();
            }
            if closed || shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn replays_everything_and_returns_on_close() {
        let feed = Arc::new(Feed::new());
        feed.push("status", "{\"state\": \"running\"}");
        feed.push("shard", "{\"shard\": 0}");
        let writer = {
            let feed = Arc::clone(&feed);
            std::thread::spawn(move || {
                feed.push("shard", "{\"shard\": 1}");
                feed.finish("done", "{\"job\": 1}");
            })
        };
        let mut out = Vec::new();
        let shutdown = AtomicBool::new(false);
        feed.stream_to(&mut out, &shutdown, Duration::from_secs(3600))
            .unwrap();
        writer.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        // Full replay: the frames pushed before the reader attached are
        // present, in order, and the stream ended at the terminal frame.
        let events: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("event: "))
            .collect();
        assert_eq!(events, ["status", "shard", "shard", "done"]);
        assert!(feed.is_closed());
        // Frames after close are dropped.
        feed.push("shard", "{\"shard\": 9}");
        assert_eq!(feed.frames(), text);
    }

    #[test]
    fn shutdown_unblocks_a_waiting_reader() {
        let feed = Arc::new(Feed::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader = {
            let (feed, shutdown) = (Arc::clone(&feed), Arc::clone(&shutdown));
            std::thread::spawn(move || {
                let mut out = Vec::new();
                feed.stream_to(&mut out, &shutdown, Duration::from_secs(3600))
                    .unwrap();
                out
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        shutdown.store(true, Ordering::Relaxed);
        let out = reader.join().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn idle_streams_emit_keepalive_comment_frames() {
        let feed = Arc::new(Feed::new());
        feed.push("status", "{\"state\": \"running\"}");
        let closer = {
            let feed = Arc::clone(&feed);
            std::thread::spawn(move || {
                // Long enough for at least one WAIT_SLICE-granular
                // keepalive at a 1ms interval, generous for slow CI.
                std::thread::sleep(Duration::from_millis(400));
                feed.finish("done", "{}");
            })
        };
        let mut out = Vec::new();
        let shutdown = AtomicBool::new(false);
        feed.stream_to(&mut out, &shutdown, Duration::from_millis(1))
            .unwrap();
        closer.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(": keepalive\n\n"), "{text}");
        assert!(text.contains("event: status"), "{text}");
        assert!(text.trim_end().ends_with("data: {}"), "{text}");
    }
}
