//! The HTTP routes, wired to the scheduler.
//!
//! ```text
//! POST /jobs                  submit {seed, users, scenario, severity}
//! GET  /jobs                  list all jobs
//! GET  /jobs/{id}             one job's state
//! GET  /jobs/{id}/events      SSE progress stream (full replay)
//! GET  /metrics               latest job's metrics.json   (?job=N)
//! GET  /ledger                latest job's ledger.jsonl   (?job=N, ?exhibit=ID)
//! GET  /exhibits              exhibit id list
//! GET  /exhibits/{id}         one exhibit (?format=md|json|txt|csv|gp)
//! GET  /countries/{cc}        per-country drill-down      (?job=N)
//! GET  /survival              chaos survival matrix       (?scenario=NAME, ?format=json|md)
//! GET  /healthz               liveness + scheduler/cache counters
//! GET  /version               service and format versions
//! ```
//!
//! Concurrency model: the listener thread accepts; a fixed pool handles
//! connections; exactly one scheduler worker computes jobs, so requests
//! never contend with each other for the simulation engine, and reads
//! (`/metrics`, `/exhibits/...`) serve the in-memory artifacts of
//! completed jobs even while the worker is busy resuming another job.
//! All result-bearing responses are the exact artifact bytes the batch
//! CLI writes for the same parameters.

use crate::http::{read_request, write_sse_head, Request, RequestError, Response, ThreadPool};
use crate::runner::{JobSpec, RunParams};
use crate::scheduler::Scheduler;
use bb_dataset::WorldConfig;
use bb_engine::ShardPlan;
use bb_netsim::chaos::ChaosScenario;
use bb_report::{json as report_json, markdown};
use bb_study::robustness::{chaos_sweep, SurvivalMatrix};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// The reduced severity grid behind `GET /survival`: the mandatory
/// fault-free baseline plus two probe points. The full grid belongs to
/// the batch `--chaos-sweep` campaign; the endpoint is a drill-down.
const SURVIVAL_GRID: &[f64] = &[0.0, 0.5, 1.0];

/// Connection-handling pool size. Jobs run on the scheduler's worker,
/// so these threads only parse, route and serve bytes.
const HTTP_THREADS: usize = 8;

/// Everything a server instance needs to know.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Result cache + checkpoint root.
    pub cache_dir: PathBuf,
    /// Observation window for every job, days.
    pub days: u32,
    /// FCC cohort size for every job.
    pub fcc_users: usize,
    /// Shard/thread plan. Never affects result bytes.
    pub plan: ShardPlan,
    /// Seed used when a job spec omits one.
    pub default_seed: u64,
    /// User count used when a job spec omits one.
    pub default_users: u64,
}

struct Inner {
    scheduler: Scheduler,
    config: ServerConfig,
    /// Lazily computed survival matrices, one per scenario.
    survival: Mutex<BTreeMap<&'static str, Arc<SurvivalMatrix>>>,
    shutdown: AtomicBool,
}

/// A running gateway: listener thread + connection pool + scheduler.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `127.0.0.1:{port}` and start serving.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let run = RunParams {
            days: config.days,
            fcc_users: config.fcc_users,
            plan: config.plan,
        };
        let inner = Arc::new(Inner {
            scheduler: Scheduler::start(&config.cache_dir, run),
            config,
            survival: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || {
                let pool = ThreadPool::new(HTTP_THREADS);
                for stream in listener.incoming() {
                    if inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let inner = Arc::clone(&inner);
                    pool.execute(move || handle_connection(&inner, stream));
                }
                // Dropping the pool drains in-flight connections.
            })
        };
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler, for in-process inspection in tests.
    pub fn scheduler(&self) -> &Scheduler {
        &self.inner.scheduler
    }

    /// Stop accepting, unblock SSE readers, join the listener.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner
            .scheduler
            .shutdown_flag()
            .store(true, Ordering::Relaxed);
        // Nudge the blocking accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        // Parse-level rejections still get a proper HTTP answer; only a
        // dead transport (which includes the shutdown nudge connection)
        // is silently dropped.
        Err(RequestError::Malformed(message)) => {
            let _ = Response::bad_request(&message).write_to(&mut stream);
            return;
        }
        Err(RequestError::TooLarge) => {
            let _ = Response::payload_too_large().write_to(&mut stream);
            return;
        }
        Err(RequestError::Io(_)) => return,
    };
    // SSE is the one route that streams instead of building a Response.
    let segments: Vec<String> = request.segments().iter().map(|s| s.to_string()).collect();
    if request.method == "GET"
        && segments.len() == 3
        && segments[0] == "jobs"
        && segments[2] == "events"
    {
        serve_events(inner, &segments[1], &mut stream);
        return;
    }
    let response = route(inner, &request);
    let _ = response.write_to(&mut stream);
}

/// `GET /jobs/{id}/events`: replay + follow the job's SSE feed.
fn serve_events(inner: &Inner, id: &str, stream: &mut TcpStream) {
    let feed = id
        .parse::<u64>()
        .ok()
        .and_then(|id| inner.scheduler.feed(id));
    match feed {
        Some(feed) => {
            if write_sse_head(stream).is_ok() {
                let _ = feed.stream_to(stream, inner.scheduler.shutdown_flag());
            }
        }
        None => {
            let _ = Response::not_found("no such job").write_to(stream);
        }
    }
}

fn route(inner: &Inner, request: &Request) -> Response {
    let segments = request.segments();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", []) => index(),
        ("GET", ["healthz"]) => healthz(inner),
        ("GET", ["version"]) => version(),
        ("POST", ["jobs"]) => submit_job(inner, request),
        ("GET", ["jobs"]) => {
            let jobs: Vec<serde_json::Value> =
                inner.scheduler.jobs().iter().map(|j| j.to_json()).collect();
            Response::json(serde_json::json!({ "jobs": jobs }).to_string())
        }
        ("GET", ["jobs", id]) => match id
            .parse::<u64>()
            .ok()
            .and_then(|id| inner.scheduler.job(id))
        {
            Some(view) => Response::json(view.to_json().to_string()),
            None => Response::not_found("no such job"),
        },
        ("GET", ["metrics"]) => artifact(inner, request, "metrics.json", "application/json"),
        ("GET", ["ledger"]) => ledger(inner, request),
        ("GET", ["exhibits"]) => exhibit_list(inner, request),
        ("GET", ["exhibits", id]) => exhibit(inner, request, id),
        ("GET", ["countries", cc]) => country(inner, request, cc),
        ("GET", ["survival"]) => survival(inner, request),
        ("POST", _) | ("GET", _) => Response::not_found("no such route"),
        _ => Response::method_not_allowed(),
    }
}

fn index() -> Response {
    Response::text(
        "bb-serve: POST /jobs; GET /jobs /jobs/{id} /jobs/{id}/events /metrics /ledger \
         /exhibits /exhibits/{id} /countries/{cc} /survival /healthz /version\n",
    )
}

fn healthz(inner: &Inner) -> Response {
    Response::json(
        serde_json::json!({
            "status": "ok",
            "jobs": inner.scheduler.job_count(),
            "cache": serde_json::json!({
                "hits": inner.scheduler.cache_hits(),
                "misses": inner.scheduler.cache_misses(),
                "rejected": inner.scheduler.cache_rejected(),
            }),
        })
        .to_string(),
    )
}

fn version() -> Response {
    Response::json(
        serde_json::json!({
            "service": "bb-serve",
            "version": env!("CARGO_PKG_VERSION"),
            "checkpoint_format": bb_engine::FORMAT_VERSION,
        })
        .to_string(),
    )
}

fn submit_job(inner: &Inner, request: &Request) -> Response {
    let spec = match JobSpec::from_json(
        &request.body,
        inner.config.default_seed,
        inner.config.default_users,
    ) {
        Ok(spec) => spec,
        Err(message) => return Response::bad_request(&message),
    };
    let id = inner.scheduler.submit(spec);
    let view = inner.scheduler.job(id).expect("just submitted");
    Response::accepted(view.to_json().to_string())
}

/// The artifact set a read-only route should serve: `?job=N`, else the
/// most recently completed job.
fn job_files(inner: &Inner, request: &Request) -> Result<Arc<Vec<(String, String)>>, Response> {
    if let Some(raw) = request.query("job") {
        let id: u64 = raw
            .parse()
            .map_err(|_| Response::bad_request("job must be an integer"))?;
        return inner
            .scheduler
            .files(id)
            .ok_or_else(|| Response::not_found("job has no artifacts (not done, or no such job)"));
    }
    inner
        .scheduler
        .latest_files()
        .ok_or_else(|| Response::not_found("no completed job yet; POST /jobs first"))
}

fn artifact(inner: &Inner, request: &Request, name: &str, content_type: &'static str) -> Response {
    match job_files(inner, request) {
        Ok(files) => match files.iter().find(|(n, _)| n == name) {
            Some((_, content)) => Response::ok(content_type, content.as_bytes().to_vec()),
            None => Response::not_found("artifact not found"),
        },
        Err(response) => response,
    }
}

/// `GET /ledger`: the provenance JSONL, optionally filtered to the
/// `exhibit` events of one exhibit id.
fn ledger(inner: &Inner, request: &Request) -> Response {
    let files = match job_files(inner, request) {
        Ok(files) => files,
        Err(response) => return response,
    };
    let Some((_, jsonl)) = files.iter().find(|(n, _)| n == "ledger.jsonl") else {
        return Response::not_found("artifact not found");
    };
    match request.query("exhibit") {
        None => Response::ok("application/jsonl", jsonl.as_bytes().to_vec()),
        Some(id) => {
            let needle = format!("\"id\": \"{id}\"");
            let filtered: String = jsonl
                .lines()
                .filter(|line| line.contains("\"event\": \"exhibit\"") && line.contains(&needle))
                .flat_map(|line| [line, "\n"])
                .collect();
            Response::ok("application/jsonl", filtered.into_bytes())
        }
    }
}

fn exhibit_list(inner: &Inner, request: &Request) -> Response {
    let files = match job_files(inner, request) {
        Ok(files) => files,
        Err(response) => return response,
    };
    let ids: Vec<&str> = files
        .iter()
        .filter_map(|(n, _)| n.strip_suffix(".md"))
        .collect();
    Response::json(serde_json::json!({ "exhibits": ids }).to_string())
}

/// `GET /exhibits/{id}`: Markdown by default, or any stored render via
/// `?format=json|txt|csv|gp|md`.
fn exhibit(inner: &Inner, request: &Request, id: &str) -> Response {
    let format = request.query("format").unwrap_or("md");
    let content_type = match format {
        "md" => "text/markdown; charset=utf-8",
        "json" => "application/json",
        "txt" | "csv" | "gp" => "text/plain; charset=utf-8",
        other => return Response::bad_request(&format!("unknown format {other:?}")),
    };
    if !id
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Response::bad_request("invalid exhibit id");
    }
    artifact(inner, request, &format!("{id}.{format}"), content_type)
}

/// `GET /countries/{cc}`: one country's drill-down out of the
/// `countries.json` artifact.
fn country(inner: &Inner, request: &Request, cc: &str) -> Response {
    let files = match job_files(inner, request) {
        Ok(files) => files,
        Err(response) => return response,
    };
    let Some((_, doc)) = files.iter().find(|(n, _)| n == "countries.json") else {
        return Response::not_found("artifact not found");
    };
    let parsed: serde_json::Value = match serde_json::from_str(doc) {
        Ok(parsed) => parsed,
        Err(_) => return Response::not_found("artifact not found"),
    };
    let code = cc.to_ascii_uppercase();
    match parsed.get(&code) {
        Some(entry) => {
            Response::json(serde_json::json!({ "country": code, "sketches": entry }).to_string())
        }
        None => Response::not_found("no observations for that country"),
    }
}

/// `GET /survival`: the chaos survival matrix of one scenario over a
/// reduced world, computed once per scenario and cached in memory.
fn survival(inner: &Inner, request: &Request) -> Response {
    let name = request.query("scenario").unwrap_or("omnibus");
    let Some(scenario) = ChaosScenario::parse(name) else {
        let known: Vec<&str> = ChaosScenario::ALL.iter().map(|s| s.name()).collect();
        return Response::bad_request(&format!(
            "unknown scenario {name:?}; one of {}",
            known.join(", ")
        ));
    };
    let matrix = {
        let mut cache = inner.survival.lock().expect("survival cache");
        Arc::clone(cache.entry(scenario.name()).or_insert_with(|| {
            let mut base = WorldConfig::small(inner.config.default_seed);
            base.user_scale = 2.0;
            base.days = 2;
            base.fcc_users = 60;
            Arc::new(chaos_sweep(
                &base,
                scenario,
                SURVIVAL_GRID,
                inner.config.plan,
            ))
        }))
    };
    match request.query("format").unwrap_or("json") {
        "json" => Response::json(
            serde_json::to_string_pretty(&report_json::survival_to_json(&matrix))
                .expect("serialise"),
        ),
        "md" => Response::markdown(markdown::survival_matrix(&matrix)),
        other => Response::bad_request(&format!("unknown format {other:?}")),
    }
}
