//! The HTTP routes, wired to the scheduler.
//!
//! ```text
//! POST /jobs                  submit {seed, users, scenario, severity}
//! GET  /jobs                  list all jobs
//! GET  /jobs/{id}             one job's state
//! GET  /jobs/{id}/events      SSE progress stream (full replay)
//! GET  /metrics               latest job's metrics.json   (?job=N)
//! GET  /metrics.prom          live telemetry, Prometheus text format
//! GET  /debug/telemetry       live telemetry, full JSON snapshot
//! GET  /ledger                latest job's ledger.jsonl   (?job=N, ?exhibit=ID)
//! GET  /exhibits              exhibit id list
//! GET  /exhibits/{id}         one exhibit (?format=md|json|txt|csv|gp)
//! GET  /countries/{cc}        per-country drill-down      (?job=N)
//! GET  /survival              chaos survival matrix       (?scenario=NAME, ?format=json|md)
//! GET  /healthz               liveness + uptime + scheduler/cache counters
//! GET  /version               service and format versions
//! ```
//!
//! Every `GET` route also answers `HEAD` with identical headers
//! (including the `Content-Length` the body would have) and no body.
//!
//! Concurrency model: the listener thread accepts; a fixed pool handles
//! connections; exactly one scheduler worker computes jobs, so requests
//! never contend with each other for the simulation engine, and reads
//! (`/metrics`, `/exhibits/...`) serve the in-memory artifacts of
//! completed jobs even while the worker is busy resuming another job.
//! All result-bearing responses are the exact artifact bytes the batch
//! CLI writes for the same parameters.
//!
//! Every request is instrumented end-to-end: a monotonic request id, the
//! in-flight gauge, per-route RED metrics, and (with `--access-log`) one
//! JSONL access-log line. A panicking handler is caught here, answered
//! with a 500, and counted in `serve.panics` — it never takes a pool
//! worker down. Telemetry labels always use the route *template*
//! (`/jobs/{id}`), keeping metric cardinality bounded.

use crate::http::{read_request, write_sse_head, Request, RequestError, Response, ThreadPool};
use crate::runner::{JobSpec, RunParams};
use crate::scheduler::Scheduler;
use crate::sse::Feed;
use crate::telemetry::ServeTelemetry;
use bb_dataset::WorldConfig;
use bb_engine::ShardPlan;
use bb_netsim::chaos::ChaosScenario;
use bb_report::{json as report_json, markdown};
use bb_study::robustness::{chaos_sweep, SurvivalMatrix};
use bb_trace::telemetry::SystemClock;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// The reduced severity grid behind `GET /survival`: the mandatory
/// fault-free baseline plus two probe points. The full grid belongs to
/// the batch `--chaos-sweep` campaign; the endpoint is a drill-down.
const SURVIVAL_GRID: &[f64] = &[0.0, 0.5, 1.0];

/// Connection-handling pool size. Jobs run on the scheduler's worker,
/// so these threads only parse, route and serve bytes.
const HTTP_THREADS: usize = 8;

/// Everything a server instance needs to know.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Result cache + checkpoint root.
    pub cache_dir: PathBuf,
    /// Observation window for every job, days.
    pub days: u32,
    /// FCC cohort size for every job.
    pub fcc_users: usize,
    /// Shard/thread plan. Never affects result bytes.
    pub plan: ShardPlan,
    /// Seed used when a job spec omits one.
    pub default_seed: u64,
    /// User count used when a job spec omits one.
    pub default_users: u64,
    /// Append one JSONL line per request to this file.
    pub access_log: Option<PathBuf>,
    /// Idle interval after which SSE streams emit a `: keepalive`
    /// comment frame (and thereby notice dead peers).
    pub sse_keepalive: Duration,
    /// Enable the test-only `/debug/panic` and `/debug/hold` routes.
    /// Never set outside tests.
    pub debug_routes: bool,
}

struct Inner {
    scheduler: Scheduler,
    config: ServerConfig,
    telemetry: Arc<ServeTelemetry>,
    /// A feed that never closes, behind `/debug/hold`: a deterministic
    /// way for tests to hold an SSE stream open until the subscriber
    /// drops (exercising keepalives and `serve.sse.dropped`).
    hold: Feed,
    /// Lazily computed survival matrices, one per scenario.
    survival: Mutex<BTreeMap<&'static str, Arc<SurvivalMatrix>>>,
    shutdown: AtomicBool,
}

/// A running gateway: listener thread + connection pool + scheduler.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `127.0.0.1:{port}` and start serving.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let run = RunParams {
            days: config.days,
            fcc_users: config.fcc_users,
            plan: config.plan,
        };
        let telemetry = Arc::new(ServeTelemetry::new(
            Arc::new(SystemClock::new()),
            config.access_log.as_deref(),
        )?);
        let inner = Arc::new(Inner {
            scheduler: Scheduler::start(&config.cache_dir, run, Arc::clone(&telemetry)),
            config,
            telemetry,
            hold: Feed::new(),
            survival: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || {
                // The worker-level catch is a backstop: handlers answer
                // their own panics with a 500 (and count them), so only
                // a panic outside the handler path reaches the pool.
                let pool = ThreadPool::instrumented(
                    HTTP_THREADS,
                    Some(Arc::clone(&inner.telemetry.pool_busy)),
                    Some(Arc::clone(&inner.telemetry.panics)),
                );
                for stream in listener.incoming() {
                    if inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let inner = Arc::clone(&inner);
                    pool.execute(move || handle_connection(&inner, stream));
                }
                // Dropping the pool drains in-flight connections.
            })
        };
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
        })
    }

    /// The live-telemetry surface, for in-process inspection in tests.
    pub fn telemetry(&self) -> &ServeTelemetry {
        &self.inner.telemetry
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler, for in-process inspection in tests.
    pub fn scheduler(&self) -> &Scheduler {
        &self.inner.scheduler
    }

    /// Stop accepting, unblock SSE readers, join the listener.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner
            .scheduler
            .shutdown_flag()
            .store(true, Ordering::Relaxed);
        // Nudge the blocking accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let telemetry = &inner.telemetry;
    let req_id = telemetry.next_request_id();
    let start = telemetry.now_micros();
    telemetry.in_flight.add(1);
    serve_one(inner, &mut stream, req_id, start);
    telemetry.in_flight.add(-1);
}

/// Record one finished exchange: RED metrics + the access-log line.
#[allow(clippy::too_many_arguments)]
fn finish_request(
    inner: &Inner,
    req_id: u64,
    start: u64,
    method: &str,
    template: &str,
    path: &str,
    status: u16,
    bytes: u64,
) {
    let telemetry = &inner.telemetry;
    let micros = telemetry.now_micros().saturating_sub(start);
    telemetry.observe_request(method, template, status, micros);
    telemetry.log_access(req_id, method, template, path, status, bytes, micros);
}

fn serve_one(inner: &Inner, stream: &mut TcpStream, req_id: u64, start: u64) {
    let request = match read_request(stream) {
        Ok(request) => request,
        // Parse-level rejections still get a proper HTTP answer; only a
        // dead transport (which includes the shutdown nudge connection)
        // is silently dropped.
        Err(RequestError::Malformed(message)) => {
            let response = Response::bad_request(&message);
            let _ = response.write_to(stream);
            finish_request(
                inner,
                req_id,
                start,
                "-",
                "(malformed)",
                "-",
                response.status(),
                response.body_len() as u64,
            );
            return;
        }
        Err(RequestError::TooLarge) => {
            let response = Response::payload_too_large();
            let _ = response.write_to(stream);
            finish_request(
                inner,
                req_id,
                start,
                "-",
                "(too-large)",
                "-",
                response.status(),
                response.body_len() as u64,
            );
            return;
        }
        Err(RequestError::Io(_)) => return,
    };
    // HEAD is GET with the body suppressed: route identically, answer
    // with identical headers (incl. Content-Length), write no body.
    let head_only = request.method == "HEAD";
    let method = if head_only {
        "GET"
    } else {
        request.method.as_str()
    };
    let segments: Vec<String> = request.segments().iter().map(|s| s.to_string()).collect();

    // The streaming routes write their own response head and bypass the
    // Response path entirely.
    if method == "GET" && segments.len() == 3 && segments[0] == "jobs" && segments[2] == "events" {
        let template = "/jobs/{id}/events";
        let feed = segments[1]
            .parse::<u64>()
            .ok()
            .and_then(|id| inner.scheduler.feed(id));
        let status = match feed {
            Some(feed) => {
                if head_only {
                    let _ = write_sse_head(stream);
                } else {
                    stream_feed(inner, &feed, stream);
                }
                200
            }
            None => {
                let response = Response::not_found("no such job");
                let _ = if head_only {
                    response.write_head_to(stream)
                } else {
                    response.write_to(stream)
                };
                404
            }
        };
        finish_request(
            inner,
            req_id,
            start,
            &request.method,
            template,
            &request.path,
            status,
            0,
        );
        return;
    }
    if method == "GET"
        && inner.config.debug_routes
        && segments.len() == 2
        && segments[0] == "debug"
        && segments[1] == "hold"
    {
        if head_only {
            let _ = write_sse_head(stream);
        } else {
            stream_feed(inner, &inner.hold, stream);
        }
        finish_request(
            inner,
            req_id,
            start,
            &request.method,
            "/debug/hold",
            &request.path,
            200,
            0,
        );
        return;
    }

    // A panicking handler answers 500 and keeps the worker; the poisoned
    // state a panic could leave behind is confined to the survival cache
    // mutex (whose lock already propagates the poison explicitly).
    let (response, template) =
        match catch_unwind(AssertUnwindSafe(|| route(inner, method, &request))) {
            Ok(routed) => routed,
            Err(_) => {
                inner.telemetry.panics.inc();
                (Response::internal_error("handler panicked"), "(panic)")
            }
        };
    let written = if head_only {
        response.write_head_to(stream).map(|_| 0u64)
    } else {
        response
            .write_to(stream)
            .map(|_| response.body_len() as u64)
    };
    finish_request(
        inner,
        req_id,
        start,
        &request.method,
        template,
        &request.path,
        response.status(),
        written.unwrap_or(0),
    );
}

/// Stream an SSE feed to a subscriber, counting a dropped peer.
fn stream_feed(inner: &Inner, feed: &Feed, stream: &mut TcpStream) {
    if write_sse_head(stream).is_err() {
        inner.telemetry.sse_dropped.inc();
        return;
    }
    if feed
        .stream_to(
            stream,
            inner.scheduler.shutdown_flag(),
            inner.config.sse_keepalive,
        )
        .is_err()
    {
        inner.telemetry.sse_dropped.inc();
    }
}

/// Dispatch one request. Returns the response together with the route
/// *template* used as the bounded-cardinality telemetry label. `method`
/// is the effective method — `HEAD` arrives here as `GET`.
fn route(inner: &Inner, method: &str, request: &Request) -> (Response, &'static str) {
    let segments = request.segments();
    match (method, segments.as_slice()) {
        ("GET", []) => (index(), "/"),
        ("GET", ["healthz"]) => (healthz(inner), "/healthz"),
        ("GET", ["version"]) => (version(), "/version"),
        ("POST", ["jobs"]) => (submit_job(inner, request), "/jobs"),
        ("GET", ["jobs"]) => {
            let jobs: Vec<serde_json::Value> =
                inner.scheduler.jobs().iter().map(|j| j.to_json()).collect();
            (
                Response::json(serde_json::json!({ "jobs": jobs }).to_string()),
                "/jobs",
            )
        }
        ("GET", ["jobs", id]) => (
            match id
                .parse::<u64>()
                .ok()
                .and_then(|id| inner.scheduler.job(id))
            {
                Some(view) => Response::json(view.to_json().to_string()),
                None => Response::not_found("no such job"),
            },
            "/jobs/{id}",
        ),
        ("GET", ["metrics"]) => (
            artifact(inner, request, "metrics.json", "application/json"),
            "/metrics",
        ),
        ("GET", ["metrics.prom"]) => (metrics_prom(inner), "/metrics.prom"),
        ("GET", ["debug", "telemetry"]) => (debug_telemetry(inner), "/debug/telemetry"),
        ("GET", ["debug", "panic"]) if inner.config.debug_routes => {
            panic!("deliberate panic from the /debug/panic test route")
        }
        ("GET", ["ledger"]) => (ledger(inner, request), "/ledger"),
        ("GET", ["exhibits"]) => (exhibit_list(inner, request), "/exhibits"),
        ("GET", ["exhibits", id]) => (exhibit(inner, request, id), "/exhibits/{id}"),
        ("GET", ["countries", cc]) => (country(inner, request, cc), "/countries/{cc}"),
        ("GET", ["survival"]) => (survival(inner, request), "/survival"),
        ("POST", _) | ("GET", _) => (Response::not_found("no such route"), "(unmatched)"),
        _ => (Response::method_not_allowed(), "(method)"),
    }
}

fn index() -> Response {
    Response::text(
        "bb-serve: POST /jobs; GET /jobs /jobs/{id} /jobs/{id}/events /metrics /metrics.prom \
         /debug/telemetry /ledger /exhibits /exhibits/{id} /countries/{cc} /survival /healthz \
         /version\n",
    )
}

fn healthz(inner: &Inner) -> Response {
    let telemetry = &inner.telemetry;
    Response::json(
        serde_json::json!({
            "status": "ok",
            "jobs": inner.scheduler.job_count(),
            "uptime_secs": telemetry.registry().uptime_secs(),
            "in_flight": telemetry.in_flight.get(),
            "queue_depth": telemetry.queue_depth.get(),
            "cache": serde_json::json!({
                "hits": inner.scheduler.cache_hits(),
                "misses": inner.scheduler.cache_misses(),
                "rejected": inner.scheduler.cache_rejected(),
            }),
        })
        .to_string(),
    )
}

/// `GET /metrics.prom`: the live registry in Prometheus text format.
/// Deliberately a different path from `/metrics`, which serves the
/// byte-identical batch artifact — the two must never mix.
fn metrics_prom(inner: &Inner) -> Response {
    Response::ok(
        "text/plain; version=0.0.4; charset=utf-8",
        inner.telemetry.registry().to_prometheus(),
    )
}

/// `GET /debug/telemetry`: everything, including ring-buffer windows.
fn debug_telemetry(inner: &Inner) -> Response {
    Response::json(inner.telemetry.registry().to_json())
}

fn version() -> Response {
    Response::json(
        serde_json::json!({
            "service": "bb-serve",
            "version": env!("CARGO_PKG_VERSION"),
            "checkpoint_format": bb_engine::FORMAT_VERSION,
        })
        .to_string(),
    )
}

fn submit_job(inner: &Inner, request: &Request) -> Response {
    let spec = match JobSpec::from_json(
        &request.body,
        inner.config.default_seed,
        inner.config.default_users,
    ) {
        Ok(spec) => spec,
        Err(message) => return Response::bad_request(&message),
    };
    let id = inner.scheduler.submit(spec);
    let view = inner.scheduler.job(id).expect("just submitted");
    Response::accepted(view.to_json().to_string())
}

/// The artifact set a read-only route should serve: `?job=N`, else the
/// most recently completed job.
fn job_files(inner: &Inner, request: &Request) -> Result<Arc<Vec<(String, String)>>, Response> {
    if let Some(raw) = request.query("job") {
        let id: u64 = raw
            .parse()
            .map_err(|_| Response::bad_request("job must be an integer"))?;
        return inner
            .scheduler
            .files(id)
            .ok_or_else(|| Response::not_found("job has no artifacts (not done, or no such job)"));
    }
    inner
        .scheduler
        .latest_files()
        .ok_or_else(|| Response::not_found("no completed job yet; POST /jobs first"))
}

fn artifact(inner: &Inner, request: &Request, name: &str, content_type: &'static str) -> Response {
    match job_files(inner, request) {
        Ok(files) => match files.iter().find(|(n, _)| n == name) {
            Some((_, content)) => Response::ok(content_type, content.as_bytes().to_vec()),
            None => Response::not_found("artifact not found"),
        },
        Err(response) => response,
    }
}

/// `GET /ledger`: the provenance JSONL, optionally filtered to the
/// `exhibit` events of one exhibit id.
fn ledger(inner: &Inner, request: &Request) -> Response {
    let files = match job_files(inner, request) {
        Ok(files) => files,
        Err(response) => return response,
    };
    let Some((_, jsonl)) = files.iter().find(|(n, _)| n == "ledger.jsonl") else {
        return Response::not_found("artifact not found");
    };
    match request.query("exhibit") {
        None => Response::ok("application/jsonl", jsonl.as_bytes().to_vec()),
        Some(id) => {
            let needle = format!("\"id\": \"{id}\"");
            let filtered: String = jsonl
                .lines()
                .filter(|line| line.contains("\"event\": \"exhibit\"") && line.contains(&needle))
                .flat_map(|line| [line, "\n"])
                .collect();
            Response::ok("application/jsonl", filtered.into_bytes())
        }
    }
}

fn exhibit_list(inner: &Inner, request: &Request) -> Response {
    let files = match job_files(inner, request) {
        Ok(files) => files,
        Err(response) => return response,
    };
    let ids: Vec<&str> = files
        .iter()
        .filter_map(|(n, _)| n.strip_suffix(".md"))
        .collect();
    Response::json(serde_json::json!({ "exhibits": ids }).to_string())
}

/// `GET /exhibits/{id}`: Markdown by default, or any stored render via
/// `?format=json|txt|csv|gp|md`.
fn exhibit(inner: &Inner, request: &Request, id: &str) -> Response {
    let format = request.query("format").unwrap_or("md");
    let content_type = match format {
        "md" => "text/markdown; charset=utf-8",
        "json" => "application/json",
        "txt" | "csv" | "gp" => "text/plain; charset=utf-8",
        other => return Response::bad_request(&format!("unknown format {other:?}")),
    };
    if !id
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Response::bad_request("invalid exhibit id");
    }
    artifact(inner, request, &format!("{id}.{format}"), content_type)
}

/// `GET /countries/{cc}`: one country's drill-down out of the
/// `countries.json` artifact.
fn country(inner: &Inner, request: &Request, cc: &str) -> Response {
    let files = match job_files(inner, request) {
        Ok(files) => files,
        Err(response) => return response,
    };
    let Some((_, doc)) = files.iter().find(|(n, _)| n == "countries.json") else {
        return Response::not_found("artifact not found");
    };
    let parsed: serde_json::Value = match serde_json::from_str(doc) {
        Ok(parsed) => parsed,
        Err(_) => return Response::not_found("artifact not found"),
    };
    let code = cc.to_ascii_uppercase();
    match parsed.get(&code) {
        Some(entry) => {
            Response::json(serde_json::json!({ "country": code, "sketches": entry }).to_string())
        }
        None => Response::not_found("no observations for that country"),
    }
}

/// `GET /survival`: the chaos survival matrix of one scenario over a
/// reduced world, computed once per scenario and cached in memory.
fn survival(inner: &Inner, request: &Request) -> Response {
    let name = request.query("scenario").unwrap_or("omnibus");
    let Some(scenario) = ChaosScenario::parse(name) else {
        let known: Vec<&str> = ChaosScenario::ALL.iter().map(|s| s.name()).collect();
        return Response::bad_request(&format!(
            "unknown scenario {name:?}; one of {}",
            known.join(", ")
        ));
    };
    let matrix = {
        let mut cache = inner.survival.lock().expect("survival cache");
        Arc::clone(cache.entry(scenario.name()).or_insert_with(|| {
            let mut base = WorldConfig::small(inner.config.default_seed);
            base.user_scale = 2.0;
            base.days = 2;
            base.fcc_users = 60;
            Arc::new(chaos_sweep(
                &base,
                scenario,
                SURVIVAL_GRID,
                inner.config.plan,
            ))
        }))
    };
    match request.query("format").unwrap_or("json") {
        "json" => Response::json(
            serde_json::to_string_pretty(&report_json::survival_to_json(&matrix))
                .expect("serialise"),
        ),
        "md" => Response::markdown(markdown::survival_matrix(&matrix)),
        other => Response::bad_request(&format!("unknown format {other:?}")),
    }
}
