//! Minimal HTTP/1.1 over std: request parsing, response writing, and a
//! fixed-size thread pool. Enough protocol for the gateway's own routes
//! and `curl` — not a general server. Connections are `Connection:
//! close`; bodies require `Content-Length` and are capped *at header
//! parse time* (the declared length is validated before any buffer is
//! sized from it); query keys and values are percent-decoded, with `+`
//! as space.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Largest accepted request body; protects the scheduler from
/// accidental uploads (job specs are a few dozen bytes).
const MAX_BODY: usize = 1 << 20;

/// Why a request could not be parsed. The connection handler maps these
/// onto proper HTTP responses instead of silently dropping the socket.
#[derive(Debug)]
pub enum RequestError {
    /// Syntactically invalid request (bad request line, garbage
    /// `Content-Length`, ...) — answer 400.
    Malformed(String),
    /// Declared body length exceeds `MAX_BODY` (1 MiB) — answer 413.
    /// Raised from the header alone, before any allocation.
    TooLarge,
    /// Transport failure mid-read; there is nobody to answer.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Decode `%XX` escapes (and `+` as space) in a query component.
/// Malformed escapes are kept literally rather than rejected — query
/// values here are route parameters, not user content, and a stray `%`
/// should read back as written.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len()
                && bytes[i + 1].is_ascii_hexdigit()
                && bytes[i + 2].is_ascii_hexdigit() =>
            {
                let byte = u8::from_str_radix(&s[i + 1..i + 3], 16).expect("two hex digits");
                out.push(byte);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Validate a `Content-Length` header value without ever materialising
/// an attacker-controlled allocation: garbage (including negative
/// numbers) is a 400, anything over [`MAX_BODY`] — even values too big
/// for `usize` — is a 413.
fn parse_content_length(value: &str) -> Result<usize, RequestError> {
    let value = value.trim();
    let parsed: usize = value.parse().map_err(|e: std::num::ParseIntError| {
        if matches!(e.kind(), std::num::IntErrorKind::PosOverflow) {
            RequestError::TooLarge
        } else {
            RequestError::Malformed(format!("invalid Content-Length {value:?}"))
        }
    })?;
    if parsed > MAX_BODY {
        return Err(RequestError::TooLarge);
    }
    Ok(parsed)
}

/// A parsed request: method, decoded path segments, query map, body.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string, e.g. `/jobs/3/events`.
    pub path: String,
    /// Query parameters in order-independent form.
    pub query: BTreeMap<String, String>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The `/`-separated path segments, empty segments dropped.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// A query parameter, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }
}

/// Read and parse one request from `stream`: I/O failures surface as
/// [`RequestError::Io`], protocol problems as answerable
/// [`RequestError::Malformed`]/[`RequestError::TooLarge`] variants. The
/// declared `Content-Length` is validated while still a string — the
/// body buffer is only ever sized from a value known to be ≤ the cap.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".into()))?;
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k), percent_decode(v));
    }
    // Headers: only Content-Length matters to us.
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = parse_content_length(value)?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// A response ready to serialise: status, content type, body.
#[derive(Debug)]
pub struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    /// 200 with an explicit content type.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// 200 `application/json`.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response::ok("application/json", body)
    }

    /// 200 `text/markdown`.
    pub fn markdown(body: impl Into<Vec<u8>>) -> Self {
        Response::ok("text/markdown; charset=utf-8", body)
    }

    /// 200 `text/plain`.
    pub fn text(body: impl Into<Vec<u8>>) -> Self {
        Response::ok("text/plain; charset=utf-8", body)
    }

    /// 202 `application/json` — a job was accepted.
    pub fn accepted(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 202,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// 400 with a plain-text reason.
    pub fn bad_request(msg: &str) -> Self {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    /// 404 with a plain-text reason.
    pub fn not_found(msg: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    /// 405 for a method the route does not support.
    pub fn method_not_allowed() -> Self {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: b"method not allowed\n".to_vec(),
        }
    }

    /// 413 for a declared body length over the cap.
    pub fn payload_too_large() -> Self {
        Response {
            status: 413,
            content_type: "text/plain; charset=utf-8",
            body: format!("request body exceeds {MAX_BODY} bytes\n").into_bytes(),
        }
    }

    /// 500 with a plain-text reason (e.g. a caught handler panic).
    pub fn internal_error(msg: &str) -> Self {
        Response {
            status: 500,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    /// The HTTP status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The body length in bytes (what `Content-Length` will declare).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// The reason phrase for this status.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            _ => "Internal Server Error",
        }
    }

    /// The status line + headers, with the `Content-Length` the full
    /// response would carry.
    fn head(&self) -> String {
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )
    }

    /// Serialise onto `stream` and flush.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(self.head().as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }

    /// Serialise the head only — the `HEAD` answer to a `GET` route:
    /// identical status and headers (including the `Content-Length` the
    /// body *would* have), no body bytes.
    pub fn write_head_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        stream.write_all(self.head().as_bytes())?;
        stream.flush()
    }
}

/// Write the head of a `text/event-stream` response; the body is
/// streamed afterwards by the SSE feed.
pub fn write_sse_head(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// A fixed-size thread pool for connection handling. Jobs are closures;
/// dropping the pool closes the channel and joins the workers after
/// they drain the queue.
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Box<dyn FnOnce() + Send>>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool of `size` workers (at least 1).
    pub fn new(size: usize) -> Self {
        Self::instrumented(size, None, None)
    }

    /// A pool whose workers maintain a busy gauge and survive panicking
    /// jobs. A panic that escapes a job is caught at the worker loop (a
    /// backstop — handlers catch their own panics to answer 500, but a
    /// panic anywhere else must not shrink the pool permanently), counted
    /// into `panics`, and the worker returns to the queue.
    pub fn instrumented(
        size: usize,
        busy: Option<Arc<bb_trace::telemetry::Gauge>>,
        panics: Option<Arc<bb_trace::telemetry::Counter>>,
    ) -> Self {
        let (sender, receiver) = mpsc::channel::<Box<dyn FnOnce() + Send>>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let busy = busy.clone();
                let panics = panics.clone();
                thread::spawn(move || loop {
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    match job {
                        Ok(job) => {
                            if let Some(busy) = &busy {
                                busy.add(1);
                            }
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            if let Some(busy) = &busy {
                                busy.add(-1);
                            }
                            if outcome.is_err() {
                                if let Some(panics) = &panics {
                                    panics.inc();
                                }
                            }
                        }
                        Err(_) => return, // channel closed: pool dropped
                    }
                })
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Run `job` on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take(); // close the channel
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_request_line_query_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /jobs?format=json&x HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nbody",
            )
            .unwrap();
            s.flush().unwrap();
            // Hold the socket open until the server side has parsed.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.segments(), ["jobs"]);
        assert_eq!(req.query("format"), Some("json"));
        assert_eq!(req.query("x"), Some(""));
        assert_eq!(req.body, b"body");
        Response::json("{}").write_to(&mut conn).unwrap();
        drop(conn);
        client.join().unwrap();
    }

    #[test]
    fn query_components_are_percent_decoded() {
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("m%64"), "md");
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%25"), "100%");
        // Malformed escapes survive literally instead of erroring.
        assert_eq!(percent_decode("50%"), "50%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
        // Multi-byte UTF-8 round-trips.
        assert_eq!(percent_decode("%C3%A9"), "é");
    }

    #[test]
    fn content_length_is_validated_before_any_allocation() {
        assert_eq!(parse_content_length(" 42 ").unwrap(), 42);
        assert_eq!(parse_content_length("0").unwrap(), 0);
        assert_eq!(parse_content_length("1048576").unwrap(), MAX_BODY);
        // One over the cap, numeric but huge, and too big for usize all
        // classify as TooLarge (413), never as a buffer size.
        for huge in ["1048577", "999999999999", "99999999999999999999999999"] {
            assert!(
                matches!(parse_content_length(huge), Err(RequestError::TooLarge)),
                "{huge}"
            );
        }
        // Garbage — including negative numbers — is Malformed (400).
        for garbage in ["-1", "abc", "1e6", "0x10", "12 34", ""] {
            assert!(
                matches!(
                    parse_content_length(garbage),
                    Err(RequestError::Malformed(_))
                ),
                "{garbage:?}"
            );
        }
    }

    #[test]
    fn encoded_query_params_reach_the_request_decoded() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /exhibits/t4?form%61t=m%64&note=a+b%20c HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
            s.flush().unwrap();
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn).unwrap();
        assert_eq!(req.query("format"), Some("md"));
        assert_eq!(req.query("note"), Some("a b c"));
        Response::json("{}").write_to(&mut conn).unwrap();
        drop(conn);
        client.join().unwrap();
    }

    #[test]
    fn pool_runs_jobs_and_joins_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(3);
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins after draining
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pool_workers_survive_panicking_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let panics = Arc::new(bb_trace::telemetry::Counter::default());
        let done = Arc::new(AtomicUsize::new(0));
        // 2 workers, 4 panicking jobs: without the catch, both workers
        // would be dead after two jobs and the remaining work would hang
        // the drop-join forever.
        let pool = ThreadPool::instrumented(2, None, Some(Arc::clone(&panics)));
        for i in 0..8 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                if i % 2 == 0 {
                    panic!("injected test panic");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4, "surviving jobs all ran");
        assert_eq!(panics.get(), 4, "every panic was counted");
    }
}
