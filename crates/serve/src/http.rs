//! Minimal HTTP/1.1 over std: request parsing, response writing, and a
//! fixed-size thread pool. Enough protocol for the gateway's own routes
//! and `curl` — not a general server. Connections are `Connection:
//! close`; bodies require `Content-Length`; query strings are split on
//! `&`/`=` without percent-decoding (route values are plain
//! identifiers).

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Largest accepted request body; protects the scheduler from
/// accidental uploads (job specs are a few dozen bytes).
const MAX_BODY: usize = 1 << 20;

/// A parsed request: method, decoded path segments, query map, body.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string, e.g. `/jobs/3/events`.
    pub path: String,
    /// Query parameters in order-independent form.
    pub query: BTreeMap<String, String>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The `/`-separated path segments, empty segments dropped.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// A query parameter, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }
}

/// Read and parse one request from `stream`. Returns `Err` on I/O
/// failure or a malformed request line.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing request target"))?;
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(k.to_string(), v.to_string());
    }
    // Headers: only Content-Length matters to us.
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// A response ready to serialise: status, content type, body.
#[derive(Debug)]
pub struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    /// 200 with an explicit content type.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// 200 `application/json`.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response::ok("application/json", body)
    }

    /// 200 `text/markdown`.
    pub fn markdown(body: impl Into<Vec<u8>>) -> Self {
        Response::ok("text/markdown; charset=utf-8", body)
    }

    /// 200 `text/plain`.
    pub fn text(body: impl Into<Vec<u8>>) -> Self {
        Response::ok("text/plain; charset=utf-8", body)
    }

    /// 202 `application/json` — a job was accepted.
    pub fn accepted(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 202,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// 400 with a plain-text reason.
    pub fn bad_request(msg: &str) -> Self {
        Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    /// 404 with a plain-text reason.
    pub fn not_found(msg: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n").into_bytes(),
        }
    }

    /// 405 for a method the route does not support.
    pub fn method_not_allowed() -> Self {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: b"method not allowed\n".to_vec(),
        }
    }

    /// The reason phrase for this status.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        }
    }

    /// Serialise onto `stream` and flush.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Write the head of a `text/event-stream` response; the body is
/// streamed afterwards by the SSE feed.
pub fn write_sse_head(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// A fixed-size thread pool for connection handling. Jobs are closures;
/// dropping the pool closes the channel and joins the workers after
/// they drain the queue.
pub struct ThreadPool {
    sender: Option<mpsc::Sender<Box<dyn FnOnce() + Send>>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool of `size` workers (at least 1).
    pub fn new(size: usize) -> Self {
        let (sender, receiver) = mpsc::channel::<Box<dyn FnOnce() + Send>>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                thread::spawn(move || loop {
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => return, // channel closed: pool dropped
                    }
                })
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Run `job` on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take(); // close the channel
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_request_line_query_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /jobs?format=json&x HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nbody",
            )
            .unwrap();
            s.flush().unwrap();
            // Hold the socket open until the server side has parsed.
            let mut buf = Vec::new();
            let _ = s.read_to_end(&mut buf);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.segments(), ["jobs"]);
        assert_eq!(req.query("format"), Some("json"));
        assert_eq!(req.query("x"), Some(""));
        assert_eq!(req.body, b"body");
        Response::json("{}").write_to(&mut conn).unwrap();
        drop(conn);
        client.join().unwrap();
    }

    #[test]
    fn pool_runs_jobs_and_joins_on_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = ThreadPool::new(3);
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins after draining
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }
}
