//! The gateway's live-telemetry surface: one [`ServeTelemetry`] per
//! server, wrapping a [`bb_trace::Telemetry`] registry plus the cached
//! atomic handles every hot path records through.
//!
//! Naming taxonomy (rendered to Prometheus by replacing `.` with `_`):
//!
//! | metric | kind | labels |
//! |---|---|---|
//! | `serve.requests` | counter | `method`, `route` |
//! | `serve.errors` | counter | `class` (`4xx`/`5xx`), `route` |
//! | `serve.request_us` | log₂ histogram | `route` |
//! | `serve.request_rate` | per-second series | — |
//! | `serve.slow_requests` | counter | — |
//! | `serve.in_flight` | gauge | — |
//! | `serve.pool.busy` | gauge | — |
//! | `serve.panics` | counter | — |
//! | `serve.sse.dropped` | counter | — |
//! | `serve.queue.depth` | gauge | — |
//! | `serve.job.shards_done` | gauge | — |
//! | `serve.job.wall_us` | log₂ histogram | — |
//! | `serve.jobs.completed` / `serve.jobs.failed` | counter | — |
//! | `serve.cache.{hits,misses,rejected}` | counter + series | — |
//!
//! The `route` label is always the route *template* (`/jobs/{id}`), never
//! the concrete path, so label cardinality is bounded by the route table.
//!
//! The access log is a JSONL sidecar (`--access-log PATH`): one object
//! per request — `ts` (epoch seconds), `id` (monotonic request id),
//! `method`, `route` (template), `path`, `status`, `bytes` (body bytes
//! written), `us` (wall microseconds) — written as one `write_all` per
//! line so concurrent handler threads never interleave partial lines.
//!
//! Everything here is wall-clock- and plan-dependent. It must never be
//! consulted by anything that produces `metrics.json`, the ledger, or an
//! exhibit file; the byte-identity suites pin that.

use bb_trace::telemetry::{AtomicLog2Histogram, Clock, Counter, Gauge, Telemetry};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Requests slower than this many microseconds bump
/// `serve.slow_requests` (500 ms — a served artifact is in-memory bytes,
/// so anything slower is a scheduling or survival-sweep stall).
pub const SLOW_REQUEST_US: u64 = 500_000;

/// The gateway's telemetry: registry + cached handles + access log.
pub struct ServeTelemetry {
    telemetry: Telemetry,
    request_ids: AtomicU64,
    /// Requests currently being parsed, routed, or streamed.
    pub in_flight: Arc<Gauge>,
    /// Pool workers currently running a connection job (saturation =
    /// `busy / HTTP_THREADS`).
    pub pool_busy: Arc<Gauge>,
    /// Handler panics caught (each answered with a 500).
    pub panics: Arc<Counter>,
    /// SSE subscribers that went away before their stream ended.
    pub sse_dropped: Arc<Counter>,
    /// Requests slower than [`SLOW_REQUEST_US`].
    pub slow_requests: Arc<Counter>,
    /// Jobs queued but not yet picked up by the scheduler worker.
    pub queue_depth: Arc<Gauge>,
    /// Shards committed by the currently running job.
    pub shards_done: Arc<Gauge>,
    /// Wall time of completed jobs, µs (cache hits included — they are
    /// the fast mode this histogram exists to make visible).
    pub job_wall_us: Arc<AtomicLog2Histogram>,
    /// Jobs that reached `done`.
    pub jobs_completed: Arc<Counter>,
    /// Jobs that reached `failed`.
    pub jobs_failed: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_rejected: Arc<Counter>,
    access: Option<Mutex<File>>,
}

impl ServeTelemetry {
    /// A telemetry surface on `clock`, logging requests to `access_log`
    /// when given (the file is created or appended to).
    pub fn new(clock: Arc<dyn Clock>, access_log: Option<&Path>) -> io::Result<Self> {
        let telemetry = Telemetry::new(clock);
        let access = match access_log {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                Some(Mutex::new(
                    OpenOptions::new().create(true).append(true).open(path)?,
                ))
            }
            None => None,
        };
        Ok(ServeTelemetry {
            in_flight: telemetry.gauge("serve.in_flight"),
            pool_busy: telemetry.gauge("serve.pool.busy"),
            panics: telemetry.counter("serve.panics"),
            sse_dropped: telemetry.counter("serve.sse.dropped"),
            slow_requests: telemetry.counter("serve.slow_requests"),
            queue_depth: telemetry.gauge("serve.queue.depth"),
            shards_done: telemetry.gauge("serve.job.shards_done"),
            job_wall_us: telemetry.histogram("serve.job.wall_us"),
            jobs_completed: telemetry.counter("serve.jobs.completed"),
            jobs_failed: telemetry.counter("serve.jobs.failed"),
            cache_hits: telemetry.counter("serve.cache.hits"),
            cache_misses: telemetry.counter("serve.cache.misses"),
            cache_rejected: telemetry.counter("serve.cache.rejected"),
            request_ids: AtomicU64::new(0),
            access,
            telemetry,
        })
    }

    /// The underlying registry (for the renderers and for tests).
    pub fn registry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The next monotonic request id.
    pub fn next_request_id(&self) -> u64 {
        self.request_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Monotonic microseconds (for request timing).
    pub fn now_micros(&self) -> u64 {
        self.telemetry.now_micros()
    }

    /// Record one finished request into the RED metrics: the per-route
    /// request counter, the status-class error counter, the per-route
    /// duration histogram, the global request-rate series, and the
    /// slow-request counter. `template` is the route template, never the
    /// concrete path.
    pub fn observe_request(&self, method: &str, template: &str, status: u16, micros: u64) {
        let t = &self.telemetry;
        t.counter_with("serve.requests", &[("method", method), ("route", template)])
            .inc();
        let class = match status {
            400..=499 => Some("4xx"),
            500..=599 => Some("5xx"),
            _ => None,
        };
        if let Some(class) = class {
            t.counter_with("serve.errors", &[("class", class), ("route", template)])
                .inc();
        }
        t.histogram_with("serve.request_us", &[("route", template)])
            .observe(micros);
        t.mark("serve.request_rate", &[]);
        if micros >= SLOW_REQUEST_US {
            self.slow_requests.inc();
        }
    }

    /// Append one access-log line (no-op without `--access-log`). The
    /// whole line goes through a single `write_all` under the file lock,
    /// so lines from concurrent handlers never interleave.
    #[allow(clippy::too_many_arguments)]
    pub fn log_access(
        &self,
        id: u64,
        method: &str,
        template: &str,
        path: &str,
        status: u16,
        bytes: u64,
        micros: u64,
    ) {
        let Some(file) = &self.access else { return };
        let line = format!(
            "{{\"ts\": {}, \"id\": {id}, \"method\": \"{}\", \"route\": \"{}\", \
             \"path\": \"{}\", \"status\": {status}, \"bytes\": {bytes}, \"us\": {micros}}}\n",
            self.telemetry.epoch_secs(),
            json_escape(method),
            json_escape(template),
            json_escape(path),
        );
        let mut file = file.lock().expect("access log");
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
    }

    /// Count a cache hit (counter + sliding-window series).
    pub fn cache_hit(&self) {
        self.cache_hits.inc();
        self.telemetry.mark("serve.cache.hits", &[]);
    }

    /// Count a cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.inc();
        self.telemetry.mark("serve.cache.misses", &[]);
    }

    /// Count a rejected (digest-mismatch) cache entry.
    pub fn cache_rejection(&self) {
        self.cache_rejected.inc();
        self.telemetry.mark("serve.cache.rejected", &[]);
    }
}

impl std::fmt::Debug for ServeTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTelemetry")
            .field("access_log", &self.access.is_some())
            .finish()
    }
}

/// Escape a request-derived string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_trace::FakeClock;

    fn fake() -> (Arc<FakeClock>, ServeTelemetry) {
        let clock = Arc::new(FakeClock::new());
        let st = ServeTelemetry::new(Arc::clone(&clock) as Arc<dyn Clock>, None).unwrap();
        (clock, st)
    }

    #[test]
    fn red_metrics_split_by_route_and_status_class() {
        let (_, st) = fake();
        st.observe_request("GET", "/healthz", 200, 120);
        st.observe_request("GET", "/healthz", 200, 80);
        st.observe_request("GET", "/jobs/{id}", 404, 40);
        st.observe_request("POST", "/jobs", 500, 900_000);
        let prom = st.registry().to_prometheus();
        assert!(
            prom.contains("serve_requests{method=\"GET\",route=\"/healthz\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("serve_errors{class=\"4xx\",route=\"/jobs/{id}\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("serve_errors{class=\"5xx\",route=\"/jobs\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("serve_request_us_count{route=\"/healthz\"} 2"),
            "{prom}"
        );
        assert_eq!(st.slow_requests.get(), 1, "only the 900ms request is slow");
    }

    #[test]
    fn request_ids_are_monotonic() {
        let (_, st) = fake();
        assert_eq!(st.next_request_id(), 0);
        assert_eq!(st.next_request_id(), 1);
        assert_eq!(st.next_request_id(), 2);
    }

    #[test]
    fn access_log_lines_are_parseable_jsonl() {
        let dir = std::env::temp_dir().join("bb-serve-access-log-unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let clock = Arc::new(FakeClock::new());
        clock.advance_secs(1_700_000_000);
        let st = ServeTelemetry::new(clock as Arc<dyn Clock>, Some(&path)).unwrap();
        st.log_access(
            0,
            "GET",
            "/exhibits/{id}",
            "/exhibits/fig1a",
            200,
            512,
            1234,
        );
        st.log_access(1, "G\"ET", "(malformed)", "a\\b", 400, 0, 5);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let parsed: serde_json::Value = serde_json::from_str(line).expect(line);
            for field in [
                "ts", "id", "method", "route", "path", "status", "bytes", "us",
            ] {
                assert!(parsed.get(field).is_some(), "missing {field} in {line}");
            }
        }
        assert!(lines[0].contains("\"ts\": 1700000000"), "{}", lines[0]);
        assert!(lines[1].contains("\"method\": \"G\\\"ET\""), "{}", lines[1]);
    }
}
