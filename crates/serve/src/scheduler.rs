//! The in-process job scheduler.
//!
//! One worker thread drains a FIFO queue of [`JobSpec`]s. For each job
//! it first consults the [`ResultCache`] under the job's manifest key:
//! a valid entry is served as-is (`from_cache: true`, no recomputation —
//! the cache-hit counter is the test surface for that guarantee); a miss
//! runs the checkpointed streaming fold via [`runner::run_job`], stores
//! the artifacts, and leaves the checkpoint behind so an interrupted job
//! resumes. Every job owns an SSE [`Feed`] that receives `status`,
//! `shard` and `ledger` frames while it runs and a terminal
//! `done`/`error` frame; readers can attach at any time and always get
//! the full replay. Completed artifacts are additionally kept in memory
//! on the job record, so the read-only endpoints (`/metrics`, `/ledger`,
//! `/exhibits/{id}`, `/countries/{cc}`) serve concurrent readers without
//! touching the cache counters.

use crate::cache::{cache_key, ResultCache};
use crate::runner::{self, JobHooks, JobSpec, RunParams};
use crate::sse::Feed;
use crate::telemetry::ServeTelemetry;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the worker.
    Queued,
    /// The worker is computing (or restoring) it.
    Running,
    /// Artifacts available (from cache or freshly computed).
    Done,
    /// The run failed; see the error message.
    Failed,
}

impl JobState {
    /// Lower-case name for JSON payloads.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// A point-in-time snapshot of one job, safe to serialise.
#[derive(Clone, Debug)]
pub struct JobView {
    /// Job id (dense, starting at 0).
    pub id: u64,
    /// What was requested.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Whether a completed job was served from the result cache.
    pub from_cache: bool,
    /// The manifest-derived cache key.
    pub cache_key: u64,
    /// Failure message, when `state` is `Failed`.
    pub error: Option<String>,
}

impl JobView {
    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "job": self.id,
            "spec": self.spec.to_json(),
            "state": self.state.name(),
            "from_cache": self.from_cache,
            "cache_key": format!("{:016x}", self.cache_key),
            "error": self.error,
        })
    }
}

/// One job record: the public view plus the SSE feed and artifacts.
struct JobRecord {
    view: JobView,
    feed: Arc<Feed>,
    files: Option<Arc<Vec<(String, String)>>>,
}

#[derive(Default)]
struct JobTable {
    jobs: Vec<JobRecord>,
    queue: VecDeque<usize>,
    /// Most recently completed job, the default data source for the
    /// read-only endpoints.
    latest_done: Option<u64>,
}

struct Shared {
    table: Mutex<JobTable>,
    wake: Condvar,
    cache: ResultCache,
    run: RunParams,
    checkpoints: PathBuf,
    shutdown: AtomicBool,
    telemetry: Arc<ServeTelemetry>,
}

/// The scheduler: a queue, a cache, and one worker thread.
pub struct Scheduler {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Start the worker. `cache_dir` holds both the result cache and
    /// the per-job checkpoint directories. `telemetry` receives the
    /// queue-depth gauge, job wall-time histogram, cache outcome
    /// series, and shard-progress gauge — none of which ever touch the
    /// job's artifact bytes.
    pub fn start(
        cache_dir: impl Into<PathBuf>,
        run: RunParams,
        telemetry: Arc<ServeTelemetry>,
    ) -> Self {
        let cache_dir = cache_dir.into();
        let shared = Arc::new(Shared {
            table: Mutex::new(JobTable::default()),
            wake: Condvar::new(),
            cache: ResultCache::new(cache_dir.join("results")),
            run,
            checkpoints: cache_dir.join("checkpoints"),
            shutdown: AtomicBool::new(false),
            telemetry,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&shared))
        };
        Scheduler {
            shared,
            worker: Some(worker),
        }
    }

    /// Enqueue a job and return its id. Identical re-submissions are
    /// answered by the worker from the cache (asserted via
    /// [`cache_hits`](Scheduler::cache_hits)), so submitting is always
    /// cheap.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let key = cache_key(
            &spec.params(self.shared.run.days, self.shared.run.fcc_users),
            self.shared.run.plan.shards,
        );
        let mut table = self.shared.table.lock().expect("job table");
        let id = table.jobs.len() as u64;
        table.jobs.push(JobRecord {
            view: JobView {
                id,
                spec,
                state: JobState::Queued,
                from_cache: false,
                cache_key: key,
                error: None,
            },
            feed: Arc::new(Feed::new()),
            files: None,
        });
        let index = table.jobs.len() - 1;
        table.queue.push_back(index);
        // Publish the new depth while still holding the table lock: an
        // increment outside it can interleave with the worker's decrement
        // and leave the gauge transiently negative (or over-deep) under a
        // concurrent scrape. Setting to the queue's actual length makes
        // the gauge a snapshot of the protected state, never an edit.
        self.shared
            .telemetry
            .queue_depth
            .set(table.queue.len() as i64);
        drop(table);
        self.shared.wake.notify_all();
        id
    }

    /// Snapshot one job.
    pub fn job(&self, id: u64) -> Option<JobView> {
        let table = self.shared.table.lock().expect("job table");
        table.jobs.get(id as usize).map(|r| r.view.clone())
    }

    /// Snapshot every job, in submission order.
    pub fn jobs(&self) -> Vec<JobView> {
        let table = self.shared.table.lock().expect("job table");
        table.jobs.iter().map(|r| r.view.clone()).collect()
    }

    /// The SSE feed of one job.
    pub fn feed(&self, id: u64) -> Option<Arc<Feed>> {
        let table = self.shared.table.lock().expect("job table");
        table.jobs.get(id as usize).map(|r| Arc::clone(&r.feed))
    }

    /// The artifacts of one completed job.
    pub fn files(&self, id: u64) -> Option<Arc<Vec<(String, String)>>> {
        let table = self.shared.table.lock().expect("job table");
        table.jobs.get(id as usize).and_then(|r| r.files.clone())
    }

    /// The artifacts of the most recently completed job.
    pub fn latest_files(&self) -> Option<Arc<Vec<(String, String)>>> {
        let table = self.shared.table.lock().expect("job table");
        let id = table.latest_done?;
        table.jobs.get(id as usize).and_then(|r| r.files.clone())
    }

    /// Block until job `id` reaches a terminal state, then snapshot it.
    pub fn wait(&self, id: u64) -> Option<JobView> {
        let mut table = self.shared.table.lock().expect("job table");
        loop {
            let state = table.jobs.get(id as usize)?.view.state;
            if matches!(state, JobState::Done | JobState::Failed) {
                return Some(table.jobs[id as usize].view.clone());
            }
            table = self.shared.wake.wait(table).expect("job table");
        }
    }

    /// Cache hits (jobs answered without recomputation).
    pub fn cache_hits(&self) -> u64 {
        self.shared.cache.hits()
    }

    /// Cache misses (jobs that had to compute).
    pub fn cache_misses(&self) -> u64 {
        self.shared.cache.misses()
    }

    /// Cache entries rejected for failed digest verification.
    pub fn cache_rejected(&self) -> u64 {
        self.shared.cache.rejected()
    }

    /// Total jobs ever submitted.
    pub fn job_count(&self) -> u64 {
        self.shared.table.lock().expect("job table").jobs.len() as u64
    }

    /// Whether shutdown has been requested (SSE readers poll this).
    pub fn shutdown_flag(&self) -> &AtomicBool {
        &self.shared.shutdown
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("jobs", &self.job_count())
            .field("cache_hits", &self.cache_hits())
            .finish()
    }
}

/// Move job `index` to `state` and mirror it into its SSE feed.
fn set_state(shared: &Shared, index: usize, state: JobState) -> Arc<Feed> {
    let mut table = shared.table.lock().expect("job table");
    table.jobs[index].view.state = state;
    let feed = Arc::clone(&table.jobs[index].feed);
    let payload = table.jobs[index].view.to_json().to_string();
    drop(table);
    shared.wake.notify_all();
    feed.push("status", &payload);
    feed
}

fn worker_loop(shared: &Shared) {
    loop {
        let index = {
            let mut table = shared.table.lock().expect("job table");
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(index) = table.queue.pop_front() {
                    // Same rule as `submit`: publish the depth under the
                    // table lock so the gauge always equals the queue.
                    shared.telemetry.queue_depth.set(table.queue.len() as i64);
                    break index;
                }
                table = shared.wake.wait(table).expect("job table");
            }
        };
        let telemetry = &shared.telemetry;
        let job_start = telemetry.now_micros();
        let (spec, key) = {
            let table = shared.table.lock().expect("job table");
            (
                table.jobs[index].view.spec,
                table.jobs[index].view.cache_key,
            )
        };
        let feed = set_state(shared, index, JobState::Running);
        // `lookup` bumps the cache's own counters; mirror the outcome
        // into the live time series (a digest mismatch reads as a miss
        // *and* a rejection, matching the cache's counting).
        let rejected_before = shared.cache.rejected();
        let outcome = match shared.cache.lookup(key) {
            Some(files) => {
                telemetry.cache_hit();
                Ok((files, true))
            }
            None => {
                if shared.cache.rejected() > rejected_before {
                    telemetry.cache_rejection();
                }
                telemetry.cache_miss();
                let checkpoint_dir = shared.checkpoints.join(format!("{key:016x}"));
                let hooks = JobHooks {
                    progress: Some({
                        let feed = Arc::clone(&feed);
                        let shards_done = Arc::clone(&telemetry.shards_done);
                        Arc::new(move |p: bb_engine::ShardProgress| {
                            shards_done.set(p.done as i64);
                            feed.push(
                                "shard",
                                &format!(
                                    "{{\"shard\": {}, \"done\": {}, \"total\": {}, \
                                     \"items\": {}, \"restored\": {}}}",
                                    p.shard, p.done, p.total, p.items, p.restored
                                ),
                            );
                        })
                    }),
                    ledger: Some({
                        let feed = Arc::clone(&feed);
                        Arc::new(move |event: &bb_trace::Event| {
                            feed.push("ledger", &event.to_json_line());
                        })
                    }),
                };
                runner::run_job(spec, shared.run, &checkpoint_dir, &hooks).and_then(
                    |(files, _report)| {
                        shared
                            .cache
                            .store(key, &files)
                            .map_err(|e| format!("cache store: {e}"))?;
                        Ok((files, false))
                    },
                )
            }
        };
        telemetry
            .job_wall_us
            .observe(telemetry.now_micros() - job_start);
        telemetry.shards_done.set(0);
        match outcome {
            Ok((files, from_cache)) => {
                telemetry.jobs_completed.inc();
                let mut table = shared.table.lock().expect("job table");
                let record = &mut table.jobs[index];
                record.view.state = JobState::Done;
                record.view.from_cache = from_cache;
                record.files = Some(Arc::new(files));
                let id = record.view.id;
                table.latest_done = Some(id);
                drop(table);
                shared.wake.notify_all();
                feed.finish(
                    "done",
                    &format!("{{\"job\": {id}, \"from_cache\": {from_cache}}}"),
                );
            }
            Err(message) => {
                telemetry.jobs_failed.inc();
                let mut table = shared.table.lock().expect("job table");
                let record = &mut table.jobs[index];
                record.view.state = JobState::Failed;
                record.view.error = Some(message.clone());
                drop(table);
                shared.wake.notify_all();
                feed.finish(
                    "error",
                    &serde_json::json!({ "job": index as u64, "message": message }).to_string(),
                );
            }
        }
    }
}
