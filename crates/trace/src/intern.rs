//! String interning for checkpoint restore.
//!
//! [`Registry`](crate::Registry) and [`EventLog`](crate::EventLog) key
//! their entries by `&'static str` on purpose: every metric name and
//! ledger field is a literal at an instrumentation site, so the full name
//! set is greppable and lookups never allocate. Restoring either from a
//! checkpoint file breaks that assumption — the names arrive as owned
//! strings read from disk. [`intern`] bridges the gap: it leaks each
//! distinct name exactly once into a process-global table and hands back
//! a `&'static str`, so a restored registry is indistinguishable from a
//! live one.
//!
//! The leak is bounded by the number of *distinct* names ever interned,
//! which in this workspace is the (small, grep-auditable) metric/field
//! vocabulary — not by the number of checkpoint loads.

use std::collections::BTreeSet;
use std::sync::Mutex;

static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

/// Return a `&'static str` equal to `s`, leaking at most one copy of each
/// distinct string for the lifetime of the process.
pub fn intern(s: &str) -> &'static str {
    let mut table = INTERNED.lock().expect("intern table poisoned");
    if let Some(existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_by_content() {
        let a = intern("checkpoint.test.alpha");
        let b = intern(&String::from("checkpoint.test.alpha"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "same content must share one leak");
        let c = intern("checkpoint.test.beta");
        assert_ne!(a, c);
    }
}
