//! Power-of-two histograms.
//!
//! The paper bins capacities into `(100 kbps · 2^(k-1), 100 kbps · 2^k]`
//! service tiers; this sketch generalises that shape: exact `u64` counts
//! over `log2` buckets of `value / base`, merged by addition — exactly
//! associative, commutative and partition-invariant. It lives in
//! `bb-trace` (and is re-exported by `bb-engine`) because the metrics
//! registry uses the same buckets for its value histograms and the shard
//! runner for its per-shard wall-time distribution.

use std::collections::BTreeMap;

/// Mergeable log₂-bucket histogram for positive values.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Log2Histogram {
    /// Count per `floor(log2(value/base))` — but stored via the paper's
    /// convention `ceil(log2(value/base))` so a bucket `k` covers
    /// `(base·2^(k-1), base·2^k]`.
    counts: BTreeMap<i32, u64>,
    /// Observations at or below zero.
    nonpositive: u64,
}

impl Log2Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `ratio = value / base`: the `k` with
    /// `2^(k-1) < ratio ≤ 2^k`.
    fn bucket_of(ratio: f64) -> i32 {
        ratio.log2().ceil() as i32
    }

    /// Absorb `value` relative to `base` (typically 0.1 Mbps).
    pub fn push(&mut self, value: f64, base: f64) {
        self.push_n(value, base, 1);
    }

    /// Absorb `value` `n` times in one bucket update. Counts are exact
    /// integers, so this is state-identical to `n` scalar [`Self::push`]
    /// calls — the batched collection loop uses it to flush tallied gap
    /// widths without a map lookup per poll pair.
    pub fn push_n(&mut self, value: f64, base: f64, n: u64) {
        debug_assert!(base > 0.0);
        if n == 0 {
            return;
        }
        if value <= 0.0 {
            self.nonpositive += n;
            return;
        }
        *self
            .counts
            .entry(Self::bucket_of(value / base))
            .or_insert(0) += n;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.nonpositive + self.counts.values().sum::<u64>()
    }

    /// `(bucket index, count)` in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// Observations at or below zero.
    pub fn nonpositive(&self) -> u64 {
        self.nonpositive
    }

    /// Rebuild a histogram from previously-exported state: a nonpositive
    /// count plus `(bucket index, count)` pairs as produced by
    /// [`Self::buckets`]. Counts are added, so duplicate bucket indices
    /// accumulate. This is the checkpoint-restore inverse of
    /// [`Self::buckets`]/[`Self::nonpositive`].
    pub fn from_parts(nonpositive: u64, buckets: impl IntoIterator<Item = (i32, u64)>) -> Self {
        let mut h = Log2Histogram {
            counts: BTreeMap::new(),
            nonpositive,
        };
        for (bucket, count) in buckets {
            *h.counts.entry(bucket).or_insert(0) += count;
        }
        h
    }

    /// Fold `other` into `self` by adding bucket counts (exact, and
    /// therefore associative, commutative and partition-invariant).
    pub fn merge(&mut self, other: Self) {
        for (bucket, count) in other.counts {
            *self.counts.entry(bucket).or_insert(0) += count;
        }
        self.nonpositive += other.nonpositive;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_the_paper_tiers() {
        let mut h = Log2Histogram::new();
        // 0.4 Mbps against a 0.1 Mbps base: ratio 4 → bucket 2 ((0.2, 0.4]).
        h.push(0.4, 0.1);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(2, 1)]);
        // 0.401 spills into the next tier.
        h.push(0.401, 0.1);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(2, 1), (3, 1)]);
    }

    #[test]
    fn push_n_matches_repeated_push() {
        let mut batched = Log2Histogram::new();
        let mut scalar = Log2Histogram::new();
        for (value, n) in [(1.0, 3u64), (2.0, 0), (-4.0, 2), (750.0, 5)] {
            batched.push_n(value, 1.0, n);
            for _ in 0..n {
                scalar.push(value, 1.0);
            }
        }
        assert_eq!(batched, scalar);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for i in 1..100 {
            a.push(i as f64, 1.0);
            b.push((i * 7 % 90) as f64, 1.0);
        }
        let mut both = a.clone();
        both.merge(b.clone());
        assert_eq!(both.count(), a.count() + b.count());
        let mut reversed = b;
        reversed.merge(a);
        assert_eq!(both, reversed);
    }
}
