//! Provenance ledger — deterministic, ordered structured events.
//!
//! [`EventLog`] is the analysis-side sibling of [`crate::Registry`]: where
//! the registry aggregates *counters* for the generation pipeline, the
//! ledger records *ordered events* for the analysis pipeline — which
//! exhibit ran, how many units went in, which caliper rejected which
//! candidates, what n/positives fed each sign test. Like the registry it
//! is zero-dependency and byte-stable: events serialise to JSONL with
//! fields in emission order, floats in shortest-roundtrip form, and logs
//! merge by appending in shard order. Because every field is a pure
//! function of the (plan-invariant) dataset, a ledger written by
//! `reproduce --ledger` is byte-identical for any `(shards, threads)`
//! plan — pinned next to the metrics invariance tests.

use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::Log2Histogram;

/// A single field value attached to a provenance [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned count.
    U64(u64),
    /// Signed integer (bucket indices, deltas).
    I64(i64),
    /// Float, serialised in shortest-roundtrip form (non-finite → `null`).
    F64(f64),
    /// Free-form label (exhibit ids, covariate names, directions).
    Str(String),
    /// Flag (e.g. "did this row survive the MIN_PAIRS filter").
    Bool(bool),
    /// Log₂ histogram, serialised as `{"nonpositive": n, "buckets": [[k, c], ...]}`.
    Hist(Log2Histogram),
    /// Ordered label → count map (e.g. per-covariate caliper rejections),
    /// serialised as a JSON object in insertion order.
    Counts(Vec<(String, u64)>),
}

impl Value {
    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (also converts integer variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(v) => write_json_string(out, v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Hist(h) => {
                let _ = write!(
                    out,
                    "{{\"nonpositive\": {}, \"buckets\": [",
                    h.nonpositive()
                );
                let mut first = true;
                for (bucket, count) in h.buckets() {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(out, "[{bucket}, {count}]");
                }
                out.push_str("]}");
            }
            Value::Counts(pairs) => {
                out.push('{');
                let mut first = true;
                for (label, count) in pairs {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    write_json_string(out, label);
                    let _ = write!(out, ": {count}");
                }
                out.push('}');
            }
        }
    }
}

pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One ledger entry: a kind plus fields in emission order.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    kind: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The event kind (`"exhibit"`, `"match_audit"`, `"sign_test"`, ...).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// `(key, value)` pairs in the order they were emitted.
    pub fn fields(&self) -> impl Iterator<Item = (&'static str, &Value)> + '_ {
        self.fields.iter().map(|(k, v)| (*k, v))
    }

    /// First field with key `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    fn write_jsonl(&self, out: &mut String) {
        out.push_str("{\"event\": ");
        write_json_string(out, self.kind);
        for (key, value) in &self.fields {
            out.push_str(", ");
            write_json_string(out, key);
            out.push_str(": ");
            value.write_json(out);
        }
        out.push_str("}\n");
    }

    /// The event as one JSONL line (without the trailing newline) —
    /// exactly the bytes [`EventLog::to_jsonl`] would emit for it, so a
    /// tail subscriber can forward lines that match the batch ledger.
    pub fn to_json_line(&self) -> String {
        let mut out = String::new();
        self.write_jsonl(&mut out);
        out.truncate(out.trim_end().len());
        out
    }
}

/// Chainable field builder returned by [`EventLog::emit`]. The event is
/// appended to the log when the builder is dropped (end of statement),
/// so an emit can never be half-finished or forgotten.
pub struct EventBuilder<'a> {
    log: &'a mut EventLog,
    event: Option<Event>,
}

impl EventBuilder<'_> {
    fn push(mut self, key: &'static str, value: Value) -> Self {
        self.event
            .as_mut()
            .expect("event present until drop")
            .fields
            .push((key, value));
        self
    }

    /// Attach an unsigned count.
    pub fn u64(self, key: &'static str, v: u64) -> Self {
        self.push(key, Value::U64(v))
    }

    /// Attach a signed integer.
    pub fn i64(self, key: &'static str, v: i64) -> Self {
        self.push(key, Value::I64(v))
    }

    /// Attach a float (non-finite serialises as `null`).
    pub fn f64(self, key: &'static str, v: f64) -> Self {
        self.push(key, Value::F64(v))
    }

    /// Attach a string label.
    pub fn str(self, key: &'static str, v: impl Into<String>) -> Self {
        self.push(key, Value::Str(v.into()))
    }

    /// Attach a flag.
    pub fn bool(self, key: &'static str, v: bool) -> Self {
        self.push(key, Value::Bool(v))
    }

    /// Attach a log₂ histogram.
    pub fn hist(self, key: &'static str, v: Log2Histogram) -> Self {
        self.push(key, Value::Hist(v))
    }

    /// Attach an ordered label → count map.
    pub fn counts(self, key: &'static str, v: Vec<(String, u64)>) -> Self {
        self.push(key, Value::Counts(v))
    }
}

impl Drop for EventBuilder<'_> {
    fn drop(&mut self) {
        if let Some(event) = self.event.take() {
            if let Some(tail) = &self.log.tail {
                tail(&event);
            }
            self.log.events.push(event);
        }
    }
}

/// A tail subscriber: called with each event as it lands in the log.
pub type EventTail = Arc<dyn Fn(&Event) + Send + Sync>;

/// Ordered provenance ledger: append-only, mergeable in shard order,
/// serialised as byte-stable JSONL. An optional [`EventTail`] subscriber
/// observes each event as it is appended (emit or merge) — the serve
/// gateway sources its SSE ledger stream from it. The tail is pure
/// observation: it never alters the recorded events, and logs compare
/// equal (and clone/serialise identically) regardless of subscription.
#[derive(Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    tail: Option<EventTail>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog")
            .field("events", &self.events)
            .field("tail", &self.tail.is_some())
            .finish()
    }
}

impl PartialEq for EventLog {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl EventLog {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribe `tail` to every event appended from now on (one
    /// subscriber at a time; a second call replaces the first). Events
    /// already in the log are not replayed.
    pub fn set_tail(&mut self, tail: EventTail) {
        self.tail = Some(tail);
    }

    /// Remove the tail subscriber, if any.
    pub fn clear_tail(&mut self) {
        self.tail = None;
    }

    /// Start an event of `kind`; chain field setters on the returned
    /// builder. The event lands in the log at end of statement.
    pub fn emit(&mut self, kind: &'static str) -> EventBuilder<'_> {
        EventBuilder {
            log: self,
            event: Some(Event {
                kind,
                fields: Vec::new(),
            }),
        }
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events in emission order.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// Append `other`'s events after `self`'s. Callers merge shards in
    /// shard-index order, which keeps the ledger plan-invariant for the
    /// same reason the engine's sketch merges are.
    pub fn merge(&mut self, other: Self) {
        if let Some(tail) = &self.tail {
            for event in &other.events {
                tail(event);
            }
        }
        self.events.extend(other.events);
    }

    /// One JSON object per line, fields in emission order, trailing
    /// newline. Byte-stable: equal logs serialise to equal bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.write_jsonl(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_preserves_field_order_and_serialises_each_type() {
        let mut log = EventLog::new();
        let mut h = Log2Histogram::new();
        h.push(3.0, 1.0);
        h.push(-1.0, 1.0);
        log.emit("exhibit")
            .str("id", "fig2")
            .u64("n", 7)
            .i64("bucket", -3)
            .f64("p_value", 0.5)
            .bool("kept", true)
            .hist("dist", h);
        assert_eq!(log.len(), 1);
        assert_eq!(
            log.to_jsonl(),
            "{\"event\": \"exhibit\", \"id\": \"fig2\", \"n\": 7, \"bucket\": -3, \
             \"p_value\": 0.5, \"kept\": true, \
             \"dist\": {\"nonpositive\": 1, \"buckets\": [[2, 1]]}}\n"
        );
    }

    #[test]
    fn counts_serialise_as_an_ordered_object() {
        let mut log = EventLog::new();
        log.emit("match_audit").counts(
            "caliper_rejections",
            vec![("latency".into(), 3), ("price".into(), 0)],
        );
        assert_eq!(
            log.to_jsonl(),
            "{\"event\": \"match_audit\", \
             \"caliper_rejections\": {\"latency\": 3, \"price\": 0}}\n"
        );
    }

    #[test]
    fn strings_are_escaped_and_nonfinite_floats_become_null() {
        let mut log = EventLog::new();
        log.emit("note")
            .str("label", "a\"b\\c\nd\u{1}")
            .f64("bad", f64::NAN);
        assert_eq!(
            log.to_jsonl(),
            "{\"event\": \"note\", \"label\": \"a\\\"b\\\\c\\nd\\u0001\", \"bad\": null}\n"
        );
    }

    #[test]
    fn merge_appends_in_order() {
        let mut a = EventLog::new();
        a.emit("first").u64("n", 1);
        let mut b = EventLog::new();
        b.emit("second").u64("n", 2);
        a.merge(b);
        let kinds: Vec<_> = a.events().map(Event::kind).collect();
        assert_eq!(kinds, ["first", "second"]);
        // Byte-stability: same events, same bytes.
        let again = a.clone();
        assert_eq!(a.to_jsonl(), again.to_jsonl());
    }

    #[test]
    fn tail_observes_emits_and_merges_without_changing_the_log() {
        use std::sync::Mutex;
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut log = EventLog::new();
        log.emit("before_subscribe").u64("n", 0);
        log.set_tail(Arc::new(move |e: &Event| {
            let mut out = String::new();
            e.write_jsonl(&mut out);
            sink.lock().unwrap().push(out);
        }));
        log.emit("emitted").u64("n", 1);
        let mut other = EventLog::new();
        other.emit("merged").u64("n", 2);
        log.merge(other);

        let frames = seen.lock().unwrap().clone();
        assert_eq!(frames.len(), 2, "no replay of pre-subscription events");
        assert!(frames[0].contains("\"emitted\""));
        assert!(frames[1].contains("\"merged\""));
        // The tail is pure observation: the serialised log is exactly
        // what an unsubscribed log would have recorded.
        let mut plain = EventLog::new();
        plain.emit("before_subscribe").u64("n", 0);
        plain.emit("emitted").u64("n", 1);
        plain.emit("merged").u64("n", 2);
        assert_eq!(log, plain);
        assert_eq!(log.to_jsonl(), plain.to_jsonl());

        log.clear_tail();
        log.emit("after_clear").u64("n", 3);
        assert_eq!(seen.lock().unwrap().len(), 2);
    }

    #[test]
    fn get_finds_fields_by_key() {
        let mut log = EventLog::new();
        log.emit("sign_test").u64("positives", 9).f64("p", 0.25);
        let e = log.events().next().unwrap();
        assert_eq!(e.get("positives").and_then(Value::as_u64), Some(9));
        assert_eq!(e.get("p").and_then(Value::as_f64), Some(0.25));
        assert_eq!(e.get("missing"), None);
    }
}
