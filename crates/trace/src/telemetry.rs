//! Live service telemetry: a concurrent, lock-sparse metrics registry.
//!
//! [`Registry`](crate::Registry) deliberately cannot describe a running
//! *service*: it is `&mut self`, merged in shard order, and pinned to be
//! a pure function of the seed so it can live in byte-identical
//! artifacts. A gateway needs the opposite — many threads recording
//! latencies, queue depths and error counts *while* requests are in
//! flight, into state that is wall-clock-dependent by definition.
//! [`Telemetry`] is that other half:
//!
//! - [`Counter`] / [`Gauge`]: single atomics, incremented lock-free;
//! - [`AtomicLog2Histogram`]: the same `(2^(k-1), 2^k]` bucket
//!   convention as [`Log2Histogram`](crate::Log2Histogram), but over a
//!   fixed array of atomics so concurrent observers never contend on a
//!   lock;
//! - [`TimeSeries`]: a fixed-capacity per-second ring buffer for
//!   sliding-window rates (requests/sec, cache hits over the last
//!   minute);
//! - [`Telemetry`]: the registry tying names (+ label sets) to handles.
//!   Registration takes a short mutex; instrumentation sites hold the
//!   returned `Arc` handles and record through plain atomics.
//!
//! Time is injected through the [`Clock`] trait so every sliding-window
//! behaviour is testable on a [`FakeClock`]; production uses
//! [`SystemClock`]. Rendering is either a JSON snapshot
//! ([`Telemetry::to_json`], including the raw ring-buffer windows) or
//! Prometheus text exposition ([`Telemetry::to_prometheus`], mapping
//! log₂ buckets onto cumulative `le` buckets).
//!
//! Two subsystems register instrument families here. The gateway
//! (`bb-serve`) owns the `serve.*` names — RED metrics, queue depth,
//! job wall times. The federation coordinator (`bb-federate`) owns
//! `federate.*`: `federate.workers.connected` and the per-worker
//! `federate.worker.{inflight,assigned,merged}` gauges/counters,
//! `federate.reassignments` labelled by cause (`worker-lost`,
//! `lease-expired`, `rejected-result`), `federate.frames.rejected` /
//! `federate.results.{rejected,duplicate}`, and the
//! `federate.shard.round_trip_us` histogram. Survivability adds two
//! more families: `federate.reconnect.accepted` counts Hello frames
//! that arrived with a non-zero `prior` session ordinal (a worker that
//! came back through its backoff loop), and `federate.deadline.expired`
//! — labelled by `phase` (`handshake`, `session`, `write`) — counts
//! sockets the coordinator abandoned because a read or write sat past
//! its deadline. The coordinator also leases shards against
//! [`Telemetry::now_micros`], so lease-expiry behaviour is testable on
//! a [`FakeClock`] like any sliding window.
//!
//! Everything here is plan-, process- and wall-clock-dependent. None of
//! it may ever be written into `metrics.json`, the ledger, or an exhibit
//! file — the byte-identity tests pin that separation.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A source of time for telemetry: monotonic microseconds for durations
/// and sliding windows, Unix epoch seconds for log timestamps.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary fixed origin (typically process
    /// start). Must never go backwards.
    fn now_micros(&self) -> u64;
    /// Seconds since the Unix epoch (wall clock, for log timestamps).
    fn epoch_secs(&self) -> u64;
}

/// The production clock: `Instant` for monotonic time, `SystemTime` for
/// wall timestamps.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose monotonic origin is now.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn epoch_secs(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A hand-cranked clock for tests: time only moves when told to.
#[derive(Debug, Default)]
pub struct FakeClock {
    micros: AtomicU64,
    epoch: AtomicU64,
}

impl FakeClock {
    /// A clock at monotonic zero, epoch zero.
    pub fn new() -> Self {
        FakeClock::default()
    }

    /// Advance monotonic time by `micros` (the epoch advances by the
    /// same whole seconds).
    pub fn advance_micros(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Relaxed);
        self.epoch.fetch_add(micros / 1_000_000, Ordering::Relaxed);
    }

    /// Advance monotonic time by whole seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.advance_micros(secs * 1_000_000);
    }
}

impl Clock for FakeClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    fn epoch_secs(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `u64`, incremented lock-free.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Add `delta` (negative to decrement).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite with `value`.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index of `value` under the workspace's log₂ convention:
/// bucket `k` covers `(2^(k-1), 2^k]`, with 0 and 1 sharing bucket 0.
/// Identical maths to `Log2Histogram::bucket_of` at base 1, restricted
/// to unsigned integers (there are no negative durations).
fn log2_bucket(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (64 - (value - 1).leading_zeros()) as usize
    }
}

/// Number of log₂ buckets needed to cover all of `u64` (k = 0..=64).
const HIST_BUCKETS: usize = 65;

/// A concurrent log₂ histogram over `u64` values (typically µs).
///
/// The same `(2^(k-1), 2^k]` buckets as
/// [`Log2Histogram`](crate::Log2Histogram), but held in a fixed array of
/// atomics so any number of threads can observe without locking. Because
/// every bucket's upper edge is an exact power of two, the buckets map
/// losslessly onto cumulative Prometheus `le` buckets.
#[derive(Debug)]
pub struct AtomicLog2Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for AtomicLog2Histogram {
    fn default() -> Self {
        AtomicLog2Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicLog2Histogram {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values (wraps at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    /// Bucket `k` covers `(2^(k-1), 2^k]` (bucket 0 covers `[0, 1]`).
    pub fn buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(k, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((k as u32, n))
            })
            .collect()
    }
}

/// A fixed-capacity per-second ring buffer: the event counts of the last
/// `capacity` seconds, for sliding-window rates.
///
/// Each slot owns one absolute second (`sec % capacity`); recording into
/// a slot whose stored second is stale claims it for the current second
/// and resets its count. Under concurrent claiming of the *same* new
/// second a few events may land in a slot that is reset a moment later —
/// sliding-window rates are approximate by design (and exact under a
/// [`FakeClock`], which is what the tests use).
#[derive(Debug)]
pub struct TimeSeries {
    slots: Vec<Slot>,
}

#[derive(Debug, Default)]
struct Slot {
    /// The absolute second this slot currently counts, offset by one so
    /// the all-zero initial state never aliases second 0.
    sec1: AtomicU64,
    count: AtomicU64,
}

impl TimeSeries {
    /// A ring covering the last `capacity` seconds (at least 1).
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            slots: (0..capacity.max(1)).map(|_| Slot::default()).collect(),
        }
    }

    /// Seconds of history the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Count `n` events at absolute second `sec`.
    pub fn record_at(&self, sec: u64, n: u64) {
        let slot = &self.slots[(sec as usize) % self.slots.len()];
        let sec1 = sec + 1;
        let stored = slot.sec1.load(Ordering::Relaxed);
        if stored != sec1 {
            if stored > sec1 {
                return; // a newer second owns this slot; drop the late event
            }
            // Claim the slot for `sec`; exactly one claimer resets it.
            if slot
                .sec1
                .compare_exchange(stored, sec1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.count.store(0, Ordering::Relaxed);
            } else if slot.sec1.load(Ordering::Relaxed) != sec1 {
                return;
            }
        }
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Total events in the `window`-second window ending at second `now`
    /// (inclusive): seconds `now - window + 1 ..= now`.
    pub fn window_sum(&self, now: u64, window: u64) -> u64 {
        self.samples(now, window).iter().map(|&(_, n)| n).sum()
    }

    /// `(second, count)` for every populated second inside the window,
    /// ascending. The window is clamped to the ring's capacity.
    pub fn samples(&self, now: u64, window: u64) -> Vec<(u64, u64)> {
        let window = window.min(self.slots.len() as u64).min(now + 1);
        let lo = now + 1 - window;
        let mut out = Vec::new();
        for sec in lo..=now {
            let slot = &self.slots[(sec as usize) % self.slots.len()];
            if slot.sec1.load(Ordering::Relaxed) == sec + 1 {
                let n = slot.count.load(Ordering::Relaxed);
                if n > 0 {
                    out.push((sec, n));
                }
            }
        }
        out
    }
}

/// A metric's identity: family name plus a sorted label set.
///
/// Names follow the workspace's dotted convention (`serve.requests`);
/// the Prometheus renderer maps them to exposition-safe underscores.
/// Label keys are `&'static str` (literals at instrumentation sites);
/// values are owned (route templates, status classes).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

impl MetricId {
    /// An id for `name` with `labels` (sorted by key internally).
    pub fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|&(k, v)| (k, v.to_string())).collect();
        labels.sort();
        MetricId { name, labels }
    }

    /// The family name (without labels).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The sorted label set.
    pub fn labels(&self) -> &[(&'static str, String)] {
        &self.labels
    }

    /// `name{k="v",...}` (or just `name`), for JSON snapshot keys.
    pub fn render(&self) -> String {
        let mut out = String::from(self.name);
        out.push_str(&self.render_labels());
        out
    }

    /// `{k="v",...}` with escaped values, or `""` without labels.
    fn render_labels(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let mut out = String::from("{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(out, "{k}=\"{escaped}\"");
        }
        out.push('}');
        out
    }
}

/// Map a dotted metric name to a Prometheus-safe one: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The concurrent telemetry registry: names to handles.
///
/// Registration (`counter`, `gauge`, `histogram`, `time_series`) takes a
/// short mutex and is idempotent — the same [`MetricId`] always returns
/// the same handle, so call sites may either cache the `Arc` (hot paths)
/// or re-register per event (cold paths). Recording through a handle is
/// lock-free.
pub struct Telemetry {
    clock: Arc<dyn Clock>,
    start_micros: u64,
    counters: Mutex<BTreeMap<MetricId, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<MetricId, Arc<AtomicLog2Histogram>>>,
    series: Mutex<BTreeMap<MetricId, Arc<TimeSeries>>>,
}

/// Ring capacity of [`Telemetry::time_series`] ring buffers: two minutes
/// of per-second slots, enough for any sub-minute sliding window.
pub const SERIES_CAPACITY: usize = 120;

/// The sliding window the renderers report for time series, seconds.
pub const SERIES_WINDOW_SECS: u64 = 60;

impl Telemetry {
    /// A registry on the given clock.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        let start_micros = clock.now_micros();
        Telemetry {
            clock,
            start_micros,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// A registry on the system clock.
    pub fn system() -> Self {
        Telemetry::new(Arc::new(SystemClock::new()))
    }

    /// Monotonic microseconds from the underlying clock.
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Monotonic seconds (for time-series slots).
    pub fn now_secs(&self) -> u64 {
        self.clock.now_micros() / 1_000_000
    }

    /// Wall-clock Unix seconds (for log timestamps).
    pub fn epoch_secs(&self) -> u64 {
        self.clock.epoch_secs()
    }

    /// Seconds since this registry was created.
    pub fn uptime_secs(&self) -> u64 {
        (self.clock.now_micros() - self.start_micros) / 1_000_000
    }

    /// Register (or look up) a label-less counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Register (or look up) a counter with labels.
    pub fn counter_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        Arc::clone(
            self.counters
                .lock()
                .expect("telemetry counters")
                .entry(id)
                .or_default(),
        )
    }

    /// Register (or look up) a label-less gauge.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Register (or look up) a gauge with labels.
    pub fn gauge_with(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        Arc::clone(
            self.gauges
                .lock()
                .expect("telemetry gauges")
                .entry(id)
                .or_default(),
        )
    }

    /// Register (or look up) a label-less histogram.
    pub fn histogram(&self, name: &'static str) -> Arc<AtomicLog2Histogram> {
        self.histogram_with(name, &[])
    }

    /// Register (or look up) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<AtomicLog2Histogram> {
        let id = MetricId::new(name, labels);
        Arc::clone(
            self.hists
                .lock()
                .expect("telemetry histograms")
                .entry(id)
                .or_default(),
        )
    }

    /// Register (or look up) a label-less per-second time series
    /// ([`SERIES_CAPACITY`] seconds of ring).
    pub fn time_series(&self, name: &'static str) -> Arc<TimeSeries> {
        self.time_series_with(name, &[])
    }

    /// Register (or look up) a time series with labels.
    pub fn time_series_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<TimeSeries> {
        let id = MetricId::new(name, labels);
        Arc::clone(
            self.series
                .lock()
                .expect("telemetry series")
                .entry(id)
                .or_insert_with(|| Arc::new(TimeSeries::new(SERIES_CAPACITY))),
        )
    }

    /// Record one event *now* into the time series `name{labels}`.
    pub fn mark(&self, name: &'static str, labels: &[(&'static str, &str)]) {
        self.time_series_with(name, labels)
            .record_at(self.now_secs(), 1);
    }

    /// Prometheus text exposition of everything registered.
    ///
    /// Dotted names become underscore names; every family gets one
    /// `# TYPE` line; histograms render as cumulative `le` buckets whose
    /// edges are the exact powers of two bounding the log₂ buckets, plus
    /// `_sum` and `_count`; time series render as gauges of the
    /// [`SERIES_WINDOW_SECS`]-second window sum, labelled
    /// `window="60s"`.
    pub fn to_prometheus(&self) -> String {
        let now = self.now_secs();
        let mut out = String::new();

        // Counters and gauges share a shape: family → samples.
        let counters: Vec<(MetricId, u64)> = {
            let map = self.counters.lock().expect("telemetry counters");
            map.iter().map(|(id, c)| (id.clone(), c.get())).collect()
        };
        render_simple_families(
            &mut out,
            "counter",
            counters.iter().map(|(id, v)| (id, *v as f64)),
        );

        let gauges: Vec<(MetricId, i64)> = {
            let map = self.gauges.lock().expect("telemetry gauges");
            map.iter().map(|(id, g)| (id.clone(), g.get())).collect()
        };
        render_simple_families(
            &mut out,
            "gauge",
            gauges.iter().map(|(id, v)| (id, *v as f64)),
        );

        // Time series: windowed sums as gauges. The family name gets a
        // `_window` suffix so it can never collide with the counter of
        // the same dotted name (`serve.cache.hits` renders both as the
        // monotone counter `serve_cache_hits` and as the sliding-window
        // gauge `serve_cache_hits_window` — one TYPE line each).
        let series: Vec<(MetricId, u64)> = {
            let map = self.series.lock().expect("telemetry series");
            map.iter()
                .map(|(id, s)| (id.clone(), s.window_sum(now, SERIES_WINDOW_SECS)))
                .collect()
        };
        let mut last_family = String::new();
        for (id, sum) in &series {
            let family = format!("{}_window", prom_name(id.name()));
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} gauge");
                last_family = family.clone();
            }
            let mut labels: Vec<(&'static str, &str)> =
                id.labels().iter().map(|(k, v)| (*k, v.as_str())).collect();
            let window = format!("{SERIES_WINDOW_SECS}s");
            labels.push(("window", &window));
            let with_window = MetricId::new(id.name(), &labels);
            let _ = writeln!(out, "{family}{} {sum}", with_window.render_labels());
        }

        // Histograms: cumulative le buckets + _sum + _count.
        type HistRow = (MetricId, Vec<(u32, u64)>, u64, u64);
        let hists: Vec<HistRow> = {
            let map = self.hists.lock().expect("telemetry histograms");
            map.iter()
                .map(|(id, h)| (id.clone(), h.buckets(), h.sum(), h.count()))
                .collect()
        };
        let mut last_family = String::new();
        for (id, buckets, sum, count) in &hists {
            let family = prom_name(id.name());
            if *family != last_family {
                let _ = writeln!(out, "# TYPE {family} histogram");
                last_family = family.clone();
            }
            let labels = id.render_labels();
            let joined = |extra: &str| -> String {
                // Insert `le` into the existing label set (or create one).
                if labels.is_empty() {
                    format!("{{{extra}}}")
                } else {
                    format!("{},{extra}}}", &labels[..labels.len() - 1])
                }
            };
            let mut cumulative = 0u64;
            for &(k, n) in buckets {
                cumulative += n;
                // Bucket k covers (2^(k-1), 2^k]; le = 2^k is exact.
                let le = 1u128 << k;
                let _ = writeln!(
                    out,
                    "{family}_bucket{} {cumulative}",
                    joined(&format!("le=\"{le}\""))
                );
            }
            let _ = writeln!(out, "{family}_bucket{} {count}", joined("le=\"+Inf\""));
            let _ = writeln!(out, "{family}_sum{labels} {sum}");
            let _ = writeln!(out, "{family}_count{labels} {count}");
        }
        out
    }

    /// The full state as a JSON document, including the per-second ring
    /// windows — the `/debug/telemetry` payload. Keys are
    /// `name{label="value"}` strings in sorted order.
    pub fn to_json(&self) -> String {
        let now = self.now_secs();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"uptime_secs\": {},", self.uptime_secs());
        let _ = writeln!(out, "  \"now_secs\": {now},");

        out.push_str("  \"counters\": {");
        {
            let map = self.counters.lock().expect("telemetry counters");
            let mut first = true;
            for (id, c) in map.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    \"{}\": {}", json_escape(&id.render()), c.get());
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("},\n  \"gauges\": {");
        {
            let map = self.gauges.lock().expect("telemetry gauges");
            let mut first = true;
            for (id, g) in map.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    \"{}\": {}", json_escape(&id.render()), g.get());
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("},\n  \"histograms\": {");
        {
            let map = self.hists.lock().expect("telemetry histograms");
            let mut first = true;
            for (id, h) in map.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                    json_escape(&id.render()),
                    h.count(),
                    h.sum()
                );
                for (i, (k, n)) in h.buckets().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{k}, {n}]");
                }
                out.push_str("]}");
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("},\n  \"series\": {");
        {
            let map = self.series.lock().expect("telemetry series");
            let mut first = true;
            for (id, s) in map.iter() {
                if !first {
                    out.push(',');
                }
                first = false;
                let window = s.window_sum(now, SERIES_WINDOW_SECS);
                let _ = write!(
                    out,
                    "\n    \"{}\": {{\"window_secs\": {SERIES_WINDOW_SECS}, \"window_sum\": {window}, \"per_sec\": [",
                    json_escape(&id.render())
                );
                for (i, (sec, n)) in s.samples(now, s.capacity() as u64).iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{sec}, {n}]");
                }
                out.push_str("]}");
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("}\n}\n");
        out
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("uptime_secs", &self.uptime_secs())
            .finish()
    }
}

/// Escape a string for inclusion inside a JSON string literal.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Emit `# TYPE` + samples for a sorted run of counter/gauge ids.
fn render_simple_families<'a>(
    out: &mut String,
    kind: &str,
    samples: impl Iterator<Item = (&'a MetricId, f64)>,
) {
    let mut last_family = String::new();
    for (id, value) in samples {
        let family = prom_name(id.name());
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            last_family = family.clone();
        }
        let _ = writeln!(out, "{family}{} {value}", id.render_labels());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Log2Histogram;

    fn fake() -> (Arc<FakeClock>, Telemetry) {
        let clock = Arc::new(FakeClock::new());
        let telemetry = Telemetry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, telemetry)
    }

    #[test]
    fn counters_and_gauges_are_shared_by_identity() {
        let (_, t) = fake();
        let a = t.counter_with("serve.requests", &[("route", "/jobs")]);
        let b = t.counter_with("serve.requests", &[("route", "/jobs")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4, "same id must share one atomic");
        let other = t.counter_with("serve.requests", &[("route", "/metrics")]);
        assert_eq!(other.get(), 0);
        let g = t.gauge("serve.in_flight");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(0);
        assert_eq!(t.gauge("serve.in_flight").get(), 0);
    }

    #[test]
    fn atomic_histogram_buckets_match_log2_histogram() {
        let atomic = AtomicLog2Histogram::default();
        let mut reference = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 1000, 1024, 1025, u64::MAX] {
            atomic.observe(v);
            // The reference puts 0 in `nonpositive` and 1 in bucket 0;
            // the atomic folds both into bucket 0 (durations are never
            // negative, so the nonpositive distinction is meaningless).
            if v >= 1 {
                reference.push(v as f64, 1.0);
            }
        }
        let got: Vec<(u32, u64)> = atomic.buckets();
        // Bucket 0 holds both the 0 and the 1.
        assert_eq!(got[0], (0, 2));
        // Every other bucket agrees with the f64 reference (u64::MAX
        // rounds up in f64, still bucket 64).
        let reference: Vec<(i32, u64)> = reference.buckets().collect();
        for &(k, n) in &got[1..] {
            assert!(
                reference.contains(&(k as i32, n)),
                "bucket {k} count {n} missing from reference {reference:?}"
            );
        }
        assert_eq!(atomic.count(), 10);
    }

    #[test]
    fn log2_bucket_edges_are_exact() {
        // Bucket k covers (2^(k-1), 2^k].
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(5), 3);
        for k in 1..=63u32 {
            let edge = 1u64 << k;
            assert_eq!(log2_bucket(edge), k as usize, "2^{k} belongs to bucket {k}");
            assert_eq!(log2_bucket(edge + 1), k as usize + 1);
        }
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn time_series_windows_slide_and_slots_recycle() {
        let ts = TimeSeries::new(5);
        ts.record_at(10, 2);
        ts.record_at(11, 1);
        ts.record_at(13, 4);
        assert_eq!(ts.window_sum(13, 5), 7);
        assert_eq!(ts.window_sum(13, 1), 4);
        assert_eq!(ts.window_sum(12, 2), 1, "window ending before sec 13");
        assert_eq!(ts.samples(13, 5), vec![(10, 2), (11, 1), (13, 4)]);
        // Second 15 reuses second 10's slot (15 % 5 == 0 == 10 % 5).
        ts.record_at(15, 8);
        assert_eq!(
            ts.window_sum(15, 5),
            13,
            "11 dropped out, 10's slot recycled"
        );
        assert_eq!(ts.samples(15, 5), vec![(11, 1), (13, 4), (15, 8)]);
        // A late event for an evicted second is dropped, not misfiled.
        ts.record_at(10, 100);
        assert_eq!(ts.window_sum(15, 5), 13);
    }

    #[test]
    fn fake_clock_drives_mark_and_uptime() {
        let (clock, t) = fake();
        t.mark("serve.cache.hits", &[]);
        clock.advance_secs(30);
        t.mark("serve.cache.hits", &[]);
        t.mark("serve.cache.hits", &[]);
        let ts = t.time_series("serve.cache.hits");
        assert_eq!(ts.window_sum(t.now_secs(), 60), 3);
        clock.advance_secs(45);
        // The first mark (75 s ago) has left the 60 s window.
        assert_eq!(ts.window_sum(t.now_secs(), 60), 2);
        assert_eq!(t.uptime_secs(), 75);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let (_, t) = fake();
        let t = Arc::new(t);
        let counter = t.counter("stress.count");
        let hist = t.histogram("stress.hist");
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let (counter, hist) = (Arc::clone(&counter), Arc::clone(&hist));
                std::thread::spawn(move || {
                    for j in 0..1000u64 {
                        counter.inc();
                        hist.observe(i * 1000 + j);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(counter.get(), 8000);
        assert_eq!(hist.count(), 8000);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let (clock, t) = fake();
        t.counter_with(
            "serve.requests",
            &[("method", "GET"), ("route", "/jobs/{id}")],
        )
        .add(4);
        t.counter("serve.panics");
        t.gauge("serve.queue_depth").set(2);
        let h = t.histogram_with("serve.request_us", &[("route", "/jobs/{id}")]);
        h.observe(3); // bucket 2, le 4
        h.observe(4); // bucket 2, le 4
        h.observe(900); // bucket 10, le 1024
        t.mark("serve.cache.hits", &[]);
        clock.advance_secs(1);
        let prom = t.to_prometheus();

        assert!(prom.contains("# TYPE serve_requests counter"), "{prom}");
        assert!(
            prom.contains("serve_requests{method=\"GET\",route=\"/jobs/{id}\"} 4"),
            "{prom}"
        );
        assert!(prom.contains("serve_panics 0"), "{prom}");
        assert!(prom.contains("# TYPE serve_queue_depth gauge"), "{prom}");
        assert!(prom.contains("serve_queue_depth 2"), "{prom}");
        assert!(prom.contains("# TYPE serve_request_us histogram"), "{prom}");
        assert!(
            prom.contains("serve_request_us_bucket{route=\"/jobs/{id}\",le=\"4\"} 2"),
            "cumulative le=4: {prom}"
        );
        assert!(
            prom.contains("serve_request_us_bucket{route=\"/jobs/{id}\",le=\"1024\"} 3"),
            "cumulative le=1024: {prom}"
        );
        assert!(
            prom.contains("serve_request_us_bucket{route=\"/jobs/{id}\",le=\"+Inf\"} 3"),
            "{prom}"
        );
        assert!(
            prom.contains("serve_request_us_sum{route=\"/jobs/{id}\"} 907"),
            "{prom}"
        );
        assert!(
            prom.contains("serve_request_us_count{route=\"/jobs/{id}\"} 3"),
            "{prom}"
        );
        assert!(
            prom.contains("serve_cache_hits_window{window=\"60s\"} 1"),
            "windowed series: {prom}"
        );
        // The windowed gauge must not collide with the counter family:
        // exactly one TYPE line per family name.
        let mut seen = std::collections::BTreeSet::new();
        for line in prom.lines().filter(|l| l.starts_with("# TYPE ")) {
            let family = line.split_whitespace().nth(2).expect("family");
            assert!(seen.insert(family.to_string()), "duplicate TYPE: {line}");
        }
        // Every non-comment line is `name{...} value` with a numeric value.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }

    #[test]
    fn json_snapshot_includes_ring_windows() {
        let (clock, t) = fake();
        t.counter("serve.panics").inc();
        t.mark("serve.cache.misses", &[]);
        clock.advance_secs(2);
        t.mark("serve.cache.misses", &[]);
        let json = t.to_json();
        assert!(json.contains("\"uptime_secs\": 2"), "{json}");
        assert!(json.contains("\"serve.panics\": 1"), "{json}");
        assert!(
            json.contains("\"serve.cache.misses\": {\"window_secs\": 60, \"window_sum\": 2, \"per_sec\": [[0, 1], [2, 1]]}"),
            "{json}"
        );
    }
}
