//! `bb-trace` — zero-dependency structured observability.
//!
//! The collection pipeline of the paper (Bischof, Bustamante, Stanojevic,
//! IMC 2014) survives on recovery heuristics: 32-bit UPnP counters wrap,
//! gateways reset on reboot, polls jitter and drop. Those paths used to
//! fire silently. This crate makes them observable without giving up the
//! workspace's core guarantee — bit-identical output for any
//! `(shards, threads)` plan — by splitting observability into two halves:
//!
//! - [`Registry`]: named counters + log₂ value histograms for **data
//!   events** (wraps, resets, clamps, drops, merges). Pure functions of
//!   `(seed, user index)`, merged shard-order-deterministically like the
//!   engine's sketches, serialised to byte-stable JSON (`--metrics`).
//! - [`EventLog`]: an ordered provenance ledger for **analysis events**
//!   (exhibit inputs, matching audits, sign-test parameters). Like the
//!   registry it is a pure function of the dataset, merged in shard
//!   order, and serialised to byte-stable JSONL (`--ledger`).
//! - [`Timings`]: named wall-clock spans for the **runtime** side (phase
//!   durations, per-shard wall time), now as a hierarchical span tree
//!   exportable to Chrome trace-event JSON (`--chrome-trace`). Plan- and
//!   machine-dependent by nature, written to separate sidecars and never
//!   mixed into the deterministic registry or ledger.
//! - [`Telemetry`]: the **live service** half — concurrent atomic
//!   counters, gauges, log₂ latency histograms and per-second ring-buffer
//!   time series for the gateway, rendered as Prometheus text exposition
//!   or a JSON snapshot. Wall-clock-dependent by definition and therefore
//!   never written into any byte-identical artifact.
//!
//! [`Log2Histogram`] lives here (re-exported by `bb-engine` for
//! compatibility) because both halves and the engine's sketch layer
//! share its exact-integer-count log₂ buckets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod intern;
pub mod registry;
pub mod span;
pub mod telemetry;

pub use event::{Event, EventBuilder, EventLog, EventTail, Value};
pub use hist::Log2Histogram;
pub use intern::intern;
pub use registry::Registry;
pub use span::{SpanGuard, SpanNode, SpanStats, Timings};
pub use telemetry::{
    AtomicLog2Histogram, Clock, Counter, FakeClock, Gauge, MetricId, SystemClock, Telemetry,
    TimeSeries,
};
