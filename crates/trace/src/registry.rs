//! The mergeable metrics registry.
//!
//! A [`Registry`] is a bag of named `u64` counters plus named
//! [`Log2Histogram`]s. Both merge by exact integer addition, so folding
//! per-shard registries **in shard index order** yields the same bytes
//! for any `(shards, threads)` plan — the registry obeys the same
//! partition-invariance contract as the engine's streaming sketches and
//! its JSON serialisation is pinned by `tests/shard_invariance.rs`.
//!
//! Only *data events* belong here: wraps detected, resets clamped,
//! samples dropped — things that are pure functions of `(seed, user
//! index)`. Wall-clock observables (span timings, steal counts) are
//! plan-dependent by nature and live in [`crate::Timings`] instead, so
//! they can never leak into the deterministic output.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Log2Histogram;

/// Named counters + named log₂ histograms, merged by addition.
///
/// Metric names are `&'static str` by design: every name is a literal at
/// an instrumentation site, lookups avoid allocation, and the full name
/// set is auditable by grepping the workspace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Log2Histogram>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1 to `name`.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Add `delta` to `name` (creating it at zero first).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record `value` (relative to `base`) into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: f64, base: f64) {
        self.hists.entry(name).or_default().push(value, base);
    }

    /// Fold a locally-accumulated histogram into histogram `name`.
    ///
    /// Hot loops should fill a local [`Log2Histogram`] and flush it here
    /// once, rather than paying a map lookup per observation.
    pub fn merge_hist(&mut self, name: &'static str, hist: Log2Histogram) {
        self.hists.entry(name).or_default().merge(hist);
    }

    /// Histogram `name`, if any value was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.hists.get(name)
    }

    /// `(name, value)` over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// `(name, histogram)` over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Log2Histogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Fold `other` into `self` by adding counters and histogram buckets.
    ///
    /// Exact integer addition: associative, commutative, and therefore
    /// invariant under any partition of the underlying event stream.
    pub fn merge(&mut self, other: Self) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
    }

    /// Deterministic pretty-printed JSON: keys in name order, histogram
    /// buckets in ascending bucket order, two-space indent, trailing
    /// newline. Byte-identical for equal registries — this is the
    /// `--metrics` file format pinned by the shard-invariance tests.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{name}\": {v}");
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"nonpositive\": {}, \"buckets\": [",
                h.nonpositive()
            );
            let mut first_bucket = true;
            for (k, c) in h.buckets() {
                if !first_bucket {
                    out.push_str(", ");
                }
                first_bucket = false;
                let _ = write!(out, "[{k}, {c}]");
            }
            out.push_str("]}");
        }
        if !self.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(offset: u64) -> Registry {
        let mut r = Registry::new();
        r.add("wraps", 3 + offset);
        r.inc("resets");
        r.observe("gap_slots", 4.0 + offset as f64, 1.0);
        r
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let r = sample(0);
        assert_eq!(r.counter("wraps"), 3);
        assert_eq!(r.counter("resets"), 1);
        assert_eq!(r.counter("never_touched"), 0);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = sample(0);
        a.merge(sample(10));
        assert_eq!(a.counter("wraps"), 16);
        assert_eq!(a.counter("resets"), 2);
        assert_eq!(a.histogram("gap_slots").unwrap().count(), 2);
    }

    #[test]
    fn merge_order_does_not_change_the_json() {
        let (a, b) = (sample(0), sample(7));
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let mut r = Registry::new();
        r.add("zeta", 1);
        r.add("alpha", 2);
        let json = r.to_json();
        let alpha = json.find("alpha").unwrap();
        let zeta = json.find("zeta").unwrap();
        assert!(alpha < zeta, "keys must serialise in name order");
        assert!(json.ends_with("}\n"));
        // An empty registry still renders both sections.
        assert_eq!(
            Registry::new().to_json(),
            "{\n  \"counters\": {},\n  \"histograms\": {}\n}\n"
        );
    }
}
