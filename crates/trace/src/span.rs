//! Lightweight span timing — the *non*-deterministic side of tracing.
//!
//! [`Timings`] records named wall-clock spans two ways at once:
//!
//! - **Aggregates** per span name: call count, total duration, and a log₂
//!   histogram of microsecond durations (as before).
//! - A **hierarchical span tree**: [`Timings::enter`] returns an RAII
//!   [`SpanGuard`] whose children ([`SpanGuard::child`]) nest under it;
//!   every closed span becomes a [`SpanNode`] with its depth and start/
//!   duration offsets, exportable as Chrome trace-event JSON
//!   ([`Timings::to_chrome_trace`]) loadable in Perfetto or
//!   `chrome://tracing`.
//!
//! It is kept deliberately separate from [`crate::Registry`] and
//! [`crate::EventLog`]: wall time is a property of the machine and the
//! `(shards, threads)` plan, never of the simulated data, so it must not
//! be able to contaminate the byte-identical `--metrics`/`--ledger`
//! output. The `reproduce` CLI writes it to `.runtime.json` /
//! `--chrome-trace` sidecars instead.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Accumulated statistics for one named span.
#[derive(Clone, Debug, Default)]
pub struct SpanStats {
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall time across all runs.
    pub total: Duration,
    /// Log₂ histogram of per-run durations in microseconds (base 1 µs).
    pub micros: crate::Log2Histogram,
}

/// One closed span in the tree: where it sat and how long it ran.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// Nesting depth at open time (0 = root).
    pub depth: usize,
    /// Start offset from the `Timings` epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// An open span on the stack, closed by [`Timings::end`].
#[derive(Clone, Debug)]
struct OpenSpan {
    name: &'static str,
    start: Instant,
    depth: usize,
}

/// Named wall-clock spans: aggregates plus a hierarchical span tree.
#[derive(Clone, Debug, Default)]
pub struct Timings {
    spans: BTreeMap<&'static str, SpanStats>,
    /// Instant of the first `begin`; node offsets are relative to it.
    epoch: Option<Instant>,
    stack: Vec<OpenSpan>,
    nodes: Vec<SpanNode>,
}

/// RAII guard for a span opened with [`Timings::enter`]; the span closes
/// when the guard drops. Open nested children with [`SpanGuard::child`].
pub struct SpanGuard<'a> {
    t: &'a mut Timings,
}

impl SpanGuard<'_> {
    /// Open a child span nested under this one.
    pub fn child(&mut self, name: &'static str) -> SpanGuard<'_> {
        self.t.begin(name);
        SpanGuard { t: self.t }
    }

    /// Time `f` as a child span of this one.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.t.time(name, f)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.t.end();
    }
}

impl Timings {
    /// Empty set of spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open span `name`; pair with [`Timings::end`]. Prefer
    /// [`Timings::enter`], which cannot be left unbalanced.
    pub fn begin(&mut self, name: &'static str) {
        let now = Instant::now();
        let epoch = *self.epoch.get_or_insert(now);
        // `now` can never precede an epoch taken at or before it.
        debug_assert!(now >= epoch);
        self.stack.push(OpenSpan {
            name,
            start: now,
            depth: self.stack.len(),
        });
    }

    /// Close the innermost open span, recording both its aggregate stats
    /// and its tree node. A stray `end` with nothing open is ignored.
    pub fn end(&mut self) {
        let Some(open) = self.stack.pop() else {
            debug_assert!(false, "Timings::end with no open span");
            return;
        };
        let elapsed = open.start.elapsed();
        self.record(open.name, elapsed);
        let epoch = self.epoch.expect("epoch set by begin");
        self.nodes.push(SpanNode {
            name: open.name,
            depth: open.depth,
            start_us: open.start.duration_since(epoch).as_micros() as u64,
            dur_us: elapsed.as_micros() as u64,
        });
    }

    /// Open span `name`, returning a guard that closes it on drop.
    pub fn enter(&mut self, name: &'static str) -> SpanGuard<'_> {
        self.begin(name);
        SpanGuard { t: self }
    }

    /// Time `f` under span `name`, returning its result. The span lands
    /// in the tree, nested under whatever is currently open.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.begin(name);
        let out = f();
        self.end();
        out
    }

    /// Record an externally-measured duration under span `name`. This
    /// only feeds the aggregates, not the tree: the measurement happened
    /// elsewhere (e.g. a shard worker), so it has no position here.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        let s = self.spans.entry(name).or_default();
        s.count += 1;
        s.total += elapsed;
        s.micros.push(elapsed.as_secs_f64() * 1e6, 1.0);
    }

    /// Stats for span `name`, if it ever ran.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// `(name, stats)` in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &SpanStats)> + '_ {
        self.spans.iter().map(|(&k, v)| (k, v))
    }

    /// Closed tree nodes in close order (children precede parents).
    pub fn nodes(&self) -> impl Iterator<Item = &SpanNode> + '_ {
        self.nodes.iter()
    }

    /// Fold `other` into `self`: aggregates add and histograms merge;
    /// `other`'s tree nodes are rebased from its epoch onto ours so the
    /// merged timeline stays on one clock.
    pub fn merge(&mut self, other: Self) {
        for (name, stats) in other.spans {
            let s = self.spans.entry(name).or_default();
            s.count += stats.count;
            s.total += stats.total;
            s.micros.merge(stats.micros);
        }
        match (self.epoch, other.epoch) {
            (_, None) => {}
            (None, Some(epoch)) => {
                self.epoch = Some(epoch);
                self.nodes.extend(other.nodes);
            }
            (Some(ours), Some(theirs)) => {
                let delta: i128 = match theirs.checked_duration_since(ours) {
                    Some(ahead) => ahead.as_micros() as i128,
                    None => -(ours.duration_since(theirs).as_micros() as i128),
                };
                for mut node in other.nodes {
                    let ts = node.start_us as i128 + delta;
                    node.start_us = ts.max(0) as u64;
                    self.nodes.push(node);
                }
            }
        }
    }

    /// Pretty JSON for the runtime sidecar: per-span count, total, and
    /// the µs log₂ histogram (sorted buckets). Keys are sorted, but the
    /// *values* are wall-clock measurements — this output is expected to
    /// differ run to run and is excluded from invariance guarantees.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"spans\": {");
        let mut first = true;
        for (name, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"count\": {}, \"total_us\": {}, \
                 \"micros_log2\": {{\"nonpositive\": {}, \"buckets\": [",
                s.count,
                s.total.as_micros(),
                s.micros.nonpositive()
            );
            let mut first_bucket = true;
            for (bucket, count) in s.micros.buckets() {
                if !first_bucket {
                    out.push_str(", ");
                }
                first_bucket = false;
                let _ = write!(out, "[{bucket}, {count}]");
            }
            out.push_str("]}}");
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Chrome trace-event JSON: an array of complete (`"ph": "X"`)
    /// events with µs `ts`/`dur`, loadable in Perfetto or
    /// `chrome://tracing`. Nesting is reconstructed by the viewer from
    /// interval containment on the single `pid`/`tid`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push('[');
        let mut first = true;
        for node in &self.nodes {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n  {\"name\": ");
            // Span names are `&'static str` identifiers; escape anyway.
            crate::event::write_json_string(&mut out, node.name);
            let _ = write!(
                out,
                ", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": 1}}",
                node.start_us, node.dur_us
            );
        }
        if !self.nodes.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_count_and_duration() {
        let mut t = Timings::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        t.record("work", Duration::from_micros(250));
        let s = t.span("work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.total >= Duration::from_micros(250));
        assert_eq!(s.micros.count(), 2);
    }

    #[test]
    fn merge_adds_span_stats() {
        let mut a = Timings::new();
        a.record("merge", Duration::from_micros(10));
        let mut b = Timings::new();
        b.record("merge", Duration::from_micros(20));
        b.record("other", Duration::from_micros(5));
        a.merge(b);
        assert_eq!(a.span("merge").unwrap().count, 2);
        assert_eq!(a.span("merge").unwrap().total, Duration::from_micros(30));
        assert_eq!(a.spans().count(), 2);
    }

    #[test]
    fn to_json_serialises_the_micros_histogram() {
        // Regression: the per-span log₂ histogram used to be collected
        // and then silently dropped by the serialiser.
        let mut t = Timings::new();
        t.record("phase", Duration::from_micros(3));
        t.record("phase", Duration::from_micros(100));
        let json = t.to_json();
        assert!(json.contains("\"micros_log2\""), "{json}");
        // 3 µs → bucket 2 ((2, 4]); 100 µs → bucket 7 ((64, 128]).
        assert!(json.contains("\"buckets\": [[2, 1], [7, 1]]"), "{json}");
        assert!(json.contains("\"nonpositive\": 0"), "{json}");
    }

    #[test]
    fn guards_build_a_nested_tree() {
        let mut t = Timings::new();
        {
            let mut outer = t.enter("outer");
            {
                let mut mid = outer.child("mid");
                mid.time("inner", || std::thread::sleep(Duration::from_micros(50)));
            }
        }
        // Close order: innermost first.
        let nodes: Vec<_> = t.nodes().map(|n| (n.name, n.depth)).collect();
        assert_eq!(nodes, [("inner", 2), ("mid", 1), ("outer", 0)]);
        // Parents contain their children in time.
        let by_name = |name: &str| t.nodes().find(|n| n.name == name).unwrap().clone();
        let (inner, mid, outer) = (by_name("inner"), by_name("mid"), by_name("outer"));
        assert!(outer.start_us <= mid.start_us);
        assert!(mid.start_us <= inner.start_us);
        assert!(outer.start_us + outer.dur_us >= mid.start_us + mid.dur_us);
        assert!(mid.start_us + mid.dur_us >= inner.start_us + inner.dur_us);
        // Aggregates saw all three spans too.
        assert_eq!(t.spans().count(), 3);
        assert!(inner.dur_us >= 50);
    }

    #[test]
    fn chrome_trace_emits_complete_events() {
        let mut t = Timings::new();
        t.time("alpha", || ());
        t.time("beta", || ());
        let trace = t.to_chrome_trace();
        assert!(trace.starts_with('['), "{trace}");
        assert!(trace.trim_end().ends_with(']'), "{trace}");
        assert_eq!(trace.matches("\"ph\": \"X\"").count(), 2, "{trace}");
        assert!(trace.contains("\"name\": \"alpha\""), "{trace}");
        assert!(trace.contains("\"ts\": "), "{trace}");
        assert!(trace.contains("\"dur\": "), "{trace}");
        assert!(trace.contains("\"pid\": 1, \"tid\": 1"), "{trace}");
    }

    #[test]
    fn merge_rebases_node_offsets_onto_one_clock() {
        let mut a = Timings::new();
        a.time("first", || std::thread::sleep(Duration::from_micros(100)));
        let mut b = Timings::new();
        b.time("second", || ());
        a.merge(b);
        let names: Vec<_> = a.nodes().map(|n| n.name).collect();
        assert_eq!(names, ["first", "second"]);
        // `b` began after `a`'s epoch, so its rebased offset must sit
        // at or after the end of `a`'s only span.
        let first = a.nodes().next().unwrap().clone();
        let second = a.nodes().nth(1).unwrap().clone();
        assert!(second.start_us >= first.start_us + first.dur_us);
    }
}
