//! Lightweight span timing — the *non*-deterministic side of tracing.
//!
//! [`Timings`] records named wall-clock spans: per-span call count,
//! total duration, and a log₂ histogram of microsecond durations. It is
//! kept deliberately separate from [`crate::Registry`]: wall time is a
//! property of the machine and the `(shards, threads)` plan, never of
//! the simulated data, so it must not be able to contaminate the
//! byte-identical `--metrics` output. The `reproduce` CLI writes it to
//! a `.runtime.json` sidecar instead.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Accumulated statistics for one named span.
#[derive(Clone, Debug, Default)]
pub struct SpanStats {
    /// Number of times the span ran.
    pub count: u64,
    /// Total wall time across all runs.
    pub total: Duration,
    /// Log₂ histogram of per-run durations in microseconds (base 1 µs).
    pub micros: crate::Log2Histogram,
}

/// Named wall-clock spans: count, total duration, µs histogram.
#[derive(Clone, Debug, Default)]
pub struct Timings {
    spans: BTreeMap<&'static str, SpanStats>,
}

impl Timings {
    /// Empty set of spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f` under span `name`, returning its result.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Record an externally-measured duration under span `name`.
    pub fn record(&mut self, name: &'static str, elapsed: Duration) {
        let s = self.spans.entry(name).or_default();
        s.count += 1;
        s.total += elapsed;
        s.micros.push(elapsed.as_secs_f64() * 1e6, 1.0);
    }

    /// Stats for span `name`, if it ever ran.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// `(name, stats)` in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &SpanStats)> + '_ {
        self.spans.iter().map(|(&k, v)| (k, v))
    }

    /// Fold `other` into `self` (counts and totals add, histograms merge).
    pub fn merge(&mut self, other: Self) {
        for (name, stats) in other.spans {
            let s = self.spans.entry(name).or_default();
            s.count += stats.count;
            s.total += stats.total;
            s.micros.merge(stats.micros);
        }
    }

    /// Pretty JSON for the runtime sidecar. Keys are sorted, but the
    /// *values* are wall-clock measurements — this output is expected to
    /// differ run to run and is excluded from invariance guarantees.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"spans\": {");
        let mut first = true;
        for (name, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"count\": {}, \"total_us\": {}}}",
                s.count,
                s.total.as_micros()
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_count_and_duration() {
        let mut t = Timings::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        t.record("work", Duration::from_micros(250));
        let s = t.span("work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.total >= Duration::from_micros(250));
        assert_eq!(s.micros.count(), 2);
    }

    #[test]
    fn merge_adds_span_stats() {
        let mut a = Timings::new();
        a.record("merge", Duration::from_micros(10));
        let mut b = Timings::new();
        b.record("merge", Duration::from_micros(20));
        b.record("other", Duration::from_micros(5));
        a.merge(b);
        assert_eq!(a.span("merge").unwrap().count, 2);
        assert_eq!(a.span("merge").unwrap().total, Duration::from_micros(30));
        assert_eq!(a.spans().count(), 2);
    }
}
