//! # bb-market — retail broadband markets
//!
//! Models the paper's third dataset: the Google "Policy by the Numbers"
//! survey of 1,523 retail plans across 99 countries (§2.1), and the two
//! derived market features the study treats as causal variables:
//!
//! * the **price of broadband access** — "the monthly cost (USD PPP) of the
//!   cheapest service with a capacity of at least 1 Mbps" (§5);
//! * the **cost of increasing capacity** — the slope of an OLS fit of
//!   monthly price on capacity, used only "where price and capacity are at
//!   least moderately correlated (r > 0.4)" (§6).
//!
//! [`plan`] defines individual retail plans, [`catalog`] a country's plan
//! ladder and the derived features, [`survey`] the cross-country collection
//! with the Table 5 regional aggregation, and [`archetype`] a generator
//! that produces realistic catalogues for the 99 country archetypes of the
//! synthetic world (the substitution DESIGN.md documents).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod catalog;
pub mod plan;
pub mod survey;

pub use archetype::MarketArchetype;
pub use catalog::PlanCatalog;
pub use plan::{Plan, Technology};
pub use survey::MarketSurvey;
