//! Retail broadband plans.

use bb_types::{Bandwidth, MoneyPpp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Access technology of a plan.
///
/// The paper notes that "whether or not a service is wireless or has a
/// monthly traffic cap would also affect the relationship between price and
/// capacity" (§6), and identifies satellite/wireless operators behind the
/// high-latency and high-loss tails of its population (§2.2) — so the plan
/// model carries the technology explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// Digital subscriber line.
    Dsl,
    /// Cable (DOCSIS).
    Cable,
    /// Fibre to the home/premises.
    Fiber,
    /// Terrestrial wireless (WiMAX, cellular).
    Wireless,
    /// Satellite.
    Satellite,
}

impl Technology {
    /// True for technologies whose physical layer inflates latency and loss
    /// (the satellite/wireless tail of Figs. 1b and 1c).
    pub fn is_impaired(self) -> bool {
        matches!(self, Technology::Wireless | Technology::Satellite)
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technology::Dsl => "DSL",
            Technology::Cable => "cable",
            Technology::Fiber => "fiber",
            Technology::Wireless => "wireless",
            Technology::Satellite => "satellite",
        };
        f.write_str(s)
    }
}

/// One retail broadband plan as carried by the survey: advertised download
/// and upload rates, monthly price (already PPP-normalised), optional
/// monthly traffic cap, technology, and whether the line is dedicated.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Advertised download capacity.
    pub download: Bandwidth,
    /// Advertised upload capacity.
    pub upload: Bandwidth,
    /// Monthly price in PPP-adjusted USD.
    pub monthly_price: MoneyPpp,
    /// Monthly traffic cap in gigabytes, if any.
    pub cap_gb: Option<f64>,
    /// Access technology.
    pub technology: Technology,
    /// Dedicated (non-shared) line — the Afghanistan example of §6, where a
    /// dedicated DSL line is slower *and* more expensive than alternatives.
    pub dedicated: bool,
}

impl Plan {
    /// Convenience constructor for an ordinary shared, uncapped plan.
    pub fn simple(download_mbps: f64, price_usd_ppp: f64, technology: Technology) -> Plan {
        Plan {
            download: Bandwidth::from_mbps(download_mbps),
            upload: Bandwidth::from_mbps((download_mbps / 8.0).max(0.1)),
            monthly_price: MoneyPpp::from_usd(price_usd_ppp),
            cap_gb: None,
            technology,
            dedicated: false,
        }
    }

    /// Price per Mbps of download capacity.
    pub fn price_per_mbps(&self) -> MoneyPpp {
        let mbps = self.download.mbps();
        assert!(mbps > 0.0, "plan with zero capacity");
        self.monthly_price / mbps
    }

    /// True when the plan delivers at least `capacity`.
    pub fn at_least(&self, capacity: Bandwidth) -> bool {
        self.download >= capacity
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}/mo",
            self.technology, self.download, self.monthly_price
        )?;
        if let Some(cap) = self.cap_gb {
            write!(f, " (cap {cap} GB)")?;
        }
        if self.dedicated {
            write!(f, " [dedicated]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_per_mbps() {
        let p = Plan::simple(10.0, 50.0, Technology::Cable);
        assert_eq!(p.price_per_mbps(), MoneyPpp::from_usd(5.0));
    }

    #[test]
    fn at_least_capacity() {
        let p = Plan::simple(4.0, 30.0, Technology::Dsl);
        assert!(p.at_least(Bandwidth::from_mbps(1.0)));
        assert!(p.at_least(Bandwidth::from_mbps(4.0)));
        assert!(!p.at_least(Bandwidth::from_mbps(4.1)));
    }

    #[test]
    fn impaired_technologies() {
        assert!(Technology::Satellite.is_impaired());
        assert!(Technology::Wireless.is_impaired());
        assert!(!Technology::Fiber.is_impaired());
        assert!(!Technology::Dsl.is_impaired());
    }

    #[test]
    fn display_includes_cap_and_dedicated() {
        let mut p = Plan::simple(1.0, 150.0, Technology::Dsl);
        p.cap_gb = Some(20.0);
        p.dedicated = true;
        let s = p.to_string();
        assert!(s.contains("cap 20 GB"), "{s}");
        assert!(s.contains("dedicated"), "{s}");
    }
}
