//! Generative market archetypes.
//!
//! The real study used the Google retail-plan survey; that dataset is no
//! longer distributed, so (per the substitution rule in DESIGN.md) we
//! generate catalogues from parameterised *archetypes*. An archetype
//! captures the handful of degrees of freedom that drive every analysis in
//! the paper: how much the entry-level service costs, how steeply price
//! rises with capacity, how far up the tier ladder goes, and how noisy /
//! pathological the pricing is.
//!
//! The defaults below are chosen so that the generated 99-country survey
//! matches the published aggregates: upgrade costs under $0.10/Mbps in
//! developed Asia, ~$0.50 in North America, above $10 for three quarters of
//! Africa (Table 5), and a correlation census with roughly 66% of markets
//! above r = 0.8 and 81% above r = 0.4 (§6).

use crate::catalog::PlanCatalog;
use crate::plan::{Plan, Technology};
use bb_types::{Bandwidth, Country, MoneyPpp, Region};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters describing one country's retail broadband market.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MarketArchetype {
    /// Country this archetype instantiates.
    pub country: Country,
    /// Region, for the Table 5 aggregation.
    pub region: Region,
    /// Target monthly price of the cheapest ≥ 1 Mbps plan (USD PPP).
    pub access_price: f64,
    /// Target cost of +1 Mbps of capacity (USD PPP per month).
    pub cost_per_mbps: f64,
    /// Slowest advertised tier (Mbps).
    pub min_tier_mbps: f64,
    /// Fastest advertised tier (Mbps).
    pub max_tier_mbps: f64,
    /// Number of distinct plans to generate (≥ 2).
    pub n_plans: usize,
    /// Log-space sigma of multiplicative price noise. Around 0.05 produces
    /// the strongly-correlated markets of §6; 0.4+ produces the weakly
    /// correlated tail.
    pub price_noise: f64,
    /// Fraction of plans sold over impaired (wireless/satellite) links.
    pub wireless_share: f64,
    /// Fraction of plans carrying a monthly traffic cap.
    pub capped_share: f64,
    /// Cap size in GB per Mbps of plan capacity (market convention;
    /// ~80 GB/Mbps makes caps bind only for heavy users, as in most real
    /// 2011–13 markets).
    pub cap_gb_per_mbps: f64,
    /// Add a slow-but-expensive dedicated line (the Afghanistan case of
    /// §6), which depresses the price~capacity correlation.
    pub dedicated_outlier: bool,
}

impl MarketArchetype {
    /// A sane developed-market baseline to customise from.
    pub fn developed(country: Country, region: Region) -> Self {
        MarketArchetype {
            country,
            region,
            access_price: 20.0,
            cost_per_mbps: 0.6,
            min_tier_mbps: 1.0,
            max_tier_mbps: 100.0,
            n_plans: 12,
            price_noise: 0.05,
            wireless_share: 0.05,
            capped_share: 0.1,
            cap_gb_per_mbps: 80.0,
            dedicated_outlier: false,
        }
    }

    /// A developing-market baseline: expensive access, steep upgrade costs,
    /// a short tier ladder, noisier pricing.
    pub fn developing(country: Country, region: Region) -> Self {
        MarketArchetype {
            country,
            region,
            access_price: 70.0,
            cost_per_mbps: 12.0,
            min_tier_mbps: 0.25,
            max_tier_mbps: 8.0,
            n_plans: 6,
            price_noise: 0.15,
            wireless_share: 0.35,
            capped_share: 0.5,
            cap_gb_per_mbps: 80.0,
            dedicated_outlier: false,
        }
    }

    /// The archetype as it would look `years` later under organic market
    /// evolution: entry prices drift down a few percent a year, the cost
    /// per megabit falls fast (technology), and the top of the ladder
    /// grows. Negative `years` rewinds. This powers the §10 extension on
    /// national broadband plans ("it may be possible to explore the
    /// potential benefits of national broadband deployment plans").
    pub fn evolved(&self, years: i32) -> MarketArchetype {
        let mut m = self.clone();
        m.access_price = (self.access_price * 0.94f64.powi(years)).max(1.0);
        m.cost_per_mbps = (self.cost_per_mbps * 0.80f64.powi(years)).max(0.01);
        m.max_tier_mbps = self.max_tier_mbps * 1.35f64.powi(years);
        // Ladders gain a rung roughly every other year.
        if years > 0 {
            m.n_plans = (self.n_plans + years as usize / 2).min(20);
        }
        m
    }

    /// A subsidised variant: a national plan that halves the entry price
    /// and guarantees a service floor of `floor_mbps` (regulated entry
    /// tier).
    pub fn subsidised(&self, floor_mbps: f64) -> MarketArchetype {
        let mut m = self.clone();
        m.access_price = (self.access_price * 0.5).max(1.0);
        m.min_tier_mbps = m.min_tier_mbps.max(floor_mbps);
        if m.max_tier_mbps <= m.min_tier_mbps {
            m.max_tier_mbps = m.min_tier_mbps * 8.0;
        }
        m
    }

    /// Instantiate a catalogue from this archetype.
    ///
    /// Tier capacities are geometrically spaced from `min_tier_mbps` to
    /// `max_tier_mbps` and snapped to "marketing" values (one significant
    /// digit, the way real plans are advertised). Prices follow
    /// `access_price + cost_per_mbps · (capacity − 1 Mbps)` with
    /// multiplicative log-normal noise.
    pub fn instantiate<R: Rng + ?Sized>(&self, rng: &mut R) -> PlanCatalog {
        assert!(self.n_plans >= 2, "an archetype needs at least two plans");
        assert!(
            self.max_tier_mbps > self.min_tier_mbps,
            "tier ladder is empty"
        );
        let ratio = (self.max_tier_mbps / self.min_tier_mbps).powf(1.0 / (self.n_plans - 1) as f64);
        let mut plans = Vec::with_capacity(self.n_plans + 1);
        for i in 0..self.n_plans {
            let raw_mbps = self.min_tier_mbps * ratio.powi(i as i32);
            let mbps = snap_to_marketing_tier(raw_mbps);
            let base = self.access_price
                + self.cost_per_mbps * (mbps - 1.0).max(0.0)
                + if mbps < 1.0 {
                    // Sub-megabit plans discount off the access price.
                    -self.access_price * (1.0 - mbps) * 0.4
                } else {
                    0.0
                };
            let noise = (rng.gen::<f64>() - 0.5) * 2.0; // uniform in [-1, 1)
            let price = (base * (self.price_noise * noise).exp()).max(1.0);
            let technology = if rng.gen::<f64>() < self.wireless_share {
                Technology::Wireless
            } else if mbps >= 50.0 {
                Technology::Fiber
            } else if mbps >= 10.0 {
                Technology::Cable
            } else {
                Technology::Dsl
            };
            let cap_gb = if rng.gen::<f64>() < self.capped_share {
                // Caps sized so that (by default) only heavy users feel
                // them — real-world caps bind a minority (Chetty et al.).
                Some(
                    (mbps * self.cap_gb_per_mbps)
                        .clamp(self.cap_gb_per_mbps / 2.0, 25.0 * self.cap_gb_per_mbps),
                )
            } else {
                None
            };
            plans.push(Plan {
                download: Bandwidth::from_mbps(mbps),
                upload: Bandwidth::from_mbps((mbps / 8.0).max(0.1)),
                monthly_price: MoneyPpp::from_usd(price),
                cap_gb,
                technology,
                dedicated: false,
            });
        }
        if self.dedicated_outlier {
            // A dedicated line: slow, very expensive — §6's correlation
            // killer.
            plans.push(Plan {
                download: Bandwidth::from_mbps(self.min_tier_mbps.max(0.5)),
                upload: Bandwidth::from_mbps(self.min_tier_mbps.max(0.5)),
                monthly_price: MoneyPpp::from_usd(
                    self.access_price + self.cost_per_mbps * self.max_tier_mbps * 2.0,
                ),
                cap_gb: None,
                technology: Technology::Dsl,
                dedicated: true,
            });
        }
        PlanCatalog::new(self.country, plans)
    }
}

/// Round a capacity to a value an ISP would actually advertise: one or two
/// leading digits from the set a marketing department would pick.
fn snap_to_marketing_tier(mbps: f64) -> f64 {
    const LADDER: [f64; 28] = [
        0.128, 0.25, 0.5, 0.768, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 15.0, 16.0,
        18.0, 20.0, 25.0, 30.0, 40.0, 50.0, 60.0, 75.0, 100.0, 150.0, 200.0, 300.0,
    ];
    let mut best = LADDER[0];
    let mut best_d = f64::INFINITY;
    for &l in &LADDER {
        let d = (l.ln() - mbps.ln()).abs();
        if d < best_d {
            best_d = d;
            best = l;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(2014)
    }

    #[test]
    fn developed_market_hits_targets() {
        let a = MarketArchetype::developed(Country::new("US"), Region::NorthAmerica);
        let cat = a.instantiate(&mut rng());
        let access = cat.price_of_access().unwrap().usd();
        assert!(
            (access / 20.0 - 1.0).abs() < 0.5,
            "access price {access} should be near $20"
        );
        let cost = cat.upgrade_cost().expect("clean market is correlated");
        assert!(
            cost.usd() > 0.3 && cost.usd() < 1.2,
            "upgrade cost {cost} should be near $0.60"
        );
    }

    #[test]
    fn developing_market_is_expensive() {
        let a = MarketArchetype::developing(Country::new("GH"), Region::Africa);
        let cat = a.instantiate(&mut rng());
        let access = cat.price_of_access().unwrap().usd();
        assert!(access > 50.0, "access price {access}");
        let cost = cat.upgrade_cost().unwrap();
        assert!(cost.usd() > 5.0, "upgrade cost {cost}");
        assert!(cat.fastest().download <= Bandwidth::from_mbps(10.0));
    }

    #[test]
    fn dedicated_outlier_depresses_correlation() {
        let mut clean = MarketArchetype::developing(Country::new("AF"), Region::AsiaDeveloping);
        clean.n_plans = 5;
        let mut outlier = clean.clone();
        outlier.dedicated_outlier = true;
        let r_clean = clean
            .instantiate(&mut rng())
            .price_capacity_correlation()
            .unwrap();
        let r_outlier = outlier
            .instantiate(&mut rng())
            .price_capacity_correlation()
            .unwrap();
        assert!(r_outlier < r_clean, "{r_outlier} !< {r_clean}");
    }

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        let a = MarketArchetype::developed(Country::new("DE"), Region::Europe);
        let c1 = a.instantiate(&mut rng());
        let c2 = a.instantiate(&mut rng());
        assert_eq!(c1.plans, c2.plans);
    }

    #[test]
    fn marketing_tiers_look_real() {
        assert_eq!(snap_to_marketing_tier(0.9), 1.0);
        assert_eq!(snap_to_marketing_tier(17.0), 18.0);
        assert_eq!(snap_to_marketing_tier(90.0), 100.0);
        assert_eq!(snap_to_marketing_tier(0.4), 0.5);
    }

    #[test]
    fn tier_ladder_spans_requested_range() {
        let a = MarketArchetype::developed(Country::new("JP"), Region::AsiaDeveloped);
        let cat = a.instantiate(&mut rng());
        let ladder = cat.capacity_ladder();
        assert!(ladder.first().unwrap().mbps() <= 2.0);
        assert!(ladder.last().unwrap().mbps() >= 75.0);
    }

    #[test]
    fn evolution_moves_prices_down_and_tiers_up() {
        let base = MarketArchetype::developing(Country::new("GH"), Region::Africa);
        let later = base.evolved(3);
        assert!(later.access_price < base.access_price);
        assert!(later.cost_per_mbps < base.cost_per_mbps * 0.6);
        assert!(later.max_tier_mbps > base.max_tier_mbps * 2.0);
        // Rewinding goes the other way.
        let earlier = base.evolved(-2);
        assert!(earlier.access_price > base.access_price);
        assert!(earlier.max_tier_mbps < base.max_tier_mbps);
    }

    #[test]
    fn subsidy_halves_entry_and_floors_the_ladder() {
        let base = MarketArchetype::developing(Country::new("BW"), Region::Africa);
        let plan = base.subsidised(1.0);
        assert!((plan.access_price - base.access_price * 0.5).abs() < 1e-9);
        assert!(plan.min_tier_mbps >= 1.0);
        assert!(plan.max_tier_mbps > plan.min_tier_mbps);
    }

    #[test]
    #[should_panic(expected = "at least two plans")]
    fn degenerate_archetype_rejected() {
        let mut a = MarketArchetype::developed(Country::new("US"), Region::NorthAmerica);
        a.n_plans = 1;
        let _ = a.instantiate(&mut rng());
    }
}
