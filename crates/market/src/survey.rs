//! The cross-country market survey and its aggregations.
//!
//! [`MarketSurvey`] is the analogue of the Google "Policy by the Numbers"
//! compilation: one catalogue per country, tagged with its region. It
//! answers the three market-level questions of §6:
//!
//! * the distribution of upgrade costs across countries (Fig. 10);
//! * the share of countries per region whose upgrade cost exceeds $1, $5
//!   and $10 per Mbps (Table 5);
//! * the correlation census ("in the majority of these markets (66%) there
//!   is a strong correlation (> 0.8) … and in 81% there is at least
//!   moderate correlation (> 0.4)").

use crate::catalog::PlanCatalog;
use bb_types::{Country, MoneyPpp, Region};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One country's entry in the survey.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MarketEntry {
    /// Region, for Table 5 aggregation.
    pub region: Region,
    /// The country's plan catalogue.
    pub catalog: PlanCatalog,
}

/// A survey of retail broadband markets across countries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MarketSurvey {
    entries: BTreeMap<Country, MarketEntry>,
}

/// One row of Table 5: the share of a region's countries whose upgrade
/// cost exceeds each threshold.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionCostRow {
    /// Region label (includes the synthetic "Asia (all)" aggregate).
    pub region: String,
    /// Number of countries in the region with a usable upgrade cost.
    pub n_countries: usize,
    /// Share with cost > $1 per Mbps per month.
    pub share_above_1: f64,
    /// Share with cost > $5.
    pub share_above_5: f64,
    /// Share with cost > $10.
    pub share_above_10: f64,
}

/// Result of the §6 correlation census.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorrelationCensus {
    /// Number of markets with a defined correlation.
    pub n_markets: usize,
    /// Share with r > 0.8.
    pub share_strong: f64,
    /// Share with r > 0.4.
    pub share_moderate: f64,
}

impl MarketSurvey {
    /// Create an empty survey.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a country's catalogue.
    pub fn insert(&mut self, region: Region, catalog: PlanCatalog) {
        self.entries
            .insert(catalog.country, MarketEntry { region, catalog });
    }

    /// Number of countries surveyed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no countries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of plans across all catalogues (the survey the paper
    /// uses carries 1,523 plans across 99 countries).
    pub fn n_plans(&self) -> usize {
        self.entries.values().map(|e| e.catalog.len()).sum()
    }

    /// Look up one country's entry.
    pub fn get(&self, country: Country) -> Option<&MarketEntry> {
        self.entries.get(&country)
    }

    /// Iterate over `(country, entry)` in country order.
    pub fn iter(&self) -> impl Iterator<Item = (&Country, &MarketEntry)> {
        self.entries.iter()
    }

    /// Price of access per country (countries without a ≥ 1 Mbps plan are
    /// omitted).
    pub fn access_prices(&self) -> BTreeMap<Country, MoneyPpp> {
        self.entries
            .iter()
            .filter_map(|(c, e)| e.catalog.price_of_access().map(|p| (*c, p)))
            .collect()
    }

    /// Upgrade cost per country (only markets passing the r > 0.4 bar).
    pub fn upgrade_costs(&self) -> BTreeMap<Country, MoneyPpp> {
        self.entries
            .iter()
            .filter_map(|(c, e)| e.catalog.upgrade_cost().map(|u| (*c, u)))
            .collect()
    }

    /// The §6 correlation census over all markets with a defined
    /// price~capacity correlation.
    pub fn correlation_census(&self) -> CorrelationCensus {
        let rs: Vec<f64> = self
            .entries
            .values()
            .filter_map(|e| e.catalog.price_capacity_correlation())
            .collect();
        let n = rs.len();
        let count = |thr: f64| rs.iter().filter(|r| **r > thr).count() as f64;
        CorrelationCensus {
            n_markets: n,
            share_strong: if n == 0 { 0.0 } else { count(0.8) / n as f64 },
            share_moderate: if n == 0 { 0.0 } else { count(0.4) / n as f64 },
        }
    }

    /// Table 5: per-region shares of countries whose upgrade cost exceeds
    /// $1 / $5 / $10 per Mbps, including the "Asia (all)" aggregate row.
    /// Regions with no usable market are omitted.
    pub fn table5(&self) -> Vec<RegionCostRow> {
        let costs = self.upgrade_costs();
        let mut per_region: BTreeMap<Region, Vec<f64>> = BTreeMap::new();
        let mut asia_all: Vec<f64> = Vec::new();
        for (country, cost) in &costs {
            let region = self.entries[country].region;
            per_region.entry(region).or_default().push(cost.usd());
            if region.is_asia() {
                asia_all.push(cost.usd());
            }
        }
        let row = |label: String, vals: &[f64]| {
            let n = vals.len() as f64;
            let share = |thr: f64| vals.iter().filter(|v| **v > thr).count() as f64 / n;
            RegionCostRow {
                region: label,
                n_countries: vals.len(),
                share_above_1: share(1.0),
                share_above_5: share(5.0),
                share_above_10: share(10.0),
            }
        };
        let mut rows = Vec::new();
        for region in Region::ALL {
            if let Some(vals) = per_region.get(&region) {
                rows.push(row(region.name().to_string(), vals));
                // Insert the aggregate row right after the first Asia row,
                // matching the paper's table layout.
                if region == Region::AsiaDeveloped && !asia_all.is_empty() {
                    rows.push(row("Asia (all)".to_string(), &asia_all));
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, Technology};

    fn catalog(code: &str, plans: Vec<Plan>) -> PlanCatalog {
        PlanCatalog::new(Country::new(code), plans)
    }

    fn cheap_market(code: &str) -> PlanCatalog {
        catalog(
            code,
            vec![
                Plan::simple(1.0, 20.0, Technology::Dsl),
                Plan::simple(10.0, 24.0, Technology::Fiber),
                Plan::simple(100.0, 60.0, Technology::Fiber),
            ],
        )
    }

    fn expensive_market(code: &str) -> PlanCatalog {
        catalog(
            code,
            vec![
                Plan::simple(0.5, 80.0, Technology::Dsl),
                Plan::simple(1.0, 100.0, Technology::Dsl),
                Plan::simple(2.0, 150.0, Technology::Dsl),
                Plan::simple(4.0, 250.0, Technology::Wireless),
            ],
        )
    }

    fn survey() -> MarketSurvey {
        let mut s = MarketSurvey::new();
        s.insert(Region::AsiaDeveloped, cheap_market("JP"));
        s.insert(Region::NorthAmerica, cheap_market("US"));
        s.insert(Region::Africa, expensive_market("BW"));
        s.insert(Region::AsiaDeveloping, expensive_market("IN"));
        s
    }

    #[test]
    fn counts() {
        let s = survey();
        assert_eq!(s.len(), 4);
        assert_eq!(s.n_plans(), 14);
        assert!(!s.is_empty());
    }

    #[test]
    fn access_prices_follow_catalogues() {
        let s = survey();
        let prices = s.access_prices();
        assert_eq!(prices[&Country::new("JP")], MoneyPpp::from_usd(20.0));
        assert_eq!(prices[&Country::new("BW")], MoneyPpp::from_usd(100.0));
    }

    #[test]
    fn upgrade_costs_split_by_market() {
        let s = survey();
        let costs = s.upgrade_costs();
        assert!(costs[&Country::new("JP")].usd() < 1.0);
        assert!(costs[&Country::new("BW")].usd() > 10.0);
    }

    #[test]
    fn table5_shares() {
        let s = survey();
        let rows = s.table5();
        let africa = rows.iter().find(|r| r.region == "Africa").unwrap();
        assert_eq!(africa.share_above_10, 1.0);
        let na = rows.iter().find(|r| r.region == "North America").unwrap();
        assert_eq!(na.share_above_1, 0.0);
        // The aggregate row exists and sits between the Asia sub-rows.
        let idx_dev = rows
            .iter()
            .position(|r| r.region == "Asia (developed)")
            .unwrap();
        assert_eq!(rows[idx_dev + 1].region, "Asia (all)");
        let asia_all = &rows[idx_dev + 1];
        assert_eq!(asia_all.n_countries, 2);
        assert_eq!(asia_all.share_above_10, 0.5);
    }

    #[test]
    fn census_counts_thresholds() {
        let s = survey();
        let census = s.correlation_census();
        assert_eq!(census.n_markets, 4);
        assert!(census.share_moderate >= census.share_strong);
        assert!(census.share_strong > 0.0);
    }

    #[test]
    fn empty_survey() {
        let s = MarketSurvey::new();
        assert!(s.is_empty());
        assert!(s.table5().is_empty());
        assert_eq!(s.correlation_census().n_markets, 0);
    }
}
