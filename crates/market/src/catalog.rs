//! A country's plan catalogue and the market features derived from it.

use crate::plan::Plan;
use bb_stats::regression::{ols, OlsFit};
use bb_types::{Bandwidth, Country, MoneyPpp};
use serde::{Deserialize, Serialize};

/// All retail plans observed in one country's market.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlanCatalog {
    /// The country this catalogue describes.
    pub country: Country,
    /// The plans, in no particular order.
    pub plans: Vec<Plan>,
}

impl PlanCatalog {
    /// Create a catalogue.
    ///
    /// # Panics
    /// Panics on an empty plan list — a market with no plans cannot be
    /// analysed and should be excluded upstream, exactly like countries
    /// missing from the Google survey were.
    pub fn new(country: Country, plans: Vec<Plan>) -> Self {
        assert!(!plans.is_empty(), "catalogue for {country} has no plans");
        PlanCatalog { country, plans }
    }

    /// Number of plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Always false (construction rejects empty catalogues).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The cheapest plan offering at least `capacity`, if any.
    pub fn cheapest_at_least(&self, capacity: Bandwidth) -> Option<&Plan> {
        self.plans
            .iter()
            .filter(|p| p.at_least(capacity))
            .min_by_key(|p| p.monthly_price)
    }

    /// The paper's **price of broadband access**: "the monthly cost (USD
    /// PPP) of the cheapest service with a capacity of at least 1 Mbps"
    /// (§5). `None` when the market offers nothing at 1 Mbps.
    pub fn price_of_access(&self) -> Option<MoneyPpp> {
        self.cheapest_at_least(Bandwidth::from_mbps(1.0))
            .map(|p| p.monthly_price)
    }

    /// The plan whose capacity is nearest to `capacity` (log-scale
    /// distance), used to map a median measured capacity onto a "typical"
    /// service, as in Table 4's *Nearest tier* column.
    pub fn nearest_tier(&self, capacity: Bandwidth) -> &Plan {
        self.plans
            .iter()
            .min_by(|a, b| {
                let da = log_distance(a.download, capacity);
                let db = log_distance(b.download, capacity);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("catalogue is non-empty")
    }

    /// OLS fit of monthly price (USD PPP) on download capacity (Mbps)
    /// across all plans. `None` when the fit is undefined (fewer than two
    /// plans, or all plans at one capacity).
    pub fn price_capacity_fit(&self) -> Option<OlsFit> {
        let x: Vec<f64> = self.plans.iter().map(|p| p.download.mbps()).collect();
        let y: Vec<f64> = self.plans.iter().map(|p| p.monthly_price.usd()).collect();
        ols(&x, &y)
    }

    /// The paper's **cost of increasing capacity**: the slope of the
    /// price~capacity regression, in dollars per Mbps per month — but only
    /// "for markets where price and capacity are at least moderately
    /// correlated (r > 0.4)" (§6). Slopes that come out non-positive (a
    /// pathological market) are also rejected.
    pub fn upgrade_cost(&self) -> Option<MoneyPpp> {
        let fit = self.price_capacity_fit()?;
        if !fit.moderately_correlated() || fit.slope <= 0.0 {
            return None;
        }
        Some(MoneyPpp::from_usd(fit.slope))
    }

    /// Pearson correlation between price and capacity across the
    /// catalogue's plans (the §6 census statistic).
    pub fn price_capacity_correlation(&self) -> Option<f64> {
        self.price_capacity_fit().map(|f| f.r)
    }

    /// Capacities available in this market, sorted ascending.
    pub fn capacity_ladder(&self) -> Vec<Bandwidth> {
        let mut v: Vec<Bandwidth> = self.plans.iter().map(|p| p.download).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The fastest advertised plan.
    pub fn fastest(&self) -> &Plan {
        self.plans
            .iter()
            .max_by_key(|p| p.download)
            .expect("catalogue is non-empty")
    }
}

fn log_distance(a: Bandwidth, b: Bandwidth) -> f64 {
    (a.bps().max(1.0).ln() - b.bps().max(1.0).ln()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Technology;

    fn us_like() -> PlanCatalog {
        PlanCatalog::new(
            Country::new("US"),
            vec![
                Plan::simple(1.0, 20.0, Technology::Dsl),
                Plan::simple(6.0, 35.0, Technology::Dsl),
                Plan::simple(18.0, 53.0, Technology::Cable),
                Plan::simple(50.0, 80.0, Technology::Cable),
                Plan::simple(100.0, 115.0, Technology::Fiber),
            ],
        )
    }

    #[test]
    fn price_of_access_is_cheapest_1mbps() {
        assert_eq!(us_like().price_of_access(), Some(MoneyPpp::from_usd(20.0)));
    }

    #[test]
    fn price_of_access_none_when_market_too_slow() {
        let c = PlanCatalog::new(
            Country::new("XX"),
            vec![Plan::simple(0.5, 100.0, Technology::Dsl)],
        );
        assert_eq!(c.price_of_access(), None);
    }

    #[test]
    fn cheapest_at_least_respects_capacity() {
        let c = us_like();
        let p = c.cheapest_at_least(Bandwidth::from_mbps(10.0)).unwrap();
        assert_eq!(p.download, Bandwidth::from_mbps(18.0));
        assert!(c.cheapest_at_least(Bandwidth::from_mbps(500.0)).is_none());
    }

    #[test]
    fn nearest_tier_matches_table4_logic() {
        // Table 4: US median capacity 17.6 Mbps → nearest tier 18 Mbps.
        let c = us_like();
        let tier = c.nearest_tier(Bandwidth::from_mbps(17.6));
        assert_eq!(tier.download, Bandwidth::from_mbps(18.0));
    }

    #[test]
    fn upgrade_cost_is_regression_slope() {
        let c = us_like();
        let fit = c.price_capacity_fit().unwrap();
        assert!(fit.strongly_correlated(), "r = {}", fit.r);
        let cost = c.upgrade_cost().unwrap();
        // Slope of these five points is a bit under $1/Mbps.
        assert!(cost.usd() > 0.5 && cost.usd() < 1.5, "cost = {cost}");
    }

    #[test]
    fn uncorrelated_market_has_no_upgrade_cost() {
        // The Afghanistan case of §6: price unrelated to capacity.
        let c = PlanCatalog::new(
            Country::new("AF"),
            vec![
                Plan::simple(1.0, 80.0, Technology::Dsl),
                Plan::simple(2.0, 30.0, Technology::Wireless),
                Plan::simple(0.5, 120.0, Technology::Dsl),
                Plan::simple(4.0, 25.0, Technology::Wireless),
            ],
        );
        let r = c.price_capacity_correlation().unwrap();
        assert!(r < 0.4, "r = {r}");
        assert_eq!(c.upgrade_cost(), None);
    }

    #[test]
    fn ladder_is_sorted_and_deduplicated() {
        let c = PlanCatalog::new(
            Country::new("ZZ"),
            vec![
                Plan::simple(4.0, 30.0, Technology::Dsl),
                Plan::simple(1.0, 20.0, Technology::Dsl),
                Plan::simple(4.0, 35.0, Technology::Cable),
            ],
        );
        assert_eq!(
            c.capacity_ladder(),
            vec![Bandwidth::from_mbps(1.0), Bandwidth::from_mbps(4.0)]
        );
        assert_eq!(c.fastest().download, Bandwidth::from_mbps(4.0));
    }

    #[test]
    #[should_panic(expected = "no plans")]
    fn empty_catalogue_rejected() {
        let _ = PlanCatalog::new(Country::new("XX"), vec![]);
    }
}
