//! Ordinary least squares for simple (one-predictor) linear regression.
//!
//! §6 of the paper estimates the "cost of increasing capacity" in each
//! market by regressing monthly plan price on plan capacity and using the
//! slope ($ per Mbps per month) wherever the correlation is at least
//! moderate (r > 0.4).

use crate::corr::pearson;

/// Result of a simple OLS fit `y = intercept + slope · x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation of x and y.
    pub r: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Standard error of the slope estimate (undefined for n ≤ 2, reported
    /// as 0 there).
    pub slope_stderr: f64,
    /// Number of observations.
    pub n: usize,
}

impl OlsFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// True when the fit meets the paper's "at least moderate correlation"
    /// bar (|r| > 0.4) for using the slope as an upgrade-cost estimate.
    pub fn moderately_correlated(&self) -> bool {
        self.r.abs() > 0.4
    }

    /// True when the fit meets the paper's "strong correlation" bar
    /// (|r| > 0.8).
    pub fn strongly_correlated(&self) -> bool {
        self.r.abs() > 0.8
    }
}

/// Fit `y = a + b·x` by ordinary least squares.
///
/// Returns `None` when there are fewer than two points or `x` is constant
/// (the slope would be undefined). A constant `y` is fine and produces a
/// zero slope with `r = 0`.
pub fn ols(x: &[f64], y: &[f64]) -> Option<OlsFit> {
    assert_eq!(x.len(), y.len(), "regression inputs differ in length");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        sxx += dx * dx;
        sxy += dx * (y[i] - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = pearson(x, y).unwrap_or(0.0);

    // Residual variance and slope standard error.
    let slope_stderr = if n > 2 {
        let ss_res: f64 = (0..n)
            .map(|i| {
                let e = y[i] - (intercept + slope * x[i]);
                e * e
            })
            .sum();
        (ss_res / (nf - 2.0) / sxx).sqrt()
    } else {
        0.0
    };

    Some(OlsFit {
        slope,
        intercept,
        r,
        r_squared: r * r,
        slope_stderr,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r - 1.0).abs() < 1e-12);
        assert!(fit.slope_stderr < 1e-10);
        assert_eq!(fit.predict(10.0), 21.0);
    }

    #[test]
    fn noisy_fit_matches_reference() {
        // Cross-checked with scipy.stats.linregress.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.1, 3.9, 6.2, 8.1, 9.8];
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope - 1.96).abs() < 1e-10, "slope {}", fit.slope);
        assert!(
            (fit.intercept - 0.14).abs() < 1e-10,
            "intercept {}",
            fit.intercept
        );
        assert!(fit.r > 0.998, "r {}", fit.r);
    }

    #[test]
    fn constant_x_is_rejected() {
        assert_eq!(ols(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let fit = ols(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r, 0.0);
        assert!(!fit.moderately_correlated());
    }

    #[test]
    fn correlation_thresholds() {
        let fit = OlsFit {
            slope: 1.0,
            intercept: 0.0,
            r: 0.85,
            r_squared: 0.7225,
            slope_stderr: 0.1,
            n: 10,
        };
        assert!(fit.strongly_correlated());
        assert!(fit.moderately_correlated());
        let weak = OlsFit { r: 0.3, ..fit };
        assert!(!weak.moderately_correlated());
    }

    #[test]
    fn too_few_points() {
        assert_eq!(ols(&[1.0], &[1.0]), None);
    }
}
