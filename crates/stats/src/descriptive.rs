//! Descriptive statistics: means, variances, quantiles, summaries.

/// Arithmetic mean.
///
/// # Panics
/// Panics on an empty slice — an empty population has no mean and silently
/// returning 0 or NaN would corrupt downstream aggregates.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of empty slice");
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (n−1 denominator), via Welford's algorithm for
/// numerical stability.
///
/// Returns 0 for a single observation.
///
/// # Panics
/// Panics on an empty slice.
pub fn variance(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "variance of empty slice");
    if data.len() == 1 {
        return 0.0;
    }
    let mut mean_acc = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in data.iter().enumerate() {
        let delta = x - mean_acc;
        mean_acc += delta / (i as f64 + 1.0);
        m2 += delta * (x - mean_acc);
    }
    m2 / (data.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Quantile with linear interpolation between order statistics (the common
/// "type 7" definition used by NumPy and R's default).
///
/// `q` must be in `[0, 1]`; `q = 0.95` is the paper's "peak demand"
/// percentile.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] by in-place selection: bit-identical to [`quantile`] on
/// the same data, without the clone or the O(n log n) sort. The two
/// order statistics that the type-7 definition interpolates between are
/// found with `select_nth_unstable_by` (O(n) expected) — the *values* at
/// those ranks are sort-order independent, so the interpolated result is
/// exactly the one `quantile` computes. `data` is reordered arbitrarily.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn quantile_unstable(data: &mut [f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let n = data.len();
    if n == 1 {
        return data[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let (_, &mut lo_val, upper) =
        data.select_nth_unstable_by(lo, |a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    if lo == hi {
        lo_val
    } else {
        // hi == lo + 1: the smallest element of the upper partition.
        let hi_val = upper.iter().copied().fold(f64::INFINITY, f64::min);
        let frac = pos - lo as f64;
        lo_val * (1.0 - frac) + hi_val * frac
    }
}

/// [`quantile`] over data that is already sorted ascending (no copy).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// A five-number-style summary plus mean and count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
}

impl Summary {
    /// Compute a summary of `data`.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "summary of empty slice");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Summary {
            n: sorted.len(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: mean(data),
            sd: stddev(data),
        }
    }

    /// Interquartile range `q3 − q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), 5.0);
        // Sample variance with n-1: sum of squared deviations is 32, /7.
        assert!((variance(&data) - 32.0 / 7.0).abs() < 1e-12);
        assert!((stddev(&data) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(variance(&[42.0]), 0.0);
    }

    #[test]
    fn quantile_unstable_is_bit_identical_to_quantile() {
        // The selection path must agree with the sort path to the last
        // bit — the streaming demand summaries depend on it.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [1usize, 2, 3, 4, 5, 7, 19, 20, 21, 100, 997] {
            let data: Vec<f64> = (0..n).map(|_| next() * 1e7).collect();
            for q in [0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
                let mut scratch = data.clone();
                let selected = quantile_unstable(&mut scratch, q);
                let sorted = quantile(&data, q);
                assert!(
                    selected == sorted,
                    "n={n} q={q}: selection {selected} vs sort {sorted}"
                );
            }
        }
        // Duplicates (ties at the interpolation boundary) as well.
        let dup = [3.0, 1.0, 3.0, 3.0, 1.0, 2.0, 2.0, 3.0];
        for q in [0.0, 0.3, 0.5, 0.7, 0.95, 1.0] {
            let mut scratch = dup.to_vec();
            assert_eq!(quantile_unstable(&mut scratch, q), quantile(&dup, q));
        }
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Naive two-pass with squares would lose precision here.
        let data: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 10) as f64).collect();
        let v = variance(&data);
        let expect = variance(&(0..1000).map(|i| (i % 10) as f64).collect::<Vec<_>>());
        assert!((v - expect).abs() < 1e-6, "{v} vs {expect}");
    }

    #[test]
    fn quantiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(quantile(&data, 0.5), 2.5);
        // 95th percentile of [1..=4]: pos = 2.85 → 3.85.
        assert!((quantile(&data, 0.95) - 3.85).abs() < 1e-12);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let data = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&data), 5.0);
    }

    #[test]
    fn quantile_singleton() {
        assert_eq!(quantile(&[3.3], 0.95), 3.3);
    }

    #[test]
    fn summary_fields() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&data);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_rejects_empty() {
        let _ = mean(&[]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_rejects_bad_level() {
        let _ = quantile(&[1.0], 1.5);
    }
}
