//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper compares distributions visually (Figs. 4, 7, 11, 12: "the
//! CDF sits to the right"). The KS statistic makes those comparisons
//! quantitative: the maximum vertical gap between two empirical CDFs, with
//! the classical asymptotic p-value. Used by the §7 India analyses and by
//! the regression tests that pin CDF separations.

use crate::ecdf::Ecdf;

/// Result of a two-sample KS test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D = sup_x |F1(x) − F2(x)|`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Smirnov's limiting distribution).
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl KsTest {
    /// Significant at α = 0.05.
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Two-sample KS test over raw samples.
///
/// # Panics
/// Panics if either sample is empty or contains NaN.
pub fn ks_two_sample(sample1: &[f64], sample2: &[f64]) -> KsTest {
    assert!(
        !sample1.is_empty() && !sample2.is_empty(),
        "KS test needs two non-empty samples"
    );
    let e1 = Ecdf::new(sample1.iter().copied());
    let e2 = Ecdf::new(sample2.iter().copied());
    ks_from_ecdfs(&e1, &e2)
}

/// Two-sample KS test over pre-built ECDFs.
pub fn ks_from_ecdfs(e1: &Ecdf, e2: &Ecdf) -> KsTest {
    // Sweep the merged set of jump points; the supremum of the difference
    // of right-continuous step functions is attained at a jump.
    let mut d: f64 = 0.0;
    for &x in e1.sorted_values().iter().chain(e2.sorted_values()) {
        d = d.max((e1.eval(x) - e2.eval(x)).abs());
    }
    let n1 = e1.len();
    let n2 = e2.len();
    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    KsTest {
        statistic: d,
        p_value: ks_sf(en * d).clamp(0.0, 1.0),
        n1,
        n2,
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2 k² λ²}`.
///
/// For small λ that alternating series converges hopelessly slowly, so the
/// Jacobi-theta transformed series is used there instead.
pub fn ks_sf(lambda: f64) -> f64 {
    if lambda <= 1e-8 {
        return 1.0;
    }
    if lambda < 1.18 {
        // Q(λ) = 1 − (√(2π)/λ) Σ_{k≥1} e^{−(2k−1)² π² / (8λ²)}.
        let mut cdf = 0.0;
        for k in 1..=20 {
            let m = (2 * k - 1) as f64;
            cdf += (-(m * m) * std::f64::consts::PI.powi(2) / (8.0 * lambda * lambda)).exp();
        }
        cdf *= (2.0 * std::f64::consts::PI).sqrt() / lambda;
        return (1.0 - cdf).clamp(0.0, 1.0);
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let t = ks_two_sample(&a, &a);
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
        assert!(!t.significant());
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let t = ks_two_sample(&a, &b);
        assert_eq!(t.statistic, 1.0);
    }

    #[test]
    fn same_distribution_usually_not_significant() {
        let d = Normal::new(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a: Vec<f64> = (0..300).map(|_| d.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..300).map(|_| d.sample(&mut rng)).collect();
        let t = ks_two_sample(&a, &b);
        assert!(!t.significant(), "D = {}, p = {}", t.statistic, t.p_value);
    }

    #[test]
    fn shifted_distribution_is_detected() {
        let d1 = Normal::new(0.0, 1.0);
        let d2 = Normal::new(1.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a: Vec<f64> = (0..300).map(|_| d1.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..300).map(|_| d2.sample(&mut rng)).collect();
        let t = ks_two_sample(&a, &b);
        assert!(t.significant());
        assert!(t.statistic > 0.3, "D = {}", t.statistic);
    }

    #[test]
    fn kolmogorov_sf_known_values() {
        // Q(λ) table values: Q(1.36) ≈ 0.0505 (the classic 5% critical value).
        assert!((ks_sf(1.36) - 0.0505).abs() < 5e-3, "{}", ks_sf(1.36));
        assert!((ks_sf(1e-9) - 1.0).abs() < 1e-6);
        assert!(ks_sf(3.0) < 1e-6);
        // The two branches agree where they meet.
        assert!((ks_sf(1.1799) - ks_sf(1.1801)).abs() < 5e-4);
        // Monotone decreasing.
        let mut prev = 1.0;
        for i in 1..40 {
            let q = ks_sf(i as f64 * 0.1);
            assert!(q <= prev + 1e-12, "lambda {}", i as f64 * 0.1);
            prev = q;
        }
    }

    #[test]
    fn statistic_symmetry() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0];
        let t1 = ks_two_sample(&a, &b);
        let t2 = ks_two_sample(&b, &a);
        assert_eq!(t1.statistic, t2.statistic);
        assert_eq!(t1.p_value, t2.p_value);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_rejected() {
        let _ = ks_two_sample(&[], &[1.0]);
    }
}
