//! Percentile bootstrap.
//!
//! Used for statistics with no convenient closed-form interval (e.g. the
//! median usage ratios quoted in §3.2) and by the ablation benches to
//! cross-check the t-based intervals.

use crate::descriptive::quantile;
use rand::Rng;

/// A bootstrap confidence interval for an arbitrary statistic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapCi {
    /// Statistic evaluated on the original sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

/// Percentile-bootstrap confidence interval of `statistic` over `data`.
///
/// Draws `resamples` resamples with replacement using `rng`, evaluates the
/// statistic on each, and returns the `(1-confidence)/2` and
/// `1-(1-confidence)/2` percentiles of the bootstrap distribution.
///
/// # Panics
/// Panics on an empty sample, zero resamples, or a confidence level outside
/// `(0, 1)`.
pub fn bootstrap_ci<R: Rng + ?Sized>(
    rng: &mut R,
    data: &[f64],
    confidence: f64,
    resamples: usize,
    statistic: impl Fn(&[f64]) -> f64,
) -> BootstrapCi {
    assert!(!data.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "bootstrap needs at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    let estimate = statistic(data);
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..data.len())];
        }
        stats.push(statistic(&resample));
    }
    let alpha = (1.0 - confidence) / 2.0;
    BootstrapCi {
        estimate,
        lo: quantile(&stats, alpha),
        hi: quantile(&stats, 1.0 - alpha),
        resamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{mean, median};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mean_interval_brackets_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        // Uniform-ish sample centred near 0.5.
        let data: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let ci = bootstrap_ci(&mut rng, &data, 0.95, 2000, mean);
        assert!(ci.lo < 0.5 && ci.hi > 0.5, "[{}, {}]", ci.lo, ci.hi);
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
        // Interval should be tight for n = 500.
        assert!(ci.hi - ci.lo < 0.1);
    }

    #[test]
    fn works_for_median() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let data: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let ci = bootstrap_ci(&mut rng, &data, 0.9, 1000, median);
        assert_eq!(ci.estimate, 51.0);
        assert!(ci.contains_est());
    }

    impl BootstrapCi {
        fn contains_est(&self) -> bool {
            self.lo <= self.estimate && self.estimate <= self.hi
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&mut ChaCha8Rng::seed_from_u64(1), &data, 0.95, 200, mean);
        let b = bootstrap_ci(&mut ChaCha8Rng::seed_from_u64(1), &data, 0.95, 200, mean);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = bootstrap_ci(&mut rng, &[], 0.95, 10, mean);
    }
}
