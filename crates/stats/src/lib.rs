//! # bb-stats — from-scratch statistics substrate
//!
//! Every statistical primitive used by the study is implemented here, from
//! scratch, with no external numerical dependencies:
//!
//! * [`special`] — special functions: log-gamma, regularized incomplete
//!   beta and gamma, error function, inverse normal CDF;
//! * [`dist`] — probability distributions (normal, Student-t, binomial,
//!   log-normal, Pareto, exponential) with CDFs, tails, quantiles and
//!   deterministic sampling via any [`rand::Rng`];
//! * [`descriptive`] — means, variances, quantiles, five-number summaries;
//! * [`ecdf`] — empirical CDFs, the workhorse behind every CDF figure in
//!   the paper;
//! * [`corr`] — Pearson and Spearman correlation;
//! * [`regression`] — ordinary least squares for the price~capacity fits of
//!   §6;
//! * [`hypothesis`] — the one-tailed binomial sign test used by every
//!   natural experiment, exact and normal-approximated;
//! * [`ks`] — the two-sample Kolmogorov–Smirnov test quantifying the
//!   CDF separations the paper's figures show;
//! * [`rank_tests`] — Pearson's χ² (the §2.3 Paxson caveat, demonstrable)
//!   and the Mann–Whitney U robustness alternative to the sign test;
//! * [`ci`] — Student-t confidence intervals for the mean (the error bars
//!   on every figure);
//! * [`binning`] — generic binned aggregation;
//! * [`bootstrap`] — percentile bootstrap for statistics without closed
//!   forms.
//!
//! Accuracy targets: CDF/tail values are good to ~1e-10 relative error in
//! the bulk and stay meaningful far into the tails (the paper reports
//! p-values down to `1.13e-36`; the exact binomial test reproduces that
//! range through the incomplete-beta continued fraction, which is stable
//! there).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod bootstrap;
pub mod ci;
pub mod corr;
pub mod descriptive;
pub mod dist;
pub mod ecdf;
pub mod hypothesis;
pub mod ks;
pub mod rank_tests;
pub mod regression;
pub mod special;

pub use binning::BinnedSeries;
pub use bootstrap::bootstrap_ci;
pub use ci::{mean_ci, MeanCi};
pub use corr::{pearson, spearman};
pub use descriptive::{mean, median, quantile, stddev, variance, Summary};
pub use dist::{Binomial, Exponential, LogNormal, Normal, Pareto, StudentT};
pub use ecdf::Ecdf;
pub use hypothesis::{binomial_test, BinomialTest, Tail};
pub use ks::{ks_two_sample, KsTest};
pub use rank_tests::{chi_squared_gof, mann_whitney_u, ChiSquaredTest, MannWhitneyTest};
pub use regression::{ols, OlsFit};
