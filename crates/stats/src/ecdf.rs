//! Empirical cumulative distribution functions.
//!
//! Six of the paper's twelve figures are CDF plots; [`Ecdf`] is the common
//! representation behind all of them. It stores the sorted sample once and
//! answers point evaluations, quantiles, and produces plottable step
//! points.

use crate::descriptive::quantile_sorted;

/// An empirical CDF over a sample of `f64` observations.
#[derive(Clone, Debug, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from a sample (copied and sorted).
    ///
    /// # Panics
    /// Panics on an empty sample or NaN values.
    pub fn new(sample: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = sample.into_iter().collect();
        assert!(!sorted.is_empty(), "ECDF of empty sample");
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "ECDF sample contains NaN"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded above"));
        Ecdf { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `F(x)` — the fraction of observations ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we test
        // with `<= x` (the slice is sorted ascending).
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Sample quantile at level `q ∈ [0, 1]` (type-7 interpolation).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// Median of the sample.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// The sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// The fraction of observations strictly greater than `x`.
    pub fn frac_above(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// Points `(x, F(x))` suitable for plotting the CDF as a line.
    ///
    /// Emits one point per distinct observation (deduplicated), so the
    /// result is monotone in both coordinates.
    pub fn plot_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => points.push((x, y)),
            }
        }
        points
    }

    /// Downsample the CDF to at most `max_points` plot points, always
    /// retaining the first and last. Used when rendering dense CDFs.
    pub fn plot_points_downsampled(&self, max_points: usize) -> Vec<(f64, f64)> {
        assert!(max_points >= 2, "need at least two points");
        let full = self.plot_points();
        if full.len() <= max_points {
            return full;
        }
        let step = (full.len() - 1) as f64 / (max_points - 1) as f64;
        (0..max_points)
            .map(|i| full[(i as f64 * step).round() as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps() {
        let e = Ecdf::new([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new([4.0, 1.0, 3.0, 2.0]);
        assert_eq!(e.median(), 2.5);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
    }

    #[test]
    fn frac_above() {
        let e = Ecdf::new([1.0, 2.0, 3.0, 4.0, 5.0]);
        // Fraction strictly above 3 is 2/5.
        assert!((e.frac_above(3.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn plot_points_are_monotone_and_deduplicated() {
        let e = Ecdf::new([1.0, 1.0, 2.0, 2.0, 2.0, 5.0]);
        let pts = e.plot_points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 2.0 / 6.0));
        assert_eq!(pts[1], (2.0, 5.0 / 6.0));
        assert_eq!(pts[2], (5.0, 1.0));
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn downsampling_keeps_ends() {
        let e = Ecdf::new((0..1000).map(|i| i as f64));
        let pts = e.plot_points_downsampled(10);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[9].0, 999.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let _ = Ecdf::new(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "contains NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new([1.0, f64::NAN]);
    }
}
