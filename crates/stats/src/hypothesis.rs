//! The one-tailed binomial test.
//!
//! This is the statistical engine of the paper's methodology (§2.3): each
//! natural experiment produces a sequence of matched pairs, each pair
//! either supports the hypothesis or not, and "we use the one-tailed
//! binomial test to measure the statistical significance of deviations from
//! the expected distribution" (a fair coin under H₀).
//!
//! The paper also guards against the large-sample pathology pointed out by
//! Paxson — with enough data even a trivial deviation is "significant" — by
//! additionally requiring the observed share to deviate by more than 2
//! percentage points ("we only consider deviations larger than 2% to be
//! practically important", i.e. the hypothesis must hold at least 52% of
//! the time). [`BinomialTest::practically_important`] encodes exactly that
//! rule.

use crate::dist::Binomial;
use crate::special::std_normal_sf;

/// Which tail of the null distribution the alternative hypothesis lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tail {
    /// Alternative: true success probability is *greater* than the null's
    /// (the paper's experiments all use this direction).
    Greater,
    /// Alternative: true success probability is *less* than the null's.
    Less,
}

/// Result of a one-tailed binomial test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinomialTest {
    /// Number of successes observed.
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
    /// Null success probability (0.5 in all of the paper's experiments).
    pub null_p: f64,
    /// Direction of the alternative hypothesis.
    pub tail: Tail,
    /// Exact one-tailed p-value.
    pub p_value: f64,
    /// Observed success share (`successes / trials`).
    pub observed_share: f64,
}

impl BinomialTest {
    /// Significance at the paper's α = 0.05 ("a strong presumption against
    /// the null hypothesis").
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }

    /// The paper's practical-importance guard: the observed share must
    /// deviate from the null probability by more than 2 percentage points
    /// in the direction of the alternative.
    pub fn practically_important(&self) -> bool {
        match self.tail {
            Tail::Greater => self.observed_share >= self.null_p + 0.02,
            Tail::Less => self.observed_share <= self.null_p - 0.02,
        }
    }

    /// Both significant and practically important — the bar a result must
    /// clear before the paper rejects H₀.
    pub fn conclusive(&self) -> bool {
        self.significant() && self.practically_important()
    }

    /// Observed share as a percentage (the "% H holds" column of every
    /// experiment table in the paper).
    pub fn share_percent(&self) -> f64 {
        self.observed_share * 100.0
    }
}

/// Run an exact one-tailed binomial test.
///
/// `successes` of `trials` came out in favour of the hypothesis; under the
/// null they would be `Binomial(trials, null_p)`.
///
/// # Panics
/// Panics when `trials` is zero, `successes > trials`, or `null_p` is
/// outside `[0, 1]`.
pub fn binomial_test(successes: u64, trials: u64, null_p: f64, tail: Tail) -> BinomialTest {
    assert!(trials > 0, "binomial test with zero trials");
    assert!(
        successes <= trials,
        "successes ({successes}) exceed trials ({trials})"
    );
    let dist = Binomial::new(trials, null_p);
    let p_value = match tail {
        Tail::Greater => dist.sf_at_least(successes),
        Tail::Less => dist.cdf(successes),
    };
    BinomialTest {
        successes,
        trials,
        null_p,
        tail,
        p_value,
        observed_share: successes as f64 / trials as f64,
    }
}

/// Normal-approximation version of the one-tailed test (with continuity
/// correction). Provided for the `ablate_binomial` bench, which quantifies
/// how far the approximation drifts from the exact tail at the paper's
/// sample sizes.
pub fn binomial_test_normal_approx(
    successes: u64,
    trials: u64,
    null_p: f64,
    tail: Tail,
) -> BinomialTest {
    assert!(trials > 0, "binomial test with zero trials");
    assert!(
        successes <= trials,
        "successes ({successes}) exceed trials ({trials})"
    );
    let n = trials as f64;
    let mean = n * null_p;
    let sd = (n * null_p * (1.0 - null_p)).sqrt();
    let p_value = if sd == 0.0 {
        // Degenerate null: all mass at mean.
        match tail {
            Tail::Greater => {
                if (successes as f64) <= mean {
                    1.0
                } else {
                    0.0
                }
            }
            Tail::Less => {
                if (successes as f64) >= mean {
                    1.0
                } else {
                    0.0
                }
            }
        }
    } else {
        match tail {
            Tail::Greater => std_normal_sf((successes as f64 - 0.5 - mean) / sd),
            Tail::Less => 1.0 - std_normal_sf((successes as f64 + 0.5 - mean) / sd),
        }
    };
    BinomialTest {
        successes,
        trials,
        null_p,
        tail,
        p_value: p_value.clamp(0.0, 1.0),
        observed_share: successes as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_coin_not_significant() {
        let t = binomial_test(52, 100, 0.5, Tail::Greater);
        assert!(!t.significant(), "p = {}", t.p_value);
        // scipy.stats.binomtest(52, 100, alternative='greater') = 0.38218...
        assert!((t.p_value - 0.382_177).abs() < 1e-5, "p = {}", t.p_value);
        assert!(t.practically_important()); // 52% is exactly the cut-off.
        assert!(!t.conclusive());
    }

    #[test]
    fn biased_coin_detected() {
        // 70 of 100 heads under a fair null: p ≈ 3.9e-5.
        let t = binomial_test(70, 100, 0.5, Tail::Greater);
        assert!(t.significant());
        assert!(t.practically_important());
        assert!(t.conclusive());
        assert!(t.p_value < 1e-4 && t.p_value > 1e-6, "p = {}", t.p_value);
    }

    #[test]
    fn paper_scale_p_values() {
        // Table 1 reports 70.3% of pairs and p = 1.13e-36; with ~640 pairs
        // and 450 successes the exact tail lands in that regime.
        let t = binomial_test(450, 640, 0.5, Tail::Greater);
        assert!(t.p_value < 1e-20, "p = {}", t.p_value);
        assert!(t.p_value > 0.0);
    }

    #[test]
    fn lower_tail() {
        let t = binomial_test(30, 100, 0.5, Tail::Less);
        assert!(t.significant());
        assert!(t.practically_important());
        let t2 = binomial_test(49, 100, 0.5, Tail::Less);
        assert!(!t2.practically_important());
    }

    #[test]
    fn exact_small_case() {
        // P(X >= 9 | n = 10, p = 0.5) = 11/1024.
        let t = binomial_test(9, 10, 0.5, Tail::Greater);
        assert!((t.p_value - 11.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn normal_approx_tracks_exact() {
        for &(k, n) in &[(60u64, 100u64), (550, 1000), (5200, 10000)] {
            let exact = binomial_test(k, n, 0.5, Tail::Greater).p_value;
            let approx = binomial_test_normal_approx(k, n, 0.5, Tail::Greater).p_value;
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.05, "k={k} n={n}: exact {exact}, approx {approx}");
        }
    }

    #[test]
    fn share_percent() {
        let t = binomial_test(668, 1000, 0.5, Tail::Greater);
        assert!((t.share_percent() - 66.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn zero_trials_rejected() {
        let _ = binomial_test(0, 0, 0.5, Tail::Greater);
    }

    #[test]
    #[should_panic(expected = "exceed trials")]
    fn impossible_successes_rejected() {
        let _ = binomial_test(11, 10, 0.5, Tail::Greater);
    }
}
