//! Generic binned aggregation.
//!
//! Figures 2, 3 and 6 of the paper all have the same structure: classify
//! users by a key (a capacity bin), collect a per-user value (mean or peak
//! demand), and report the per-bin average with its 95% confidence
//! interval. [`BinnedSeries`] captures that pattern once.

use crate::ci::{mean_ci, MeanCi};
use std::collections::BTreeMap;

/// Values grouped by an ordered bin key.
#[derive(Clone, Debug)]
pub struct BinnedSeries<K: Ord + Clone> {
    bins: BTreeMap<K, Vec<f64>>,
}

impl<K: Ord + Clone> Default for BinnedSeries<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone> BinnedSeries<K> {
    /// Create an empty series.
    pub fn new() -> Self {
        BinnedSeries {
            bins: BTreeMap::new(),
        }
    }

    /// Add one observation under `key`.
    pub fn push(&mut self, key: K, value: f64) {
        self.bins.entry(key).or_default().push(value);
    }

    /// Build from an iterator of `(key, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (K, f64)>) -> Self {
        let mut s = Self::new();
        for (k, v) in pairs {
            s.push(k, v);
        }
        s
    }

    /// Number of non-empty bins.
    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total number of observations across all bins.
    pub fn n_total(&self) -> usize {
        self.bins.values().map(Vec::len).sum()
    }

    /// The raw values in one bin, if present.
    pub fn values(&self, key: &K) -> Option<&[f64]> {
        self.bins.get(key).map(Vec::as_slice)
    }

    /// Iterate over `(key, values)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &[f64])> {
        self.bins.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Drop bins with fewer than `min` observations.
    ///
    /// The paper applies exactly this filter: "we do not include data on a
    /// particular tier for a country with less than 30 users" (§5).
    pub fn filter_min_count(mut self, min: usize) -> Self {
        self.bins.retain(|_, v| v.len() >= min);
        self
    }

    /// Per-bin mean with a confidence interval, in key order — the rows of
    /// a binned figure.
    pub fn mean_cis(&self, confidence: f64) -> Vec<(K, MeanCi)> {
        self.bins
            .iter()
            .map(|(k, v)| (k.clone(), mean_ci(v, confidence)))
            .collect()
    }

    /// Per-bin means in key order (no interval).
    pub fn means(&self) -> Vec<(K, f64)> {
        self.bins
            .iter()
            .map(|(k, v)| (k.clone(), crate::descriptive::mean(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_and_means() {
        let s = BinnedSeries::from_pairs([(1u8, 2.0), (1, 4.0), (2, 10.0)]);
        assert_eq!(s.n_bins(), 2);
        assert_eq!(s.n_total(), 3);
        assert_eq!(s.values(&1), Some([2.0, 4.0].as_slice()));
        let means = s.means();
        assert_eq!(means, vec![(1, 3.0), (2, 10.0)]);
    }

    #[test]
    fn keys_come_out_ordered() {
        let s = BinnedSeries::from_pairs([(3u8, 1.0), (1, 1.0), (2, 1.0)]);
        let keys: Vec<u8> = s.means().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn min_count_filter() {
        let mut s = BinnedSeries::new();
        for i in 0..30 {
            s.push("big", i as f64);
        }
        s.push("small", 1.0);
        let filtered = s.filter_min_count(30);
        assert_eq!(filtered.n_bins(), 1);
        assert!(filtered.values(&"big").is_some());
        assert!(filtered.values(&"small").is_none());
    }

    #[test]
    fn cis_match_direct_computation() {
        let s = BinnedSeries::from_pairs([(0u8, 1.0), (0, 2.0), (0, 3.0)]);
        let cis = s.mean_cis(0.95);
        assert_eq!(cis.len(), 1);
        let direct = crate::ci::mean_ci(&[1.0, 2.0, 3.0], 0.95);
        assert_eq!(cis[0].1, direct);
    }

    #[test]
    fn empty_series() {
        let s: BinnedSeries<u8> = BinnedSeries::new();
        assert_eq!(s.n_bins(), 0);
        assert_eq!(s.n_total(), 0);
        assert!(s.mean_cis(0.95).is_empty());
    }
}
