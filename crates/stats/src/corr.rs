//! Correlation coefficients.
//!
//! The paper leans on Pearson's r throughout: "usage is strongly correlated
//! with the group's link capacity (r ≥ 0.87…)" (§3.1) and the §6 census of
//! price~capacity correlation across markets. Spearman's rank correlation
//! is provided for robustness checks in the ablation benches.

/// Pearson product-moment correlation between two equal-length slices.
///
/// Returns `None` when either series is constant (the coefficient is
/// undefined) or when fewer than two observations are given.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "correlation inputs differ in length");
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// Spearman rank correlation (Pearson correlation of average ranks; ties
/// receive the mean of the ranks they span).
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "correlation inputs differ in length");
    if x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Assign average ranks (1-based) to `data`, giving tied values the mean of
/// the ranks they occupy.
pub fn average_ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        // Find the run of ties starting at i.
        let mut j = i + 1;
        while j < idx.len() && data[idx[j]] == data[idx[i]] {
            j += 1;
        }
        // Average 1-based rank of positions i..j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_relationship() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_pearson_value() {
        // Cross-checked with numpy.corrcoef.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 6.0];
        let r = pearson(&x, &y).unwrap();
        assert!((r - 0.821_994_936_526_786_5).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn constant_series_has_no_correlation() {
        let x = [1.0, 1.0, 1.0];
        let y = [2.0, 3.0, 4.0];
        assert_eq!(pearson(&x, &y), None);
        assert_eq!(spearman(&x, &y), None);
    }

    #[test]
    fn spearman_ignores_monotone_transforms() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson of the same data is below 1 (convexity).
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn ranks_average_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn too_short_series() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn length_mismatch_panics() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }
}
