//! Probability distributions.
//!
//! Each distribution offers the analytic pieces the study needs (CDF,
//! survival function, quantiles where used) plus deterministic sampling
//! through any [`rand::Rng`] — the simulator seeds a reproducible ChaCha
//! generator, so every experiment in the repository is replayable.

mod binomial;
mod continuous;
mod normal;
mod student_t;

pub use binomial::Binomial;
pub use continuous::{Exponential, LogNormal, Pareto};
pub use normal::Normal;
pub use student_t::StudentT;
