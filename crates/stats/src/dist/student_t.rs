//! Student's t distribution — used for the confidence intervals drawn as
//! error bars on every figure of the paper.

use crate::special::inc_beta;

/// Student's t distribution with `nu` degrees of freedom.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Create a t distribution.
    ///
    /// # Panics
    /// Panics unless `nu > 0`.
    pub fn new(nu: f64) -> Self {
        assert!(nu.is_finite() && nu > 0.0, "need nu > 0, got {nu}");
        StudentT { nu }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.nu
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.nu / (self.nu + t * t);
        let tail = 0.5 * inc_beta(self.nu / 2.0, 0.5, x);
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Survival function `P(T > t)`.
    pub fn sf(&self, t: f64) -> f64 {
        self.cdf(-t)
    }

    /// Quantile (inverse CDF), found by monotone bisection on the CDF.
    ///
    /// Bisection is deliberate: it is exact-by-construction against our own
    /// CDF, branch-free over all `nu`, and quantiles are only computed a
    /// handful of times per experiment.
    ///
    /// # Panics
    /// Panics unless `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "t quantile requires p in (0,1), got {p}"
        );
        if (p - 0.5).abs() < 1e-16 {
            return 0.0;
        }
        // Bracket the root; t quantiles grow slowly, 1e6 covers any p we
        // can represent distinguishably from 0 and 1.
        let (mut lo, mut hi) = (-1e6, 1e6);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// The two-sided critical value `t*` such that
    /// `P(|T| ≤ t*) = confidence`. This is the multiplier for the
    /// "95% confidence interval of the mean" error bars used throughout the
    /// paper's figures.
    pub fn two_sided_critical(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1), got {confidence}"
        );
        self.quantile(0.5 + confidence / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry() {
        let t = StudentT::new(7.0);
        for &x in &[0.0, 0.5, 1.3, 4.0] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_known_values() {
        // With nu = 1 (Cauchy): CDF(1) = 0.75.
        let cauchy = StudentT::new(1.0);
        assert!((cauchy.cdf(1.0) - 0.75).abs() < 1e-12);
        // nu = 10: P(T < 1.812461) ≈ 0.95 (classic table value).
        let t10 = StudentT::new(10.0);
        assert!((t10.cdf(1.812_461_122_811_676) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn quantile_round_trip() {
        let t = StudentT::new(5.0);
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = t.quantile(p);
            assert!((t.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn critical_values_match_tables() {
        // t*(df=4, 95%) = 2.776445; t*(df=29, 95%) = 2.045230.
        assert!((StudentT::new(4.0).two_sided_critical(0.95) - 2.776_445).abs() < 1e-5);
        assert!((StudentT::new(29.0).two_sided_critical(0.95) - 2.045_230).abs() < 1e-5);
    }

    #[test]
    fn converges_to_normal_for_large_dof() {
        let t = StudentT::new(1e6);
        assert!((t.two_sided_critical(0.95) - 1.959_964).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "need nu > 0")]
    fn zero_dof_rejected() {
        let _ = StudentT::new(0.0);
    }
}
