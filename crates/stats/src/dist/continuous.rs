//! Heavy-tailed and memoryless continuous distributions used by the world
//! model: log-normal (demand appetites, incomes), Pareto (session sizes),
//! exponential (session inter-arrivals).

use super::Normal;
use rand::Rng;

/// A log-normal distribution: `ln X ~ N(mu, sigma)`.
///
/// The world model draws user demand *appetites* and incomes from
/// log-normals — both are classic log-normal quantities, and the heavy
/// upper tail is what produces the small population of very demanding
/// users visible in the paper's CDFs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Create from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            norm: Normal::new(mu, sigma),
        }
    }

    /// Create from a target *median* and the multiplicative spread `sigma`
    /// (log-space standard deviation). The median of a log-normal is
    /// `exp(mu)`, which makes this the most intuitive constructor for
    /// calibrating world-model parameters.
    ///
    /// # Panics
    /// Panics unless `median > 0`.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        Self::new(median.ln(), sigma)
    }

    /// Median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.norm.mean().exp()
    }

    /// Mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.norm.mean() + self.norm.sd().powi(2) / 2.0).exp()
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.norm.cdf(x.ln())
        }
    }

    /// Quantile (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        self.norm.quantile(p).exp()
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// A Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Session/flow sizes in residential traffic are famously heavy-tailed;
/// the simulator uses a Pareto body for bulk-transfer sizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Create a Pareto distribution.
    ///
    /// # Panics
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0, "x_min must be positive, got {x_min}");
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        Pareto { x_min, alpha }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            1.0 - (self.x_min / x).powf(self.alpha)
        }
    }

    /// Mean, which only exists for `alpha > 1`.
    pub fn mean(&self) -> Option<f64> {
        if self.alpha > 1.0 {
            Some(self.alpha * self.x_min / (self.alpha - 1.0))
        } else {
            None
        }
    }

    /// Quantile (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "Pareto quantile needs p in [0,1)");
        self.x_min / (1.0 - p).powf(1.0 / self.alpha)
    }

    /// Draw one sample by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen() yields [0,1); using 1-u keeps the argument in (0,1].
        let u: f64 = rng.gen();
        self.x_min / (1.0 - u).powf(1.0 / self.alpha)
    }
}

/// An exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for Poisson session inter-arrival times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create from a rate.
    ///
    /// # Panics
    /// Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "rate must be positive, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Create from a mean (`1/lambda`).
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        Self::new(1.0 / mean)
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }

    /// Draw one sample by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn lognormal_median_constructor() {
        let d = LogNormal::from_median(7.4, 1.1);
        assert!((d.median() - 7.4).abs() < 1e-12);
        assert!((d.cdf(7.4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lognormal_sampling_median() {
        let d = LogNormal::from_median(10.0, 0.8);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..40_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[20_000];
        assert!((med / 10.0 - 1.0).abs() < 0.05, "median {med}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_quantile_round_trip() {
        let d = LogNormal::new(1.0, 0.5);
        for &p in &[0.05, 0.5, 0.95] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn pareto_tail_exponent() {
        let d = Pareto::new(2.0, 1.5);
        // P(X > 4) = (2/4)^1.5.
        assert!((1.0 - d.cdf(4.0) - 0.5f64.powf(1.5)).abs() < 1e-12);
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.mean(), Some(6.0));
        assert_eq!(Pareto::new(1.0, 0.9).mean(), None);
    }

    #[test]
    fn pareto_samples_respect_scale() {
        let d = Pareto::new(5.0, 2.0);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) >= 5.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::from_mean(4.0);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        let mut r = rng();
        let mean: f64 = (0..50_000).map(|_| d.sample(&mut r)).sum::<f64>() / 50_000.0;
        assert!((mean - 4.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn exponential_cdf() {
        let d = Exponential::new(1.0);
        assert!((d.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(d.cdf(-2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "x_min must be positive")]
    fn pareto_rejects_zero_scale() {
        let _ = Pareto::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
