//! The binomial distribution — the null model of every natural experiment
//! in the paper ("if neither variable has an impact on the other, then
//! their interaction would be random", §2.3).

use crate::special::{inc_beta, ln_gamma};
use rand::Rng;

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create a binomial distribution.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]` and `n ≥ 1`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(n >= 1, "need at least one trial");
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p must be in [0,1], got {p}"
        );
        Binomial { n, p }
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn prob(&self) -> f64 {
        self.p
    }

    /// Natural log of the probability mass function at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        assert!(k <= self.n, "k = {k} exceeds n = {}", self.n);
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        let n = self.n as f64;
        let kf = k as f64;
        ln_gamma(n + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(n - kf + 1.0)
            + kf * self.p.ln()
            + (n - kf) * (1.0 - self.p).ln()
    }

    /// Probability mass function at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `P(X ≤ k)`, via the regularized incomplete beta function:
    /// `P(X ≤ k) = I_{1-p}(n-k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0;
        }
        inc_beta((self.n - k) as f64, (k + 1) as f64, 1.0 - self.p)
    }

    /// Upper tail `P(X ≥ k)`, exact through the incomplete beta function:
    /// `P(X ≥ k) = I_p(k, n-k+1)` for `k ≥ 1`.
    ///
    /// This is the p-value of the one-tailed binomial test and stays
    /// accurate down to magnitudes like the paper's `1.13e-36`.
    pub fn sf_at_least(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        inc_beta(k as f64, (self.n - k + 1) as f64, self.p)
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draw one sample (number of successes in `n` Bernoulli trials).
    ///
    /// Direct simulation; the experiments sample at most a few thousand
    /// trials so no BTPE-style rejection sampler is warranted.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (0..self.n).filter(|_| rng.gen_bool(self.p)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3);
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_known_value() {
        // P(X = 3), n = 10, p = 0.5 is C(10,3)/1024 = 120/1024.
        let b = Binomial::new(10, 0.5);
        assert!((b.pmf(3) - 120.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_sf_are_complementary() {
        let b = Binomial::new(30, 0.42);
        for k in 1..=30 {
            let total = b.cdf(k - 1) + b.sf_at_least(k);
            assert!((total - 1.0).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn sf_matches_brute_force() {
        let b = Binomial::new(25, 0.5);
        for k in 0..=25 {
            let brute: f64 = (k..=25).map(|j| b.pmf(j)).sum();
            assert!((b.sf_at_least(k) - brute).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn deep_tail_is_finite_and_tiny() {
        // Order of magnitude of the paper's Table 1: n in the hundreds,
        // observed share ~70% ⇒ p-values like 1e-36. With n = 1000 and
        // k = 703 the exact tail under p = 0.5 is ~4.7e-38.
        let b = Binomial::new(1000, 0.5);
        let p = b.sf_at_least(703);
        assert!(p > 0.0 && p < 1e-30, "p = {p}");
    }

    #[test]
    fn degenerate_probabilities() {
        let always = Binomial::new(5, 1.0);
        assert_eq!(always.sf_at_least(5), 1.0);
        assert_eq!(always.cdf(4), 0.0);
        let never = Binomial::new(5, 0.0);
        assert_eq!(never.sf_at_least(1), 0.0);
        assert_eq!(never.cdf(0), 1.0);
    }

    #[test]
    fn moments() {
        let b = Binomial::new(100, 0.25);
        assert_eq!(b.mean(), 25.0);
        assert_eq!(b.variance(), 18.75);
    }

    #[test]
    fn sampling_matches_mean() {
        let b = Binomial::new(50, 0.6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mean: f64 = (0..20_000).map(|_| b.sample(&mut rng) as f64).sum::<f64>() / 20_000.0;
        assert!((mean - 30.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = Binomial::new(0, 0.5);
    }
}
