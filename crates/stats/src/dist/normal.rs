//! The normal (Gaussian) distribution.

use crate::special::{std_normal_cdf, std_normal_quantile, std_normal_sf};
use rand::Rng;

/// A normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// The standard normal `N(0, 1)`.
    pub const STANDARD: Normal = Normal {
        mu: 0.0,
        sigma: 1.0,
    };

    /// Create a normal distribution.
    ///
    /// # Panics
    /// Panics unless `sigma > 0` and both parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite, got {mu}");
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be positive, got {sigma}"
        );
        Normal { mu, sigma }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation of the distribution.
    pub fn sd(&self) -> f64 {
        self.sigma
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    /// Survival function `P(X > x)`, accurate in the upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        std_normal_sf((x - self.mu) / self.sigma)
    }

    /// Quantile (inverse CDF).
    ///
    /// # Panics
    /// Panics unless `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_quantile(p)
    }

    /// Draw one sample using the polar Box–Muller transform.
    ///
    /// Polar Box–Muller draws pairs; the second variate is deliberately
    /// discarded to keep the sampler stateless (the simulator's throughput
    /// is nowhere near bound by RNG cost).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cdf_matches_tables() {
        let n = Normal::new(0.0, 1.0);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((n.cdf(1.96) - 0.975_002_104_851_780).abs() < 1e-10);
        let shifted = Normal::new(10.0, 2.0);
        assert!((shifted.cdf(10.0) - 0.5).abs() < 1e-14);
        assert!((shifted.cdf(13.92) - 0.975_002_104_851_780).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(-3.0, 0.5);
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn sampling_moments() {
        let n = Normal::new(5.0, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let samples: Vec<f64> = (0..200_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let n = Normal::STANDARD;
        let a: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..10).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..10).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let _ = Normal::new(0.0, 0.0);
    }
}
