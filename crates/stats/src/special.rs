//! Special functions.
//!
//! Implementations follow the classical numerically-stable formulations
//! (Lanczos approximation for log-gamma; Lentz's continued fraction for the
//! incomplete beta; series + continued fraction for the incomplete gamma;
//! Acklam's rational approximation, polished by one Halley step, for the
//! inverse normal CDF). These are the only transcendental building blocks
//! the rest of the statistics crate needs.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients; relative error is
/// below 1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the beta function, `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// Uses the symmetry `I_x(a,b) = 1 - I_{1-x}(b,a)` to keep the continued
/// fraction in its rapidly-converging region.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "inc_beta requires a, b > 0 (a={a}, b={b})"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "inc_beta requires x in [0,1], got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor: x^a (1-x)^b / (a B(a,b)) computed in log space.
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(a, b, x)) / a
    } else {
        let ln_front_sym = b * (1.0 - x).ln() + a * x.ln() - ln_beta(b, a);
        1.0 - (ln_front_sym.exp() * beta_cf(b, a, 1.0 - x)) / b
    }
}

/// Lentz's modified continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    // Convergence is slow only for huge a, b; the partial result is still
    // accurate to ~1e-10 there, which exceeds our needs.
    h
}

/// Regularized lower incomplete gamma function `P(a, x)`.
pub fn inc_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "inc_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "inc_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn inc_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "inc_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "inc_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)`, convergent for `x ≥ a + 1`.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x)`, via the incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = inc_gamma_lower(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, computed so the
/// positive tail keeps full relative precision.
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        1.0 + inc_gamma_lower(0.5, x * x)
    } else {
        inc_gamma_upper(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal survival function `1 - Φ(x)`, accurate in the far tail.
pub fn std_normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation, refined with one Halley iteration;
/// absolute error is below 1e-13 across `(0, 1)`.
///
/// # Panics
/// Panics unless `p ∈ (0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile requires p in (0,1), got {p}"
    );
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the true CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-12);
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Large argument (Stirling regime): ln Γ(100) = 359.1342053695754...
        close(ln_gamma(100.0), 359.134_205_369_575_4, 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) over a range of x.
        for &x in &[0.1, 0.7, 1.3, 2.5, 10.0, 123.4] {
            close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-12);
        }
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (10.0, 1.0, 0.9)] {
            close(inc_beta(a, b, x), 1.0 - inc_beta(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn inc_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF).
        close(inc_beta(1.0, 1.0, 0.42), 0.42, 1e-12);
        // I_x(1, b) = 1 - (1-x)^b.
        close(inc_beta(1.0, 3.0, 0.25), 1.0 - 0.75f64.powi(3), 1e-12);
        // I_0.5(a, a) = 0.5 by symmetry.
        close(inc_beta(7.3, 7.3, 0.5), 0.5, 1e-12);
        // scipy.special.betainc(2, 5, 0.2) = 0.34464
        close(inc_beta(2.0, 5.0, 0.2), 0.344_64, 1e-10);
    }

    #[test]
    fn inc_gamma_complementarity() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (30.0, 25.0)] {
            close(inc_gamma_lower(a, x) + inc_gamma_upper(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn inc_gamma_known_values() {
        // P(1, x) = 1 - e^{-x}.
        close(inc_gamma_lower(1.0, 2.0), 1.0 - (-2.0f64).exp(), 1e-12);
        // P(0.5, x) relates to erf: P(1/2, 1) = erf(1) = 0.8427007929497149.
        close(inc_gamma_lower(0.5, 1.0), 0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erf_known_values() {
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        assert_eq!(erf(0.0), 0.0);
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry_and_tails() {
        close(std_normal_cdf(0.0), 0.5, 1e-14);
        close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-10);
        close(std_normal_sf(6.0), 9.865_876_450_376_946e-10, 1e-8);
        for &x in &[-2.5, -0.3, 0.0, 1.1, 3.7] {
            close(std_normal_cdf(x) + std_normal_sf(x), 1.0, 1e-13);
        }
    }

    #[test]
    fn normal_quantile_round_trips() {
        for &p in &[1e-10, 1e-5, 0.01, 0.3, 0.5, 0.77, 0.99, 1.0 - 1e-6] {
            let x = std_normal_quantile(p);
            close(std_normal_cdf(x), p, 1e-10);
        }
        // Classic value: Φ⁻¹(0.975) = 1.959963984540054.
        close(std_normal_quantile(0.975), 1.959_963_984_540_054, 1e-10);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_edge() {
        let _ = std_normal_quantile(1.0);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
