//! Student-t confidence intervals for the mean.
//!
//! Every binned figure in the paper carries "error bars \[that\] represent
//! the 95% confidence interval of the mean"; [`mean_ci`] computes exactly
//! that interval.

use crate::descriptive::{mean, stddev};
use crate::dist::StudentT;

/// A confidence interval for a mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanCi {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
    /// Number of observations.
    pub n: usize,
}

impl MeanCi {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// True when the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }

    /// True when this interval and `other` overlap — the informal check the
    /// paper applies when deciding whether an upgrade "likely had no
    /// significant impact on usage" (§3.2).
    pub fn overlaps(&self, other: &MeanCi) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Compute a t-based confidence interval for the mean of `data`.
///
/// A single observation yields a degenerate interval at the point estimate
/// (there is no dispersion information).
///
/// # Panics
/// Panics on an empty slice or a confidence level outside `(0, 1)`.
pub fn mean_ci(data: &[f64], confidence: f64) -> MeanCi {
    assert!(!data.is_empty(), "confidence interval of empty slice");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    let m = mean(data);
    let n = data.len();
    if n == 1 {
        return MeanCi {
            mean: m,
            lo: m,
            hi: m,
            confidence,
            n,
        };
    }
    let sem = stddev(data) / (n as f64).sqrt();
    let t_star = StudentT::new((n - 1) as f64).two_sided_critical(confidence);
    MeanCi {
        mean: m,
        lo: m - t_star * sem,
        hi: m + t_star * sem,
        confidence,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_interval() {
        // Sample of 9 with mean 10 and sd 3: t*(8, 95%) = 2.306004.
        let data = [7.0, 8.0, 8.5, 9.5, 10.0, 10.5, 11.5, 12.0, 13.0];
        let ci = mean_ci(&data, 0.95);
        let m = mean(&data);
        let half = StudentT::new(8.0).two_sided_critical(0.95) * stddev(&data) / 3.0;
        assert!((ci.mean - m).abs() < 1e-12);
        assert!((ci.half_width() - half).abs() < 1e-9);
        assert!(ci.contains(m));
    }

    #[test]
    fn singleton_is_degenerate() {
        let ci = mean_ci(&[5.0], 0.95);
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn zero_variance_data() {
        let ci = mean_ci(&[3.0, 3.0, 3.0, 3.0], 0.95);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    fn higher_confidence_is_wider() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ci90 = mean_ci(&data, 0.90);
        let ci99 = mean_ci(&data, 0.99);
        assert!(ci99.half_width() > ci90.half_width());
    }

    #[test]
    fn overlap_detection() {
        let a = MeanCi {
            mean: 1.0,
            lo: 0.5,
            hi: 1.5,
            confidence: 0.95,
            n: 10,
        };
        let b = MeanCi {
            mean: 1.4,
            lo: 1.2,
            hi: 1.6,
            confidence: 0.95,
            n: 10,
        };
        let c = MeanCi {
            mean: 3.0,
            lo: 2.5,
            hi: 3.5,
            confidence: 0.95,
            n: 10,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn empty_rejected() {
        let _ = mean_ci(&[], 0.95);
    }
}
