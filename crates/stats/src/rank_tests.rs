//! Rank and goodness-of-fit tests.
//!
//! * [`chi_squared_gof`] — Pearson's χ² goodness-of-fit. §2.3 of the paper
//!   cites Paxson's warning that "with a large enough sample of throws, an
//!   unbiased coin could fail to pass a χ² test", which motivates the
//!   practical-importance guard; this implementation lets the repository
//!   demonstrate that exact phenomenon (see the calibration tests).
//! * [`mann_whitney_u`] — the Mann–Whitney U test, a rank-based
//!   alternative to the matched sign test: it compares whole outcome
//!   distributions rather than per-pair signs, and serves as a robustness
//!   cross-check on experiment outcomes.

use crate::corr::average_ranks;
use crate::special::{inc_gamma_upper, std_normal_sf};

/// Result of a χ² goodness-of-fit test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChiSquaredTest {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (`k − 1`).
    pub dof: usize,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl ChiSquaredTest {
    /// Significant at α = 0.05.
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }
}

/// Pearson's χ² goodness-of-fit of `observed` counts against `expected`
/// counts.
///
/// # Panics
/// Panics when the slices differ in length, have fewer than two cells, or
/// any expected count is non-positive.
pub fn chi_squared_gof(observed: &[f64], expected: &[f64]) -> ChiSquaredTest {
    assert_eq!(observed.len(), expected.len(), "cell counts differ");
    assert!(observed.len() >= 2, "need at least two cells");
    assert!(
        expected.iter().all(|e| *e > 0.0),
        "expected counts must be positive"
    );
    let statistic: f64 = observed
        .iter()
        .zip(expected)
        .map(|(o, e)| (o - e) * (o - e) / e)
        .sum();
    let dof = observed.len() - 1;
    ChiSquaredTest {
        statistic,
        dof,
        // χ²_k is Gamma(k/2, 2): upper tail = Q(k/2, x/2).
        p_value: inc_gamma_upper(dof as f64 / 2.0, statistic / 2.0),
    }
}

/// Result of a Mann–Whitney U test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MannWhitneyTest {
    /// The U statistic of the *second* (treatment) sample.
    pub u: f64,
    /// One-sided p-value for "treatment tends to exceed control"
    /// (normal approximation with tie correction).
    pub p_value: f64,
    /// Sample sizes.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl MannWhitneyTest {
    /// Significant at α = 0.05.
    pub fn significant(&self) -> bool {
        self.p_value < 0.05
    }

    /// The common-language effect size: the probability that a random
    /// treatment observation exceeds a random control observation.
    pub fn prob_superiority(&self) -> f64 {
        self.u / (self.n1 as f64 * self.n2 as f64)
    }
}

/// One-sided Mann–Whitney U: is `treatment` stochastically larger than
/// `control`?
///
/// Uses the normal approximation with tie correction — fine for the
/// sample sizes in this study (tens and up).
///
/// # Panics
/// Panics when either sample is empty.
pub fn mann_whitney_u(control: &[f64], treatment: &[f64]) -> MannWhitneyTest {
    assert!(
        !control.is_empty() && !treatment.is_empty(),
        "Mann–Whitney needs two non-empty samples"
    );
    let n1 = control.len();
    let n2 = treatment.len();
    let pooled: Vec<f64> = control.iter().chain(treatment).copied().collect();
    let ranks = average_ranks(&pooled);
    let r2: f64 = ranks[n1..].iter().sum();
    let u2 = r2 - (n2 * (n2 + 1)) as f64 / 2.0;

    let n = (n1 + n2) as f64;
    let mean_u = n1 as f64 * n2 as f64 / 2.0;
    // Tie correction to the variance.
    let mut tie_term = 0.0;
    {
        let mut sorted = pooled.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in MW input"));
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i + 1;
            while j < sorted.len() && sorted[j] == sorted[i] {
                j += 1;
            }
            let t = (j - i) as f64;
            tie_term += t * t * t - t;
            i = j;
        }
    }
    let var_u = (n1 as f64 * n2 as f64 / 12.0) * ((n + 1.0) - tie_term / (n * (n - 1.0)).max(1.0));
    let p_value = if var_u <= 0.0 {
        // All observations tied: no evidence either way.
        1.0
    } else {
        // Continuity-corrected z for the one-sided alternative U2 > mean.
        std_normal_sf((u2 - mean_u - 0.5) / var_u.sqrt())
    };
    MannWhitneyTest {
        u: u2,
        p_value: p_value.clamp(0.0, 1.0),
        n1,
        n2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_squared_known_value() {
        // Classic die example: observed [5,8,9,8,10,20] vs fair 10s:
        // χ² = 2.5+0.4+0.1+0.4+0+10 = 13.4, dof 5, p ≈ 0.0199.
        let t = chi_squared_gof(&[5.0, 8.0, 9.0, 8.0, 10.0, 20.0], &[10.0; 6]);
        assert!((t.statistic - 13.4).abs() < 1e-12);
        assert_eq!(t.dof, 5);
        assert!((t.p_value - 0.0199).abs() < 1e-3, "p = {}", t.p_value);
        assert!(t.significant());
    }

    #[test]
    fn chi_squared_perfect_fit() {
        let t = chi_squared_gof(&[10.0, 20.0, 30.0], &[10.0, 20.0, 30.0]);
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paxsons_large_sample_pathology() {
        // §2.3's point: a 50.5%-heads coin is *practically* fair, yet with
        // a million throws χ² rejects it decisively…
        let n = 1_000_000.0;
        let observed = [n * 0.505, n * 0.495];
        let expected = [n * 0.5, n * 0.5];
        let big = chi_squared_gof(&observed, &expected);
        assert!(big.significant(), "p = {}", big.p_value);
        // …while the same deviation at a realistic sample size does not.
        let n = 1_000.0;
        let small = chi_squared_gof(&[n * 0.505, n * 0.495], &[n * 0.5, n * 0.5]);
        assert!(!small.significant(), "p = {}", small.p_value);
    }

    #[test]
    fn mann_whitney_detects_shift() {
        let control: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let treatment: Vec<f64> = (0..60).map(|i| i as f64 + 20.0).collect();
        let t = mann_whitney_u(&control, &treatment);
        assert!(t.significant(), "p = {}", t.p_value);
        assert!(t.prob_superiority() > 0.7);
    }

    #[test]
    fn mann_whitney_null_is_flat() {
        let control: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
        let treatment: Vec<f64> = (0..100).map(|i| ((i * 53 + 11) % 101) as f64).collect();
        let t = mann_whitney_u(&control, &treatment);
        assert!(!t.significant(), "p = {}", t.p_value);
        assert!((t.prob_superiority() - 0.5).abs() < 0.1);
    }

    #[test]
    fn mann_whitney_all_ties() {
        let t = mann_whitney_u(&[1.0; 10], &[1.0; 10]);
        assert!((t.p_value - 1.0).abs() < 1e-9);
        assert!((t.prob_superiority() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mann_whitney_direction() {
        // Treatment LOWER: one-sided p should be large.
        let control = [10.0, 11.0, 12.0, 13.0];
        let treatment = [1.0, 2.0, 3.0, 4.0];
        let t = mann_whitney_u(&control, &treatment);
        assert!(t.p_value > 0.9);
        assert!(t.prob_superiority() < 0.1);
    }

    #[test]
    #[should_panic(expected = "two cells")]
    fn chi_squared_rejects_single_cell() {
        let _ = chi_squared_gof(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn mann_whitney_rejects_empty() {
        let _ = mann_whitney_u(&[], &[1.0]);
    }
}
